//! The TCP connection tracker shared by the spec, the verified flow
//! table, and the netfilter baseline.
//!
//! A NAT does not terminate TCP, so the tracker is deliberately loose
//! (netfilter-style "pickup" semantics): it watches SYN/FIN/RST flags
//! to decide how *long* a mapping should live (RFC 5382 distinguishes
//! transitory from established lifetimes), never whether a segment is
//! sequence-valid. All three NATs — the executable spec, the verified
//! `FlowManager`, and the `netfilter` baseline — call exactly these two
//! functions, so a disagreement between them can only come from how the
//! resulting timeout class is *applied*, which is what the differential
//! suites pin down.
//!
//! The state machine (NEW → SYN_SENT → SYN_RECV → ESTABLISHED →
//! FIN_WAIT / CLOSED):
//!
//! * a mapping created by a SYN starts in [`TcpState::SynSent`];
//! * the peer's SYN(+ACK) moves it to [`TcpState::SynRecv`];
//! * the initiator's following ACK completes the handshake
//!   ([`TcpState::Established`]);
//! * a FIN from either side enters [`TcpState::FinWait`] (covering
//!   simultaneous close: a second FIN keeps it there);
//! * an RST from either side kills the session ([`TcpState::Closed`]);
//! * a fresh SYN from the inside reopens a closed/closing session.
//!
//! Mid-stream pickup: a mapping created by a non-SYN, non-RST segment
//! (e.g. a bare ACK after a NAT restart) is treated as established —
//! the netfilter `loose` behaviour. All states except `Established`
//! use the transitory lifetime, so half-open, closing, and reset
//! sessions age out quickly while live connections get the long
//! RFC 5382 timer.

use vig_packet::tcp::flags;
use vig_packet::{Direction, Proto};

/// Per-flow TCP connection state (see module docs for the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// Internal SYN seen, no reply yet.
    SynSent,
    /// External SYN(+ACK) seen, handshake not yet acknowledged.
    SynRecv,
    /// Handshake complete (or mid-stream pickup): the long lifetime.
    Established,
    /// A FIN has been seen from either side (covers simultaneous
    /// close); the mapping ages out on the transitory timer.
    FinWait,
    /// An RST killed the session; the mapping ages out quickly.
    Closed,
}

impl TcpState {
    /// The timeout class this state selects (RFC 5382: only fully
    /// established sessions earn the long lifetime).
    pub fn class(self) -> TimeoutClass {
        match self {
            TcpState::Established => TimeoutClass::TcpEstablished,
            _ => TimeoutClass::TcpTransitory,
        }
    }
}

/// Which timeout a flow's next expiry uses. Ordered so it can index
/// per-class structures (wheels) densely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeoutClass {
    /// UDP flows: the paper's single `Texp`.
    Udp,
    /// TCP in any non-established state (RFC 5382 transitory).
    TcpTransitory,
    /// TCP established (RFC 5382 `TCP_EST`).
    TcpEstablished,
}

impl TimeoutClass {
    /// All classes, in index order.
    pub const ALL: [TimeoutClass; 3] = [
        TimeoutClass::Udp,
        TimeoutClass::TcpTransitory,
        TimeoutClass::TcpEstablished,
    ];

    /// Dense index (0..3) for per-class storage.
    pub fn index(self) -> usize {
        match self {
            TimeoutClass::Udp => 0,
            TimeoutClass::TcpTransitory => 1,
            TimeoutClass::TcpEstablished => 2,
        }
    }
}

/// The state a freshly created mapping starts in, from the first
/// segment's flags. Only internal packets create mappings, so there is
/// no direction argument.
pub fn initial_state(tcp_flags: u8) -> TcpState {
    if tcp_flags & flags::RST != 0 {
        TcpState::Closed
    } else if tcp_flags & flags::SYN != 0 {
        // SYN+FIN and other absurd combinations count as a connection
        // attempt: transitory lifetime, never established.
        TcpState::SynSent
    } else if tcp_flags & flags::FIN != 0 {
        TcpState::FinWait
    } else {
        // Mid-stream pickup (bare ACK / data): treat as established.
        TcpState::Established
    }
}

/// One step of the tracker: the session was in `state` and a segment
/// with `tcp_flags` arrived from `dir`.
pub fn transition(state: TcpState, dir: Direction, tcp_flags: u8) -> TcpState {
    if tcp_flags & flags::RST != 0 {
        return TcpState::Closed;
    }
    if tcp_flags & flags::FIN != 0 {
        // A FIN in any live state begins (or continues) the close; a
        // FIN for an already-reset session leaves it closed.
        return match state {
            TcpState::Closed => TcpState::Closed,
            _ => TcpState::FinWait,
        };
    }
    if tcp_flags & flags::SYN != 0 {
        return match (state, dir) {
            // The peer's SYN(+ACK) answers ours.
            (TcpState::SynSent, Direction::External) => TcpState::SynRecv,
            // The inside reopens a closing/closed session.
            (TcpState::FinWait | TcpState::Closed, Direction::Internal) => TcpState::SynSent,
            // Retransmitted or out-of-place SYNs change nothing.
            _ => state,
        };
    }
    if tcp_flags & flags::ACK != 0 {
        return match (state, dir) {
            // The initiator's ACK completes the handshake.
            (TcpState::SynRecv, Direction::Internal) => TcpState::Established,
            _ => state,
        };
    }
    state
}

/// The timeout class of a flow: UDP flows have no connection state;
/// TCP flows are classed by their tracker state.
pub fn class_of(proto: Proto, state: Option<TcpState>) -> TimeoutClass {
    match proto {
        Proto::Udp => TimeoutClass::Udp,
        Proto::Tcp => state.map_or(TimeoutClass::TcpTransitory, TcpState::class),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const I: Direction = Direction::Internal;
    const E: Direction = Direction::External;

    #[test]
    fn three_way_handshake_reaches_established() {
        let s = initial_state(flags::SYN);
        assert_eq!(s, TcpState::SynSent);
        let s = transition(s, E, flags::SYN | flags::ACK);
        assert_eq!(s, TcpState::SynRecv);
        let s = transition(s, I, flags::ACK);
        assert_eq!(s, TcpState::Established);
        assert_eq!(s.class(), TimeoutClass::TcpEstablished);
        // Data segments keep it established.
        assert_eq!(transition(s, I, flags::ACK), TcpState::Established);
        assert_eq!(transition(s, E, flags::ACK), TcpState::Established);
    }

    #[test]
    fn fin_and_rst_leave_established() {
        let est = TcpState::Established;
        assert_eq!(
            transition(est, I, flags::FIN | flags::ACK),
            TcpState::FinWait
        );
        assert_eq!(transition(est, E, flags::RST), TcpState::Closed);
        assert_eq!(est.class(), TimeoutClass::TcpEstablished);
        assert_eq!(TcpState::FinWait.class(), TimeoutClass::TcpTransitory);
        assert_eq!(TcpState::Closed.class(), TimeoutClass::TcpTransitory);
    }

    #[test]
    fn simultaneous_close_stays_in_fin_wait() {
        let s = transition(TcpState::Established, I, flags::FIN | flags::ACK);
        let s = transition(s, E, flags::FIN | flags::ACK);
        assert_eq!(s, TcpState::FinWait);
        // The trailing ACKs of the close don't resurrect the session.
        let s = transition(s, I, flags::ACK);
        assert_eq!(s, TcpState::FinWait);
    }

    #[test]
    fn rst_beats_every_other_flag() {
        for st in [
            TcpState::SynSent,
            TcpState::SynRecv,
            TcpState::Established,
            TcpState::FinWait,
            TcpState::Closed,
        ] {
            for dir in [I, E] {
                assert_eq!(
                    transition(st, dir, flags::RST | flags::SYN | flags::FIN | flags::ACK),
                    TcpState::Closed
                );
            }
        }
    }

    #[test]
    fn internal_syn_reopens_closed_session() {
        assert_eq!(
            transition(TcpState::Closed, I, flags::SYN),
            TcpState::SynSent
        );
        assert_eq!(
            transition(TcpState::FinWait, I, flags::SYN),
            TcpState::SynSent
        );
        // An outside SYN does not: unsolicited connection attempts
        // through an existing mapping stay transitory.
        assert_eq!(
            transition(TcpState::Closed, E, flags::SYN),
            TcpState::Closed
        );
    }

    #[test]
    fn syn_fin_is_a_transitory_connection_attempt() {
        let s = initial_state(flags::SYN | flags::FIN);
        assert_eq!(s, TcpState::SynSent);
        assert_eq!(s.class(), TimeoutClass::TcpTransitory);
    }

    #[test]
    fn midstream_pickup_is_established() {
        assert_eq!(initial_state(flags::ACK), TcpState::Established);
        assert_eq!(initial_state(0), TcpState::Established);
        assert_eq!(initial_state(flags::RST), TcpState::Closed);
        assert_eq!(initial_state(flags::FIN), TcpState::FinWait);
    }

    #[test]
    fn class_of_udp_ignores_state() {
        assert_eq!(class_of(Proto::Udp, None), TimeoutClass::Udp);
        assert_eq!(
            class_of(Proto::Udp, Some(TcpState::Established)),
            TimeoutClass::Udp
        );
        assert_eq!(
            class_of(Proto::Tcp, Some(TcpState::Established)),
            TimeoutClass::TcpEstablished
        );
        assert_eq!(class_of(Proto::Tcp, None), TimeoutClass::TcpTransitory);
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, c) in TimeoutClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
