//! The abstract NAT state: the paper's `flow_table` plus configuration.
//!
//! Everything here is deliberately naive — linear scans, owned vectors —
//! because this is the *specification*. Its job is to be obviously
//! correct, not fast; the verified implementation (the `vignat` crate)
//! is what has to be fast, and the whole point of the methodology is to
//! prove the fast thing refines this slow, obvious thing.

use libvig::time::Time;
use vig_packet::{ExtKey, FlowId, Ip4};

/// The three static configuration parameters of the paper's Fig. 6,
/// plus the first external port (a VigNAT implementation parameter the
/// spec needs in order to state port-range facts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatConfig {
    /// `CAP`: flow-table capacity.
    pub capacity: usize,
    /// `Texp` in nanoseconds: a flow expires when
    /// `timestamp + expiry <= now`.
    pub expiry_ns: u64,
    /// `EXT_IP`: the address of the external interface.
    pub external_ip: Ip4,
    /// First port of the NAT's external port range. VigNAT maps flow
    /// slot `i` to port `start_port + i`.
    pub start_port: u16,
}

impl NatConfig {
    /// The paper's evaluation configuration: 65,535 flows, 2 s expiry.
    pub fn paper_default() -> NatConfig {
        NatConfig {
            capacity: 65_535,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1, // slots 0..65534 -> ports 1..65535, like VigNAT
        }
    }

    /// Expiry threshold for packets arriving at `now`: flows stamped at
    /// or before this are dead (Fig. 6 line 7: `timestamp + Texp <= t`).
    /// `None` while `now < Texp`, when nothing can have expired yet.
    pub fn expiry_threshold(&self, now: Time) -> Option<Time> {
        now.nanos().checked_sub(self.expiry_ns).map(Time)
    }
}

/// One abstract flow-table entry: the internal 5-tuple, the allocated
/// external port, and the last-activity timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractFlow {
    /// Internal-side flow identifier.
    pub fid: FlowId,
    /// Allocated external port.
    pub ext_port: u16,
    /// Last time a packet of this flow was seen.
    pub last_active: Time,
}

impl AbstractFlow {
    /// The external key under which return traffic matches this flow.
    pub fn ext_key(&self) -> ExtKey {
        ExtKey {
            ext_port: self.ext_port,
            dst_ip: self.fid.dst_ip,
            dst_port: self.fid.dst_port,
            proto: self.fid.proto,
        }
    }
}

/// The abstract NAT state: configuration plus the flow table.
///
/// Invariants (checked by [`AbstractNat::check_invariants`], maintained
/// by construction):
///
/// * at most `capacity` flows;
/// * internal flow ids are pairwise distinct;
/// * external ports are pairwise distinct (the strong uniqueness VigNAT
///   provides; RFC 3022 NAPT only requires distinct external *keys*);
/// * no flow uses external port 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractNat {
    config: NatConfig,
    flows: Vec<AbstractFlow>,
}

impl AbstractNat {
    /// Fresh NAT with an empty flow table.
    pub fn new(config: NatConfig) -> AbstractNat {
        AbstractNat {
            config,
            flows: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NatConfig {
        &self.config
    }

    /// Current flow count.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// True when the table is full (`size(flow_table) == CAP`).
    pub fn is_full(&self) -> bool {
        self.flows.len() >= self.config.capacity
    }

    /// The flows (unspecified order).
    pub fn flows(&self) -> &[AbstractFlow] {
        &self.flows
    }

    /// Fig. 6 `expire_flows(t)`: remove every flow with
    /// `timestamp + Texp <= t`. Returns the removed flows.
    pub fn expire_flows(&mut self, now: Time) -> Vec<AbstractFlow> {
        let Some(threshold) = self.config.expiry_threshold(now) else {
            return Vec::new();
        };
        let (dead, live): (Vec<_>, Vec<_>) = self
            .flows
            .iter()
            .copied()
            .partition(|f| f.last_active <= threshold);
        self.flows = live;
        dead
    }

    /// Find a flow by its internal 5-tuple (`F(P)` for internal packets).
    pub fn lookup_internal(&self, fid: &FlowId) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.fid == *fid)
    }

    /// Find a flow by its external key (`F(P)` for external packets).
    pub fn lookup_external(&self, ek: &ExtKey) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.ext_key() == *ek)
    }

    /// Is this external port already allocated to some flow?
    pub fn port_in_use(&self, port: u16) -> bool {
        self.flows.iter().any(|f| f.ext_port == port)
    }

    /// Fig. 6 lines 10–12: refresh the timestamp of an existing flow.
    /// Returns `false` if the flow is absent (caller error).
    pub fn refresh(&mut self, fid: &FlowId, now: Time) -> bool {
        match self.flows.iter_mut().find(|f| f.fid == *fid) {
            Some(f) => {
                f.last_active = now;
                true
            }
            None => false,
        }
    }

    /// Fig. 6 line 16: insert a new flow. Enforces the state invariants;
    /// an `Err` here means the *caller* (the NF under test, or a buggy
    /// spec client) violated the RFC.
    pub fn insert(&mut self, fid: FlowId, ext_port: u16, now: Time) -> Result<(), InsertError> {
        if self.is_full() {
            return Err(InsertError::TableFull);
        }
        if self.lookup_internal(&fid).is_some() {
            return Err(InsertError::DuplicateFlowId);
        }
        if ext_port == 0 {
            return Err(InsertError::PortZero);
        }
        if self.port_in_use(ext_port) {
            return Err(InsertError::PortInUse(ext_port));
        }
        self.flows.push(AbstractFlow {
            fid,
            ext_port,
            last_active: now,
        });
        Ok(())
    }

    /// Verify the state invariants hold (used by tests and after
    /// deserialization-like operations; `insert` maintains them).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.flows.len() > self.config.capacity {
            return Err(format!(
                "flow table over capacity: {} > {}",
                self.flows.len(),
                self.config.capacity
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.ext_port == 0 {
                return Err("flow uses external port 0".into());
            }
            for g in &self.flows[i + 1..] {
                if f.fid == g.fid {
                    return Err(format!("duplicate internal flow id: {}", f.fid));
                }
                if f.ext_port == g.ext_port {
                    return Err(format!("duplicate external port: {}", f.ext_port));
                }
            }
        }
        Ok(())
    }
}

/// Why an [`AbstractNat::insert`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// `size(flow_table) == CAP`.
    TableFull,
    /// The internal 5-tuple is already mapped.
    DuplicateFlowId,
    /// Port 0 is never a valid translation.
    PortZero,
    /// The external port is already allocated.
    PortInUse(u16),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::Proto;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 3,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
        }
    }

    fn fid(h: u8) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, h),
            src_port: 5000,
            dst_ip: Ip4::new(1, 1, 1, 1),
            dst_port: 80,
            proto: Proto::Udp,
        }
    }

    #[test]
    fn insert_until_full() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), 1000, Time::from_secs(1)).unwrap();
        n.insert(fid(2), 1001, Time::from_secs(1)).unwrap();
        n.insert(fid(3), 1002, Time::from_secs(1)).unwrap();
        assert!(n.is_full());
        assert_eq!(
            n.insert(fid(4), 1003, Time::from_secs(1)),
            Err(InsertError::TableFull)
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_detection() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), 1000, Time::from_secs(1)).unwrap();
        assert_eq!(
            n.insert(fid(1), 1001, Time::from_secs(1)),
            Err(InsertError::DuplicateFlowId)
        );
        assert_eq!(
            n.insert(fid(2), 1000, Time::from_secs(1)),
            Err(InsertError::PortInUse(1000))
        );
        assert_eq!(
            n.insert(fid(2), 0, Time::from_secs(1)),
            Err(InsertError::PortZero)
        );
    }

    #[test]
    fn expiry_is_exact_per_fig6() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), 1000, Time::from_secs(5)).unwrap();
        // timestamp + Texp = 15s; at t=14.999..9 it survives, at 15 it dies
        assert!(n
            .expire_flows(Time(Time::from_secs(15).nanos() - 1))
            .is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(15)).len(), 1);
        assert!(n.is_empty());
    }

    #[test]
    fn early_clock_expires_nothing() {
        // now < Texp: threshold undefined, nothing expires — including
        // flows stamped at t=0 (the saturating-subtraction bug this
        // guards against would wrongly kill them).
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), 1000, Time::ZERO).unwrap();
        assert!(n.expire_flows(Time::from_secs(9)).is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(10)).len(), 1);
    }

    #[test]
    fn refresh_rescues_flow() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), 1000, Time::from_secs(0)).unwrap();
        assert!(n.refresh(&fid(1), Time::from_secs(8)));
        assert!(
            n.expire_flows(Time::from_secs(10)).is_empty(),
            "refreshed at 8s, dies at 18s"
        );
        assert_eq!(n.expire_flows(Time::from_secs(18)).len(), 1);
        assert!(!n.refresh(&fid(1), Time::from_secs(19)), "gone now");
    }

    #[test]
    fn lookup_by_both_keys() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(7), 1002, Time::from_secs(1)).unwrap();
        let f = n.lookup_internal(&fid(7)).copied().unwrap();
        assert_eq!(n.lookup_external(&f.ext_key()).unwrap().fid, fid(7));
        assert!(n
            .lookup_external(&ExtKey {
                ext_port: 9999,
                ..f.ext_key()
            })
            .is_none());
    }

    #[test]
    fn threshold_none_before_texp() {
        let c = cfg();
        assert_eq!(c.expiry_threshold(Time::from_secs(9)), None);
        assert_eq!(c.expiry_threshold(Time::from_secs(10)), Some(Time::ZERO));
        assert_eq!(
            c.expiry_threshold(Time::from_secs(12)),
            Some(Time::from_secs(2))
        );
    }
}
