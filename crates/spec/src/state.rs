//! The abstract NAT state: the paper's `flow_table` plus configuration.
//!
//! Everything here is deliberately naive — linear scans, owned vectors —
//! because this is the *specification*. Its job is to be obviously
//! correct, not fast; the verified implementation (the `vignat` crate)
//! is what has to be fast, and the whole point of the methodology is to
//! prove the fast thing refines this slow, obvious thing.

use libvig::time::Time;
use vig_packet::{ExtKey, FlowId, Ip4};

/// The three static configuration parameters of the paper's Fig. 6,
/// plus the first external port (a VigNAT implementation parameter the
/// spec needs in order to state port-range facts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatConfig {
    /// `CAP`: flow-table capacity.
    pub capacity: usize,
    /// `Texp` in nanoseconds: a flow expires when
    /// `timestamp + expiry <= now`.
    pub expiry_ns: u64,
    /// `EXT_IP`: the address of the external interface.
    pub external_ip: Ip4,
    /// First port of the NAT's external port range. VigNAT maps flow
    /// slot `i` to port `start_port + i`.
    pub start_port: u16,
}

impl NatConfig {
    /// The paper's evaluation configuration: 65,535 flows, 2 s expiry.
    pub fn paper_default() -> NatConfig {
        NatConfig {
            capacity: 65_535,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1, // slots 0..65534 -> ports 1..65535, like VigNAT
        }
    }

    /// Expiry threshold for packets arriving at `now`: flows stamped at
    /// or before this are dead (Fig. 6 line 7: `timestamp + Texp <= t`).
    /// `None` while `now < Texp`, when nothing can have expired yet.
    pub fn expiry_threshold(&self, now: Time) -> Option<Time> {
        now.nanos().checked_sub(self.expiry_ns).map(Time)
    }

    // --- the external endpoint pool ------------------------------------
    //
    // The paper's NAT owns ONE external address, so `capacity` is bounded
    // by the 65536 − start_port usable ports and slot `i` maps to port
    // `start_port + i`. A million-flow NAT needs more 5-tuple space than
    // one address holds; the standard carrier-grade answer is an address
    // *pool*: consecutive addresses starting at `external_ip`, each
    // carrying the same port range. Slot `i` maps to the `i`-th endpoint
    // of the pool in (address, port) lexicographic order — a bijection,
    // so every slot still owns exactly one external endpoint and the
    // paper's slot⇄endpoint reasoning survives unchanged. With
    // `capacity <= ports_per_ip()` the pool is exactly one address and
    // every function below reduces to the paper's single-IP behavior.

    /// Usable external ports per pool address: `start_port..=65535`.
    pub fn ports_per_ip(&self) -> usize {
        65_536 - usize::from(self.start_port)
    }

    /// Number of consecutive external addresses the pool spans
    /// (1 while `capacity <= ports_per_ip()` — the paper's setup).
    pub fn num_external_ips(&self) -> usize {
        self.capacity.div_ceil(self.ports_per_ip()).max(1)
    }

    /// The external address slot `slot` translates through.
    pub fn ext_ip_of_slot(&self, slot: usize) -> Ip4 {
        debug_assert!(slot < self.capacity, "slot out of range");
        Ip4(self.external_ip.raw() + (slot / self.ports_per_ip()) as u32)
    }

    /// The external port slot `slot` translates through.
    pub fn ext_port_of_slot(&self, slot: usize) -> u16 {
        debug_assert!(slot < self.capacity, "slot out of range");
        self.start_port + (slot % self.ports_per_ip()) as u16
    }

    /// Inverse of the slot→endpoint bijection: which slot owns external
    /// endpoint `(ip, port)`? `None` when the endpoint is outside the
    /// pool (return traffic for it can never match a flow).
    pub fn slot_of_endpoint(&self, ip: Ip4, port: u16) -> Option<usize> {
        let ip_off = ip.raw().checked_sub(self.external_ip.raw())? as usize;
        if ip_off >= self.num_external_ips() {
            return None;
        }
        let port_off = usize::from(port.checked_sub(self.start_port)?);
        let slot = ip_off * self.ports_per_ip() + port_off;
        (slot < self.capacity).then_some(slot)
    }

    /// Whether `(ip, port)` is an endpoint this NAT may translate
    /// through (i.e. some slot owns it).
    pub fn pool_contains(&self, ip: Ip4, port: u16) -> bool {
        self.slot_of_endpoint(ip, port).is_some()
    }
}

/// One abstract flow-table entry: the internal 5-tuple, the allocated
/// external endpoint (pool address + port), and the last-activity
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractFlow {
    /// Internal-side flow identifier.
    pub fid: FlowId,
    /// Allocated external (pool) address.
    pub ext_ip: Ip4,
    /// Allocated external port.
    pub ext_port: u16,
    /// Last time a packet of this flow was seen.
    pub last_active: Time,
}

impl AbstractFlow {
    /// The external key under which return traffic matches this flow.
    pub fn ext_key(&self) -> ExtKey {
        ExtKey {
            ext_ip: self.ext_ip,
            ext_port: self.ext_port,
            dst_ip: self.fid.dst_ip,
            dst_port: self.fid.dst_port,
            proto: self.fid.proto,
        }
    }
}

/// The abstract NAT state: configuration plus the flow table.
///
/// Invariants (checked by [`AbstractNat::check_invariants`], maintained
/// by construction):
///
/// * at most `capacity` flows;
/// * internal flow ids are pairwise distinct;
/// * external endpoints `(ext_ip, ext_port)` are pairwise distinct and
///   drawn from the configured pool (the strong uniqueness VigNAT
///   provides; RFC 3022 NAPT only requires distinct external *keys*);
/// * no flow uses external port 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractNat {
    config: NatConfig,
    flows: Vec<AbstractFlow>,
}

impl AbstractNat {
    /// Fresh NAT with an empty flow table.
    pub fn new(config: NatConfig) -> AbstractNat {
        AbstractNat {
            config,
            flows: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NatConfig {
        &self.config
    }

    /// Current flow count.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// True when the table is full (`size(flow_table) == CAP`).
    pub fn is_full(&self) -> bool {
        self.flows.len() >= self.config.capacity
    }

    /// The flows (unspecified order).
    pub fn flows(&self) -> &[AbstractFlow] {
        &self.flows
    }

    /// Fig. 6 `expire_flows(t)`: remove every flow with
    /// `timestamp + Texp <= t`. Returns the removed flows.
    pub fn expire_flows(&mut self, now: Time) -> Vec<AbstractFlow> {
        let Some(threshold) = self.config.expiry_threshold(now) else {
            return Vec::new();
        };
        let (dead, live): (Vec<_>, Vec<_>) = self
            .flows
            .iter()
            .copied()
            .partition(|f| f.last_active <= threshold);
        self.flows = live;
        dead
    }

    /// Find a flow by its internal 5-tuple (`F(P)` for internal packets).
    pub fn lookup_internal(&self, fid: &FlowId) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.fid == *fid)
    }

    /// Find a flow by its external key (`F(P)` for external packets).
    pub fn lookup_external(&self, ek: &ExtKey) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.ext_key() == *ek)
    }

    /// Is this external endpoint already allocated to some flow? (With
    /// a single-address pool this is the paper's "port in use" test;
    /// with a larger pool the same port may serve once per address.)
    pub fn endpoint_in_use(&self, ip: Ip4, port: u16) -> bool {
        self.flows
            .iter()
            .any(|f| f.ext_ip == ip && f.ext_port == port)
    }

    /// Fig. 6 lines 10–12: refresh the timestamp of an existing flow.
    /// Returns `false` if the flow is absent (caller error).
    pub fn refresh(&mut self, fid: &FlowId, now: Time) -> bool {
        match self.flows.iter_mut().find(|f| f.fid == *fid) {
            Some(f) => {
                f.last_active = now;
                true
            }
            None => false,
        }
    }

    /// Fig. 6 line 16: insert a new flow mapped to the external
    /// endpoint `(ext_ip, ext_port)`. Enforces the state invariants;
    /// an `Err` here means the *caller* (the NF under test, or a buggy
    /// spec client) violated the RFC. The endpoint must belong to the
    /// configured pool (with a single-address pool: `ext_ip` must be
    /// `EXT_IP`, exactly the paper's constraint).
    pub fn insert(
        &mut self,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        now: Time,
    ) -> Result<(), InsertError> {
        if self.is_full() {
            return Err(InsertError::TableFull);
        }
        if self.lookup_internal(&fid).is_some() {
            return Err(InsertError::DuplicateFlowId);
        }
        if ext_port == 0 {
            return Err(InsertError::PortZero);
        }
        // With the paper's single-address pool the spec constrains only
        // the address (Fig. 6 rewrites to EXT_IP; the port is the NF's
        // free choice). With a multi-address pool the whole endpoint
        // must come from the pool — the address/port pair is how return
        // traffic finds its way back.
        let in_pool = if self.config.num_external_ips() == 1 {
            ext_ip == self.config.external_ip
        } else {
            self.config.pool_contains(ext_ip, ext_port)
        };
        if !in_pool {
            return Err(InsertError::EndpointOutsidePool(ext_ip, ext_port));
        }
        if self.endpoint_in_use(ext_ip, ext_port) {
            return Err(InsertError::EndpointInUse(ext_ip, ext_port));
        }
        self.flows.push(AbstractFlow {
            fid,
            ext_ip,
            ext_port,
            last_active: now,
        });
        Ok(())
    }

    /// Verify the state invariants hold (used by tests and after
    /// deserialization-like operations; `insert` maintains them).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.flows.len() > self.config.capacity {
            return Err(format!(
                "flow table over capacity: {} > {}",
                self.flows.len(),
                self.config.capacity
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.ext_port == 0 {
                return Err("flow uses external port 0".into());
            }
            let in_pool = if self.config.num_external_ips() == 1 {
                f.ext_ip == self.config.external_ip
            } else {
                self.config.pool_contains(f.ext_ip, f.ext_port)
            };
            if !in_pool {
                return Err(format!(
                    "flow endpoint {}:{} outside the configured pool",
                    f.ext_ip, f.ext_port
                ));
            }
            for g in &self.flows[i + 1..] {
                if f.fid == g.fid {
                    return Err(format!("duplicate internal flow id: {}", f.fid));
                }
                if f.ext_ip == g.ext_ip && f.ext_port == g.ext_port {
                    return Err(format!(
                        "duplicate external endpoint: {}:{}",
                        f.ext_ip, f.ext_port
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Why an [`AbstractNat::insert`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// `size(flow_table) == CAP`.
    TableFull,
    /// The internal 5-tuple is already mapped.
    DuplicateFlowId,
    /// Port 0 is never a valid translation.
    PortZero,
    /// The external endpoint is not in the configured pool.
    EndpointOutsidePool(Ip4, u16),
    /// The external endpoint is already allocated.
    EndpointInUse(Ip4, u16),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::Proto;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 3,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
        }
    }

    fn fid(h: u8) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, h),
            src_port: 5000,
            dst_ip: Ip4::new(1, 1, 1, 1),
            dst_port: 80,
            proto: Proto::Udp,
        }
    }

    #[test]
    fn insert_until_full() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1))
            .unwrap();
        n.insert(fid(2), Ip4::new(10, 1, 0, 1), 1001, Time::from_secs(1))
            .unwrap();
        n.insert(fid(3), Ip4::new(10, 1, 0, 1), 1002, Time::from_secs(1))
            .unwrap();
        assert!(n.is_full());
        assert_eq!(
            n.insert(fid(4), Ip4::new(10, 1, 0, 1), 1003, Time::from_secs(1)),
            Err(InsertError::TableFull)
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_detection() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1001, Time::from_secs(1)),
            Err(InsertError::DuplicateFlowId)
        );
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1)),
            Err(InsertError::EndpointInUse(Ip4::new(10, 1, 0, 1), 1000))
        );
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 1), 0, Time::from_secs(1)),
            Err(InsertError::PortZero)
        );
    }

    #[test]
    fn expiry_is_exact_per_fig6() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(5))
            .unwrap();
        // timestamp + Texp = 15s; at t=14.999..9 it survives, at 15 it dies
        assert!(n
            .expire_flows(Time(Time::from_secs(15).nanos() - 1))
            .is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(15)).len(), 1);
        assert!(n.is_empty());
    }

    #[test]
    fn early_clock_expires_nothing() {
        // now < Texp: threshold undefined, nothing expires — including
        // flows stamped at t=0 (the saturating-subtraction bug this
        // guards against would wrongly kill them).
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::ZERO)
            .unwrap();
        assert!(n.expire_flows(Time::from_secs(9)).is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(10)).len(), 1);
    }

    #[test]
    fn refresh_rescues_flow() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(0))
            .unwrap();
        assert!(n.refresh(&fid(1), Time::from_secs(8)));
        assert!(
            n.expire_flows(Time::from_secs(10)).is_empty(),
            "refreshed at 8s, dies at 18s"
        );
        assert_eq!(n.expire_flows(Time::from_secs(18)).len(), 1);
        assert!(!n.refresh(&fid(1), Time::from_secs(19)), "gone now");
    }

    #[test]
    fn lookup_by_both_keys() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(7), Ip4::new(10, 1, 0, 1), 1002, Time::from_secs(1))
            .unwrap();
        let f = n.lookup_internal(&fid(7)).copied().unwrap();
        assert_eq!(n.lookup_external(&f.ext_key()).unwrap().fid, fid(7));
        assert!(n
            .lookup_external(&ExtKey {
                ext_port: 9999,
                ..f.ext_key()
            })
            .is_none());
    }

    #[test]
    fn pool_mapping_is_a_bijection() {
        // Capacity larger than one address' worth of ports: the pool
        // spills onto consecutive addresses, and slot -> endpoint ->
        // slot round-trips for every slot.
        let c = NatConfig {
            capacity: 70_000,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1024,
        };
        assert_eq!(c.ports_per_ip(), 64_512);
        assert_eq!(c.num_external_ips(), 2);
        for slot in [0usize, 1, 64_511, 64_512, 69_999] {
            let (ip, port) = (c.ext_ip_of_slot(slot), c.ext_port_of_slot(slot));
            assert_eq!(c.slot_of_endpoint(ip, port), Some(slot), "slot {slot}");
        }
        assert_eq!(c.ext_ip_of_slot(0), Ip4::new(10, 1, 0, 1));
        assert_eq!(c.ext_ip_of_slot(64_512), Ip4::new(10, 1, 0, 2));
        // Out-of-pool endpoints are rejected from every side.
        assert_eq!(c.slot_of_endpoint(Ip4::new(10, 1, 0, 3), 1024), None);
        assert_eq!(c.slot_of_endpoint(Ip4::new(10, 1, 0, 1), 1023), None);
        assert_eq!(
            c.slot_of_endpoint(Ip4::new(10, 1, 0, 2), 1024 + (70_000 - 64_512) as u16),
            None,
            "past the capacity edge on the last address"
        );
    }

    #[test]
    fn multi_ip_insert_enforces_pool_membership() {
        let c = NatConfig {
            capacity: 70_000,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1024,
        };
        let mut n = AbstractNat::new(c);
        n.insert(fid(1), Ip4::new(10, 1, 0, 2), 1024, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 9), 1024, Time::from_secs(1)),
            Err(InsertError::EndpointOutsidePool(
                Ip4::new(10, 1, 0, 9),
                1024
            ))
        );
        // Same port on a *different* pool address is a distinct endpoint.
        n.insert(fid(3), Ip4::new(10, 1, 0, 1), 1024, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(4), Ip4::new(10, 1, 0, 2), 1024, Time::from_secs(2)),
            Err(InsertError::EndpointInUse(Ip4::new(10, 1, 0, 2), 1024))
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn threshold_none_before_texp() {
        let c = cfg();
        assert_eq!(c.expiry_threshold(Time::from_secs(9)), None);
        assert_eq!(c.expiry_threshold(Time::from_secs(10)), Some(Time::ZERO));
        assert_eq!(
            c.expiry_threshold(Time::from_secs(12)),
            Some(Time::from_secs(2))
        );
    }
}
