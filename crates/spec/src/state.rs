//! The abstract NAT state: the paper's `flow_table` plus configuration.
//!
//! Everything here is deliberately naive — linear scans, owned vectors —
//! because this is the *specification*. Its job is to be obviously
//! correct, not fast; the verified implementation (the `vignat` crate)
//! is what has to be fast, and the whole point of the methodology is to
//! prove the fast thing refines this slow, obvious thing.

use crate::tcp::{class_of, initial_state, transition, TcpState, TimeoutClass};
use libvig::time::Time;
use vig_packet::{Direction, ExtKey, FlowId, Ip4, Proto};

/// The three static configuration parameters of the paper's Fig. 6,
/// plus the first external port (a VigNAT implementation parameter the
/// spec needs in order to state port-range facts), the RFC 5382
/// per-class TCP lifetimes, and the RFC 4787 mapping-behavior switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatConfig {
    /// `CAP`: flow-table capacity.
    pub capacity: usize,
    /// `Texp` in nanoseconds: a flow expires when
    /// `timestamp + expiry <= now`. With the TCP tracker enabled this
    /// is the UDP class's lifetime; TCP classes use the fields below.
    pub expiry_ns: u64,
    /// `EXT_IP`: the address of the external interface.
    pub external_ip: Ip4,
    /// First port of the NAT's external port range. VigNAT maps flow
    /// slot `i` to port `start_port + i`.
    pub start_port: u16,
    /// Lifetime of TCP flows in a non-established state (RFC 5382's
    /// transitory timer). `0` inherits `expiry_ns` — the paper's
    /// homogeneous single-`Texp` configuration.
    pub tcp_transitory_ns: u64,
    /// Lifetime of established TCP flows (RFC 5382 requires ≥ 2h 4min
    /// in deployments; tests use small values). `0` inherits
    /// `expiry_ns`.
    pub tcp_established_ns: u64,
    /// RFC 4787 endpoint-independent mapping: when set, a mapping is
    /// keyed by the internal endpoint alone (full-cone), so every
    /// remote peer reaches the host through the same external endpoint.
    pub eim: bool,
    /// RFC 4787 hairpinning: internal→internal traffic addressed to a
    /// pool endpoint is translated back inside. Requires `eim` (the
    /// external lookup that resolves the target is endpoint-wide).
    pub hairpinning: bool,
}

impl NatConfig {
    /// The paper's evaluation configuration: 65,535 flows, 2 s expiry,
    /// homogeneous lifetimes, address-and-port-dependent mapping.
    pub fn paper_default() -> NatConfig {
        NatConfig {
            capacity: 65_535,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1, // slots 0..65534 -> ports 1..65535, like VigNAT
            tcp_transitory_ns: 0,
            tcp_established_ns: 0,
            eim: false,
            hairpinning: false,
        }
    }

    /// The lifetime (ns) of a flow in timeout class `class`. The TCP
    /// fields inherit `expiry_ns` while unset (0), so a config that
    /// never mentions them behaves exactly like the paper's.
    pub fn lifetime_ns(&self, class: TimeoutClass) -> u64 {
        let inherit = |ns: u64| if ns == 0 { self.expiry_ns } else { ns };
        match class {
            TimeoutClass::Udp => self.expiry_ns,
            TimeoutClass::TcpTransitory => inherit(self.tcp_transitory_ns),
            TimeoutClass::TcpEstablished => inherit(self.tcp_established_ns),
        }
    }

    /// The shortest configured lifetime across all classes. The loop
    /// body passes `now - min_lifetime` to `expire_flows`, and the flow
    /// table reconstructs `now` (and each class's threshold) from it —
    /// keeping the environment seam's single-threshold shape intact.
    pub fn min_lifetime_ns(&self) -> u64 {
        TimeoutClass::ALL
            .into_iter()
            .map(|c| self.lifetime_ns(c))
            .min()
            .expect("ALL is non-empty")
    }

    /// True when every class shares `expiry_ns` — the paper's original
    /// configuration, on which the per-class machinery must reduce to
    /// the verified single-lifetime behavior bit for bit.
    pub fn is_homogeneous(&self) -> bool {
        TimeoutClass::ALL
            .into_iter()
            .all(|c| self.lifetime_ns(c) == self.expiry_ns)
    }

    /// Expiry threshold for packets arriving at `now`: flows stamped at
    /// or before this are dead (Fig. 6 line 7: `timestamp + Texp <= t`).
    /// `None` while `now < Texp`, when nothing can have expired yet.
    pub fn expiry_threshold(&self, now: Time) -> Option<Time> {
        now.nanos().checked_sub(self.expiry_ns).map(Time)
    }

    /// Per-class expiry threshold: a class-`c` flow stamped at or
    /// before this is dead at `now`. Same `checked_sub` shape as
    /// [`NatConfig::expiry_threshold`].
    pub fn expiry_threshold_for(&self, class: TimeoutClass, now: Time) -> Option<Time> {
        now.nanos().checked_sub(self.lifetime_ns(class)).map(Time)
    }

    // --- the external endpoint pool ------------------------------------
    //
    // The paper's NAT owns ONE external address, so `capacity` is bounded
    // by the 65536 − start_port usable ports and slot `i` maps to port
    // `start_port + i`. A million-flow NAT needs more 5-tuple space than
    // one address holds; the standard carrier-grade answer is an address
    // *pool*: consecutive addresses starting at `external_ip`, each
    // carrying the same port range. Slot `i` maps to the `i`-th endpoint
    // of the pool in (address, port) lexicographic order — a bijection,
    // so every slot still owns exactly one external endpoint and the
    // paper's slot⇄endpoint reasoning survives unchanged. With
    // `capacity <= ports_per_ip()` the pool is exactly one address and
    // every function below reduces to the paper's single-IP behavior.

    /// Usable external ports per pool address: `start_port..=65535`.
    pub fn ports_per_ip(&self) -> usize {
        65_536 - usize::from(self.start_port)
    }

    /// Number of consecutive external addresses the pool spans
    /// (1 while `capacity <= ports_per_ip()` — the paper's setup).
    pub fn num_external_ips(&self) -> usize {
        self.capacity.div_ceil(self.ports_per_ip()).max(1)
    }

    /// The external address slot `slot` translates through.
    pub fn ext_ip_of_slot(&self, slot: usize) -> Ip4 {
        debug_assert!(slot < self.capacity, "slot out of range");
        Ip4(self.external_ip.raw() + (slot / self.ports_per_ip()) as u32)
    }

    /// The external port slot `slot` translates through.
    pub fn ext_port_of_slot(&self, slot: usize) -> u16 {
        debug_assert!(slot < self.capacity, "slot out of range");
        self.start_port + (slot % self.ports_per_ip()) as u16
    }

    /// Inverse of the slot→endpoint bijection: which slot owns external
    /// endpoint `(ip, port)`? `None` when the endpoint is outside the
    /// pool (return traffic for it can never match a flow).
    pub fn slot_of_endpoint(&self, ip: Ip4, port: u16) -> Option<usize> {
        let ip_off = ip.raw().checked_sub(self.external_ip.raw())? as usize;
        if ip_off >= self.num_external_ips() {
            return None;
        }
        let port_off = usize::from(port.checked_sub(self.start_port)?);
        let slot = ip_off * self.ports_per_ip() + port_off;
        (slot < self.capacity).then_some(slot)
    }

    /// Whether `(ip, port)` is an endpoint this NAT may translate
    /// through (i.e. some slot owns it).
    pub fn pool_contains(&self, ip: Ip4, port: u16) -> bool {
        self.slot_of_endpoint(ip, port).is_some()
    }
}

/// One abstract flow-table entry: the internal 5-tuple, the allocated
/// external endpoint (pool address + port), the last-activity
/// timestamp, and — for TCP flows — the connection-tracker state that
/// selects the flow's timeout class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractFlow {
    /// Internal-side flow identifier.
    pub fid: FlowId,
    /// Allocated external (pool) address.
    pub ext_ip: Ip4,
    /// Allocated external port.
    pub ext_port: u16,
    /// Last time a packet of this flow was seen.
    pub last_active: Time,
    /// TCP tracker state; `None` for UDP flows.
    pub tcp_state: Option<TcpState>,
}

impl AbstractFlow {
    /// The external key under which return traffic matches this flow.
    pub fn ext_key(&self) -> ExtKey {
        ExtKey {
            ext_ip: self.ext_ip,
            ext_port: self.ext_port,
            dst_ip: self.fid.dst_ip,
            dst_port: self.fid.dst_port,
            proto: self.fid.proto,
        }
    }

    /// The timeout class this flow currently expires under.
    pub fn class(&self) -> TimeoutClass {
        class_of(self.fid.proto, self.tcp_state)
    }
}

/// The abstract NAT state: configuration plus the flow table.
///
/// Invariants (checked by [`AbstractNat::check_invariants`], maintained
/// by construction):
///
/// * at most `capacity` flows;
/// * internal flow ids are pairwise distinct;
/// * external endpoints `(ext_ip, ext_port)` are pairwise distinct and
///   drawn from the configured pool (the strong uniqueness VigNAT
///   provides; RFC 3022 NAPT only requires distinct external *keys*);
/// * no flow uses external port 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractNat {
    config: NatConfig,
    flows: Vec<AbstractFlow>,
}

impl AbstractNat {
    /// Fresh NAT with an empty flow table.
    pub fn new(config: NatConfig) -> AbstractNat {
        AbstractNat {
            config,
            flows: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NatConfig {
        &self.config
    }

    /// Current flow count.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// True when the table is full (`size(flow_table) == CAP`).
    pub fn is_full(&self) -> bool {
        self.flows.len() >= self.config.capacity
    }

    /// The flows (unspecified order).
    pub fn flows(&self) -> &[AbstractFlow] {
        &self.flows
    }

    /// Fig. 6 `expire_flows(t)`, per timeout class: remove every flow
    /// with `timestamp + lifetime(class) <= t`. With homogeneous
    /// lifetimes every class shares `Texp` and this is exactly the
    /// paper's rule. Returns the removed flows.
    pub fn expire_flows(&mut self, now: Time) -> Vec<AbstractFlow> {
        let config = self.config;
        let (dead, live): (Vec<_>, Vec<_>) = self.flows.iter().copied().partition(|f| {
            match config.expiry_threshold_for(f.class(), now) {
                Some(threshold) => f.last_active <= threshold,
                // now < lifetime: flows of this class cannot have
                // expired yet.
                None => false,
            }
        });
        self.flows = live;
        dead
    }

    /// Find a flow by its internal 5-tuple (`F(P)` for internal packets).
    pub fn lookup_internal(&self, fid: &FlowId) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.fid == *fid)
    }

    /// Find a flow by its external key (`F(P)` for external packets).
    pub fn lookup_external(&self, ek: &ExtKey) -> Option<&AbstractFlow> {
        self.flows.iter().find(|f| f.ext_key() == *ek)
    }

    /// Is this external endpoint already allocated to some flow? (With
    /// a single-address pool this is the paper's "port in use" test;
    /// with a larger pool the same port may serve once per address.)
    pub fn endpoint_in_use(&self, ip: Ip4, port: u16) -> bool {
        self.flows
            .iter()
            .any(|f| f.ext_ip == ip && f.ext_port == port)
    }

    /// Fig. 6 lines 10–12: refresh the timestamp of an existing flow.
    /// Returns `false` if the flow is absent (caller error).
    pub fn refresh(&mut self, fid: &FlowId, now: Time) -> bool {
        self.refresh_with(fid, now, Direction::Internal, 0)
    }

    /// [`AbstractNat::refresh`] plus the TCP tracker step: the packet
    /// arrived from `dir` carrying `tcp_flags` (0 for UDP — the tracker
    /// never fires on an empty flag set).
    pub fn refresh_with(&mut self, fid: &FlowId, now: Time, dir: Direction, tcp_flags: u8) -> bool {
        match self.flows.iter_mut().find(|f| f.fid == *fid) {
            Some(f) => {
                f.last_active = now;
                if let Some(st) = f.tcp_state {
                    f.tcp_state = Some(transition(st, dir, tcp_flags));
                }
                true
            }
            None => false,
        }
    }

    /// Fig. 6 line 16: insert a new flow mapped to the external
    /// endpoint `(ext_ip, ext_port)`. Enforces the state invariants;
    /// an `Err` here means the *caller* (the NF under test, or a buggy
    /// spec client) violated the RFC. The endpoint must belong to the
    /// configured pool (with a single-address pool: `ext_ip` must be
    /// `EXT_IP`, exactly the paper's constraint).
    pub fn insert(
        &mut self,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        now: Time,
    ) -> Result<(), InsertError> {
        self.insert_with_flags(fid, ext_ip, ext_port, now, 0)
    }

    /// [`AbstractNat::insert`] plus the TCP tracker: the mapping is
    /// created by a segment carrying `tcp_flags` (ignored for UDP),
    /// which selects the flow's initial tracker state.
    pub fn insert_with_flags(
        &mut self,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        now: Time,
        tcp_flags: u8,
    ) -> Result<(), InsertError> {
        if self.is_full() {
            return Err(InsertError::TableFull);
        }
        if self.lookup_internal(&fid).is_some() {
            return Err(InsertError::DuplicateFlowId);
        }
        if ext_port == 0 {
            return Err(InsertError::PortZero);
        }
        // With the paper's single-address pool the spec constrains only
        // the address (Fig. 6 rewrites to EXT_IP; the port is the NF's
        // free choice). With a multi-address pool the whole endpoint
        // must come from the pool — the address/port pair is how return
        // traffic finds its way back.
        let in_pool = if self.config.num_external_ips() == 1 {
            ext_ip == self.config.external_ip
        } else {
            self.config.pool_contains(ext_ip, ext_port)
        };
        if !in_pool {
            return Err(InsertError::EndpointOutsidePool(ext_ip, ext_port));
        }
        if self.endpoint_in_use(ext_ip, ext_port) {
            return Err(InsertError::EndpointInUse(ext_ip, ext_port));
        }
        self.flows.push(AbstractFlow {
            fid,
            ext_ip,
            ext_port,
            last_active: now,
            tcp_state: (fid.proto == Proto::Tcp).then(|| initial_state(tcp_flags)),
        });
        Ok(())
    }

    /// Verify the state invariants hold (used by tests and after
    /// deserialization-like operations; `insert` maintains them).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.flows.len() > self.config.capacity {
            return Err(format!(
                "flow table over capacity: {} > {}",
                self.flows.len(),
                self.config.capacity
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.ext_port == 0 {
                return Err("flow uses external port 0".into());
            }
            let in_pool = if self.config.num_external_ips() == 1 {
                f.ext_ip == self.config.external_ip
            } else {
                self.config.pool_contains(f.ext_ip, f.ext_port)
            };
            if !in_pool {
                return Err(format!(
                    "flow endpoint {}:{} outside the configured pool",
                    f.ext_ip, f.ext_port
                ));
            }
            for g in &self.flows[i + 1..] {
                if f.fid == g.fid {
                    return Err(format!("duplicate internal flow id: {}", f.fid));
                }
                if f.ext_ip == g.ext_ip && f.ext_port == g.ext_port {
                    return Err(format!(
                        "duplicate external endpoint: {}:{}",
                        f.ext_ip, f.ext_port
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Why an [`AbstractNat::insert`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// `size(flow_table) == CAP`.
    TableFull,
    /// The internal 5-tuple is already mapped.
    DuplicateFlowId,
    /// Port 0 is never a valid translation.
    PortZero,
    /// The external endpoint is not in the configured pool.
    EndpointOutsidePool(Ip4, u16),
    /// The external endpoint is already allocated.
    EndpointInUse(Ip4, u16),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::Proto;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 3,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn fid(h: u8) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, h),
            src_port: 5000,
            dst_ip: Ip4::new(1, 1, 1, 1),
            dst_port: 80,
            proto: Proto::Udp,
        }
    }

    #[test]
    fn insert_until_full() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1))
            .unwrap();
        n.insert(fid(2), Ip4::new(10, 1, 0, 1), 1001, Time::from_secs(1))
            .unwrap();
        n.insert(fid(3), Ip4::new(10, 1, 0, 1), 1002, Time::from_secs(1))
            .unwrap();
        assert!(n.is_full());
        assert_eq!(
            n.insert(fid(4), Ip4::new(10, 1, 0, 1), 1003, Time::from_secs(1)),
            Err(InsertError::TableFull)
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_detection() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1001, Time::from_secs(1)),
            Err(InsertError::DuplicateFlowId)
        );
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(1)),
            Err(InsertError::EndpointInUse(Ip4::new(10, 1, 0, 1), 1000))
        );
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 1), 0, Time::from_secs(1)),
            Err(InsertError::PortZero)
        );
    }

    #[test]
    fn expiry_is_exact_per_fig6() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(5))
            .unwrap();
        // timestamp + Texp = 15s; at t=14.999..9 it survives, at 15 it dies
        assert!(n
            .expire_flows(Time(Time::from_secs(15).nanos() - 1))
            .is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(15)).len(), 1);
        assert!(n.is_empty());
    }

    #[test]
    fn early_clock_expires_nothing() {
        // now < Texp: threshold undefined, nothing expires — including
        // flows stamped at t=0 (the saturating-subtraction bug this
        // guards against would wrongly kill them).
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::ZERO)
            .unwrap();
        assert!(n.expire_flows(Time::from_secs(9)).is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(10)).len(), 1);
    }

    #[test]
    fn refresh_rescues_flow() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, Time::from_secs(0))
            .unwrap();
        assert!(n.refresh(&fid(1), Time::from_secs(8)));
        assert!(
            n.expire_flows(Time::from_secs(10)).is_empty(),
            "refreshed at 8s, dies at 18s"
        );
        assert_eq!(n.expire_flows(Time::from_secs(18)).len(), 1);
        assert!(!n.refresh(&fid(1), Time::from_secs(19)), "gone now");
    }

    #[test]
    fn lookup_by_both_keys() {
        let mut n = AbstractNat::new(cfg());
        n.insert(fid(7), Ip4::new(10, 1, 0, 1), 1002, Time::from_secs(1))
            .unwrap();
        let f = n.lookup_internal(&fid(7)).copied().unwrap();
        assert_eq!(n.lookup_external(&f.ext_key()).unwrap().fid, fid(7));
        assert!(n
            .lookup_external(&ExtKey {
                ext_port: 9999,
                ..f.ext_key()
            })
            .is_none());
    }

    #[test]
    fn pool_mapping_is_a_bijection() {
        // Capacity larger than one address' worth of ports: the pool
        // spills onto consecutive addresses, and slot -> endpoint ->
        // slot round-trips for every slot.
        let c = NatConfig {
            capacity: 70_000,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1024,
            ..NatConfig::paper_default()
        };
        assert_eq!(c.ports_per_ip(), 64_512);
        assert_eq!(c.num_external_ips(), 2);
        for slot in [0usize, 1, 64_511, 64_512, 69_999] {
            let (ip, port) = (c.ext_ip_of_slot(slot), c.ext_port_of_slot(slot));
            assert_eq!(c.slot_of_endpoint(ip, port), Some(slot), "slot {slot}");
        }
        assert_eq!(c.ext_ip_of_slot(0), Ip4::new(10, 1, 0, 1));
        assert_eq!(c.ext_ip_of_slot(64_512), Ip4::new(10, 1, 0, 2));
        // Out-of-pool endpoints are rejected from every side.
        assert_eq!(c.slot_of_endpoint(Ip4::new(10, 1, 0, 3), 1024), None);
        assert_eq!(c.slot_of_endpoint(Ip4::new(10, 1, 0, 1), 1023), None);
        assert_eq!(
            c.slot_of_endpoint(Ip4::new(10, 1, 0, 2), 1024 + (70_000 - 64_512) as u16),
            None,
            "past the capacity edge on the last address"
        );
    }

    #[test]
    fn multi_ip_insert_enforces_pool_membership() {
        let c = NatConfig {
            capacity: 70_000,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1024,
            ..NatConfig::paper_default()
        };
        let mut n = AbstractNat::new(c);
        n.insert(fid(1), Ip4::new(10, 1, 0, 2), 1024, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(2), Ip4::new(10, 1, 0, 9), 1024, Time::from_secs(1)),
            Err(InsertError::EndpointOutsidePool(
                Ip4::new(10, 1, 0, 9),
                1024
            ))
        );
        // Same port on a *different* pool address is a distinct endpoint.
        n.insert(fid(3), Ip4::new(10, 1, 0, 1), 1024, Time::from_secs(1))
            .unwrap();
        assert_eq!(
            n.insert(fid(4), Ip4::new(10, 1, 0, 2), 1024, Time::from_secs(2)),
            Err(InsertError::EndpointInUse(Ip4::new(10, 1, 0, 2), 1024))
        );
        n.check_invariants().unwrap();
    }

    #[test]
    fn per_class_lifetimes_expire_independently() {
        // UDP 10s, TCP transitory 2s, TCP established 30s.
        let c = NatConfig {
            tcp_transitory_ns: Time::from_secs(2).nanos(),
            tcp_established_ns: Time::from_secs(30).nanos(),
            ..cfg()
        };
        assert!(!c.is_homogeneous());
        assert_eq!(c.min_lifetime_ns(), Time::from_secs(2).nanos());
        let tcp_fid = |h: u8| FlowId {
            proto: Proto::Tcp,
            ..fid(h)
        };
        let mut n = AbstractNat::new(c);
        let t1 = Time::from_secs(1);
        n.insert(fid(1), Ip4::new(10, 1, 0, 1), 1000, t1).unwrap();
        n.insert_with_flags(
            tcp_fid(2),
            Ip4::new(10, 1, 0, 1),
            1001,
            t1,
            vig_packet::tcp::flags::SYN,
        )
        .unwrap();
        n.insert_with_flags(
            tcp_fid(3),
            Ip4::new(10, 1, 0, 1),
            1002,
            t1,
            vig_packet::tcp::flags::ACK, // mid-stream pickup: established
        )
        .unwrap();
        assert_eq!(n.flows()[1].tcp_state, Some(TcpState::SynSent));
        assert_eq!(n.flows()[2].tcp_state, Some(TcpState::Established));
        // t=3s: only the half-open TCP flow (transitory, 2s) dies.
        let dead = n.expire_flows(Time::from_secs(3));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].fid, tcp_fid(2));
        // t=11s: the UDP flow (10s) dies; established TCP survives.
        let dead = n.expire_flows(Time::from_secs(11));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].fid, fid(1));
        // t=31s: the established flow finally dies.
        assert_eq!(n.expire_flows(Time::from_secs(31)).len(), 1);
        assert!(n.is_empty());
    }

    #[test]
    fn rst_demotes_established_to_transitory_lifetime() {
        let c = NatConfig {
            tcp_transitory_ns: Time::from_secs(2).nanos(),
            tcp_established_ns: Time::from_secs(30).nanos(),
            ..cfg()
        };
        let tfid = FlowId {
            proto: Proto::Tcp,
            ..fid(1)
        };
        let mut n = AbstractNat::new(c);
        n.insert_with_flags(
            tfid,
            Ip4::new(10, 1, 0, 1),
            1000,
            Time::from_secs(1),
            vig_packet::tcp::flags::ACK,
        )
        .unwrap();
        // Established at 1s would live to 31s; the RST at 5s demotes it
        // to the transitory class, so it dies at 7s.
        assert!(n.refresh_with(
            &tfid,
            Time::from_secs(5),
            Direction::External,
            vig_packet::tcp::flags::RST
        ));
        assert_eq!(n.flows()[0].tcp_state, Some(TcpState::Closed));
        assert!(n
            .expire_flows(Time(Time::from_secs(7).nanos() - 1))
            .is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(7)).len(), 1);
    }

    #[test]
    fn homogeneous_config_ignores_tcp_state_for_expiry() {
        // All lifetimes equal: a SynSent TCP flow and a UDP flow expire
        // at exactly the same tick — the paper's single-Texp behavior.
        let c = cfg();
        assert!(c.is_homogeneous());
        let tfid = FlowId {
            proto: Proto::Tcp,
            ..fid(1)
        };
        let mut n = AbstractNat::new(c);
        let t1 = Time::from_secs(1);
        n.insert_with_flags(
            tfid,
            Ip4::new(10, 1, 0, 1),
            1000,
            t1,
            vig_packet::tcp::flags::SYN,
        )
        .unwrap();
        n.insert(fid(2), Ip4::new(10, 1, 0, 1), 1001, t1).unwrap();
        assert!(n
            .expire_flows(Time(Time::from_secs(11).nanos() - 1))
            .is_empty());
        assert_eq!(n.expire_flows(Time::from_secs(11)).len(), 2);
    }

    #[test]
    fn threshold_none_before_texp() {
        let c = cfg();
        assert_eq!(c.expiry_threshold(Time::from_secs(9)), None);
        assert_eq!(c.expiry_threshold(Time::from_secs(10)), Some(Time::ZERO));
        assert_eq!(
            c.expiry_threshold(Time::from_secs(12)),
            Some(Time::from_secs(2))
        );
    }
}
