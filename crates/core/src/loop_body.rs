//! The stateless NAT loop body — the code Vigor verifies.
//!
//! One call = one iteration of the paper's Fig. 1-style event loop,
//! specialized to the NAT: expire, receive, validate, translate,
//! forward. **Every** branch the NAT ever takes is in this function, on
//! domain values, through [`NatEnv::branch`] — which is what lets the
//! symbolic engine enumerate all feasible paths of exactly this code
//! (not a model of it), the way the paper's modified KLEE explores the
//! C loop.
//!
//! Reading guide, mapping to the paper's Fig. 6:
//!
//! * "Packet P arrives at time t" → [`NatEnv::now`] + [`NatEnv::receive`];
//!   the validation ladder below realizes "P is accepted" (frames the
//!   spec never sees are dropped here, covered by low-level properties).
//! * `expire_flows(t)` → the guarded [`NatEnv::expire_flows`] call;
//!   the `now >= Texp` guard makes the `now - Texp` subtraction safe,
//!   which the symbolic domain proves as a P2 obligation.
//! * `update_flow(P, t)` → the lookup/rejuvenate/allocate/insert calls.
//! * `forward(P)` → the [`NatEnv::tx`]/[`NatEnv::drop_pkt`] calls with
//!   Fig. 6's header rewrites, including VigNAT's signature
//!   `ext_port = start_port + offset` arithmetic, where the offset is
//!   the slot's index within its pool address — the slot index itself
//!   under the paper's single-address pool (overflow-proven from the
//!   pool construction `offset < ports_per_ip <= 65536 - start_port`).
//!
//! The validation ladder is ordered so that **no header field is used
//! semantically before the length guard covering it has passed** —
//! concrete environments zero-fill short reads, and this ordering is
//! what makes that safe (and is itself visible to the verifier).

use crate::env::{ExtParts, FidParts, FlowView, NatEnv, RxPacket, TxHdr};
use vig_packet::{Direction, Proto};
use vig_spec::NatConfig;

/// What one loop iteration did (ghost data for tests and statistics;
/// the symbolic engine ignores it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationOutcome {
    /// No packet was pending.
    NoPacket,
    /// A packet was received and dropped.
    Dropped(DropReason),
    /// A packet was received, translated and transmitted on this
    /// interface.
    Forwarded(Direction),
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Frame shorter than an Ethernet header.
    ShortL2,
    /// EtherType is not IPv4.
    NotIpv4,
    /// Frame shorter than Ethernet + minimal IPv4 header.
    ShortL3,
    /// IP version field is not 4.
    BadVersion,
    /// IHL below 20 bytes.
    BadIhl,
    /// IPv4 `total_len` inconsistent with the frame.
    BadTotalLen,
    /// Fragmented packet (MF set or offset non-zero).
    Fragment,
    /// Protocol is neither TCP nor UDP.
    BadProto,
    /// IPv4 header longer than the datagram.
    HeaderOverrun,
    /// Datagram too short for the L4 header.
    ShortL4,
    /// No matching flow for an external packet.
    NoFlow,
    /// Flow table full for a new internal flow.
    TableFull,
}

/// One iteration of the NAT's packet-processing loop. See module docs.
///
/// `cfg` must satisfy the VigNAT configuration invariants (checked by
/// [`check_config`]): `capacity >= 1`, a non-zero `start_port`, and an
/// endpoint pool that fits the IPv4 space; the port-arithmetic proof
/// relies on them.
pub fn nat_loop_iteration<E: NatEnv + ?Sized>(env: &mut E, cfg: &NatConfig) -> IterationOutcome {
    let now = env.now();
    expire_guarded(env, cfg, &now);

    // --- receive -------------------------------------------------------
    let Some(pkt) = env.receive() else {
        return IterationOutcome::NoPacket;
    };

    process_received(env, cfg, pkt, now, None)
}

/// `expire_flows(t)` with the `now >= Texp` guard (Fig. 6 line 2):
/// threshold = now - Texp, the subtraction made safe by the guard.
///
/// `Texp` is the **shortest** configured lifetime
/// ([`NatConfig::min_lifetime_ns`]): with per-class TCP/UDP lifetimes
/// the flow table reconstructs `now = threshold + min_lifetime` and
/// applies each class's own threshold internally, keeping this seam's
/// single-threshold shape (and the symbolic path count) unchanged.
/// With the paper's homogeneous configuration `min_lifetime_ns()` *is*
/// `expiry_ns` and this is Fig. 6 verbatim.
fn expire_guarded<E: NatEnv + ?Sized>(env: &mut E, cfg: &NatConfig, now: &E::U64) {
    let texp = env.c_u64(cfg.min_lifetime_ns());
    let expirable = env.le_u64(&texp, now);
    if env.branch(expirable) {
        let threshold = env.sub_u64(now, &texp); // safe: texp <= now
        env.expire_flows(&threshold);
    }
}

/// Validate + translate one received packet. `hint` is an optional
/// prefetched internal-lookup result from a batched probe
/// ([`NatEnv::lookup_internal_batch`]); `None` means "look up at the
/// sequence point" — the single-packet path always passes `None`, so
/// its behaviour is byte-for-byte the pre-batching code.
fn process_received<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: RxPacket<E>,
    now: E::U64,
    hint: Option<FlowView<E>>,
) -> IterationOutcome {
    match validate(env, &pkt) {
        Ok(proto) => match pkt.dir {
            Direction::Internal => translate_internal(env, cfg, &pkt, proto, now, hint),
            Direction::External => translate_external(env, cfg, &pkt, proto, now),
        },
        Err(reason) => {
            env.drop_pkt(pkt.handle);
            IterationOutcome::Dropped(reason)
        }
    }
}

/// The validation ladder (module docs): every length/format branch the
/// NAT takes before a packet's fields may be used semantically. Pure
/// with respect to the flow table and the packet buffer — it decides,
/// the caller drops. Returns the (concrete) protocol on acceptance.
fn validate<E: NatEnv + ?Sized>(env: &mut E, pkt: &RxPacket<E>) -> Result<Proto, DropReason> {
    // --- validation ladder ----------------------------------------------
    // L2: enough bytes for the Ethernet header?
    let eth_len = env.c_u16(14);
    let short_l2 = env.lt_u16(&pkt.frame_len, &eth_len);
    if env.branch(short_l2) {
        return Err(DropReason::ShortL2);
    }
    // EtherType must be IPv4.
    let ipv4_ethertype = env.c_u16(0x0800);
    let is_ipv4 = env.eq_u16(&pkt.ethertype, &ipv4_ethertype);
    let not_ipv4 = env.not(&is_ipv4);
    if env.branch(not_ipv4) {
        return Err(DropReason::NotIpv4);
    }
    // L3: enough bytes for a minimal IPv4 header?
    let min_l3 = env.c_u16(14 + 20);
    let short_l3 = env.lt_u16(&pkt.frame_len, &min_l3);
    if env.branch(short_l3) {
        return Err(DropReason::ShortL3);
    }
    // Version nibble must be 4.
    let version = env.shr_u8(&pkt.version_ihl, 4);
    let four = env.c_u8(4);
    let is_v4 = env.eq_u8(&version, &four);
    let not_v4 = env.not(&is_v4);
    if env.branch(not_v4) {
        return Err(DropReason::BadVersion);
    }
    // IHL: low nibble * 4 bytes, must be >= 20. (The `& 0x0f` bounds the
    // shift operand, discharging the shl obligation: result <= 60.)
    let ihl_nibble = env.and_u8(&pkt.version_ihl, 0x0f);
    let ihl_bytes8 = env.shl_u8(&ihl_nibble, 2);
    let ihl = env.u8_to_u16(&ihl_bytes8);
    let twenty = env.c_u16(20);
    let bad_ihl = env.lt_u16(&ihl, &twenty);
    if env.branch(bad_ihl) {
        return Err(DropReason::BadIhl);
    }
    // total_len must fit in the frame: total_len <= frame_len - 14.
    // (Subtraction is safe: frame_len >= 34 was just established.)
    let ip_budget = env.sub_u16(&pkt.frame_len, &eth_len);
    let fits = env.le_u16(&pkt.total_len, &ip_budget);
    let overruns = env.not(&fits);
    if env.branch(overruns) {
        return Err(DropReason::BadTotalLen);
    }
    // No fragments: MF flag and fragment offset must both be zero
    // (mask 0x3fff = offset bits 0x1fff | MF bit 0x2000).
    let frag_bits = env.and_u16(&pkt.frag_field, 0x3fff);
    let zero16 = env.c_u16(0);
    let unfragmented = env.eq_u16(&frag_bits, &zero16);
    let fragmented = env.not(&unfragmented);
    if env.branch(fragmented) {
        return Err(DropReason::Fragment);
    }
    // Protocol dispatch: TCP (6) or UDP (17); anything else drops.
    let tcp_no = env.c_u8(6);
    let udp_no = env.c_u8(17);
    let is_tcp = env.eq_u8(&pkt.proto, &tcp_no);
    let proto = if env.branch(is_tcp) {
        Proto::Tcp
    } else {
        let is_udp = env.eq_u8(&pkt.proto, &udp_no);
        if env.branch(is_udp) {
            Proto::Udp
        } else {
            return Err(DropReason::BadProto);
        }
    };
    // The IPv4 header must fit inside the datagram: ihl <= total_len.
    let hdr_fits = env.le_u16(&ihl, &pkt.total_len);
    let hdr_overruns = env.not(&hdr_fits);
    if env.branch(hdr_overruns) {
        return Err(DropReason::HeaderOverrun);
    }
    // And the datagram must hold the L4 header (20 for TCP, 8 for UDP).
    // (Subtraction safe: ihl <= total_len just established. Together
    // with total_len <= frame_len - 14 this proves the L4 ports lie
    // within the frame, so the zero-fill fallback is never used on
    // forwarded packets.)
    let l4_avail = env.sub_u16(&pkt.total_len, &ihl);
    let l4_need = env.c_u16(match proto {
        Proto::Tcp => 20,
        Proto::Udp => 8,
    });
    let short_l4 = env.lt_u16(&l4_avail, &l4_need);
    if env.branch(short_l4) {
        return Err(DropReason::ShortL4);
    }

    Ok(proto)
}

/// Internal → external path: match or create, rewrite source to
/// `(EXT_IP, ext_port)`.
///
/// `hint`: a *trusted hit* from a batched lookup, or `None` to probe
/// here. Only hits may be passed: a burst-mate packet can insert a flow
/// after the batch probe (so a batched miss must be re-checked, which
/// passing `None` does), but nothing removes flows mid-burst, so a
/// batched hit stays valid.
fn translate_internal<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: &RxPacket<E>,
    proto: Proto,
    now: E::U64,
    hint: Option<FlowView<E>>,
) -> IterationOutcome {
    // Hairpinning (RFC 4787 REQ-9): an internal packet aimed at one of
    // the NAT's *own* pool endpoints is looped back to the internal
    // host that holds that mapping, instead of being sent out. The
    // membership test is a concrete-config-shaped ladder of domain
    // comparisons; the branch on `cfg.hairpinning` itself is concrete,
    // so the paper's default configuration keeps its exact path set.
    if cfg.hairpinning && dst_is_pool_endpoint(env, cfg, pkt) {
        return hairpin_internal(env, cfg, pkt, proto, now, hint);
    }
    let fid = internal_fid(env, cfg, pkt, proto);
    let found = match hint {
        Some(flow) => Some(flow),
        None => env.lookup_internal(&fid),
    };
    match found {
        Some(flow) => {
            env.rejuvenate(flow.slot, &now, Direction::Internal, &pkt.tcp_flags);
            let hdr = TxHdr {
                src_ip: flow.ext_ip,
                src_port: flow.ext_port,
                dst_ip: pkt.dst_ip.clone(),
                dst_port: pkt.dst_port.clone(),
            };
            env.tx(pkt.handle, Direction::External, hdr);
            IterationOutcome::Forwarded(Direction::External)
        }
        None => match env.allocate_slot(&now) {
            Some((slot, offset, ext_ip)) => {
                // VigNAT's port arithmetic: ext_port = start_port +
                // offset, where the env's offset is the slot's index
                // within its pool address — the slot index itself with
                // the paper's single-address pool, making this Fig. 6's
                // `start_port + slot` verbatim. No overflow: offset <
                // ports_per_ip and start_port + ports_per_ip <= 65536
                // by construction of the pool mapping.
                let start = env.c_u16(cfg.start_port);
                let ext_port = env.add_u16(&start, &offset);
                env.insert_flow(
                    slot,
                    fid,
                    ext_ip.clone(),
                    ext_port.clone(),
                    &now,
                    &pkt.tcp_flags,
                );
                let hdr = TxHdr {
                    src_ip: ext_ip,
                    src_port: ext_port,
                    dst_ip: pkt.dst_ip.clone(),
                    dst_port: pkt.dst_port.clone(),
                };
                env.tx(pkt.handle, Direction::External, hdr);
                IterationOutcome::Forwarded(Direction::External)
            }
            None => {
                env.drop_pkt(pkt.handle);
                IterationOutcome::Dropped(DropReason::TableFull)
            }
        },
    }
}

/// External → internal path: match or drop, rewrite destination to the
/// internal endpoint.
fn translate_external<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: &RxPacket<E>,
    proto: Proto,
    now: E::U64,
) -> IterationOutcome {
    // Pool-address selection for the match key. With the paper's
    // single-address pool the NAT owns its one external address and —
    // like Fig. 6 — matches return traffic without consulting the
    // packet's destination ip (the router already delivered it here).
    // With a multi-address pool the destination ip *selects* the pool
    // address, so it joins the key. The branch is on concrete
    // configuration, not packet data — both the symbolic engine and
    // the differential tests see a fixed shape per config.
    let ext_ip = if cfg.num_external_ips() == 1 {
        env.c_u32(cfg.external_ip.raw())
    } else {
        pkt.dst_ip.clone()
    };
    // Under endpoint-independent mapping the mapping is keyed by the
    // allocated endpoint alone — the remote fields are the canonical
    // zeros, so any external sender matches (full-cone). Concrete-config
    // branch, like the pool-address selection above.
    let (rem_ip, rem_port) = if cfg.eim {
        (env.c_u32(0), env.c_u16(0))
    } else {
        (pkt.src_ip.clone(), pkt.src_port.clone())
    };
    let ek = ExtParts {
        ext_ip,
        ext_port: pkt.dst_port.clone(),
        dst_ip: rem_ip,
        dst_port: rem_port,
        proto,
    };
    match env.lookup_external(&ek) {
        Some(flow) => {
            env.rejuvenate(flow.slot, &now, Direction::External, &pkt.tcp_flags);
            let hdr = TxHdr {
                src_ip: pkt.src_ip.clone(),
                src_port: pkt.src_port.clone(),
                dst_ip: flow.int_ip,
                dst_port: flow.int_port,
            };
            env.tx(pkt.handle, Direction::Internal, hdr);
            IterationOutcome::Forwarded(Direction::Internal)
        }
        None => {
            env.drop_pkt(pkt.handle);
            IterationOutcome::Dropped(DropReason::NoFlow)
        }
    }
}

/// Build the internal match key for a packet. Under RFC 4787
/// endpoint-independent mapping (`cfg.eim`) the remote endpoint does
/// not participate in the mapping — the key's destination fields are
/// canonicalized to zero, so every remote peer reuses the same
/// mapping. The branch is on concrete configuration, so each config
/// has a fixed key shape (and a fixed symbolic path set).
fn internal_fid<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: &RxPacket<E>,
    proto: Proto,
) -> FidParts<E> {
    let (dst_ip, dst_port) = if cfg.eim {
        (env.c_u32(0), env.c_u16(0))
    } else {
        (pkt.dst_ip.clone(), pkt.dst_port.clone())
    };
    FidParts {
        src_ip: pkt.src_ip.clone(),
        src_port: pkt.src_port.clone(),
        dst_ip,
        dst_port,
        proto,
    }
}

/// Is the packet's destination one of the NAT's own pool endpoints?
/// Mirrors [`NatConfig::slot_of_endpoint`]'s membership test for the
/// single-address pool that hairpinning requires (enforced by
/// [`check_config`]): `dst_ip == external_ip && start_port <= dst_port
/// < start_port + capacity`. Built as a ladder of domain comparisons —
/// each conjunct is its own [`NatEnv::branch`], the same shape the
/// validation ladder uses.
fn dst_is_pool_endpoint<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: &RxPacket<E>,
) -> bool {
    debug_assert_eq!(
        cfg.num_external_ips(),
        1,
        "hairpinning requires a single-address pool (check_config)"
    );
    let ext = env.c_u32(cfg.external_ip.raw());
    let ip_match = env.eq_u32(&pkt.dst_ip, &ext);
    if !env.branch(ip_match) {
        return false;
    }
    let start = env.c_u16(cfg.start_port);
    let below = env.lt_u16(&pkt.dst_port, &start);
    if env.branch(below) {
        return false;
    }
    // start_port + capacity <= 65536 by the pool-fits-IPv4 invariant;
    // when it is exactly 65536 every port >= start_port is in the pool
    // and the upper test vanishes (concrete-config branch).
    let end = usize::from(cfg.start_port) + cfg.capacity;
    if end <= 65535 {
        let endv = env.c_u16(end as u16);
        let in_range = env.lt_u16(&pkt.dst_port, &endv);
        if !env.branch(in_range) {
            return false;
        }
    }
    true
}

/// The RFC 4787 hairpin leg (REQ-9): `pkt` is an internal packet
/// addressed to one of the NAT's own pool endpoints. Resolve the
/// *target* mapping by external lookup (EIM wildcard remote — the
/// config check requires EIM), resolve or create the *sender's*
/// mapping exactly as the outbound path would, and forward back on the
/// internal interface: source rewritten to the sender's external
/// endpoint (the receiving host sees the same address an external peer
/// would), destination rewritten to the target's internal endpoint.
/// No target mapping → unroutable → drop; no room for the sender's
/// mapping → drop. Only the sender's flow is rejuvenated — the target
/// merely *receives* traffic, which no more refreshes its mapping than
/// any other inbound packet creates state. Mirrors the spec's
/// `hairpin_allows` leg clause-for-clause.
fn hairpin_internal<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
    pkt: &RxPacket<E>,
    proto: Proto,
    now: E::U64,
    hint: Option<FlowView<E>>,
) -> IterationOutcome {
    let target_key = ExtParts {
        ext_ip: env.c_u32(cfg.external_ip.raw()),
        ext_port: pkt.dst_port.clone(),
        dst_ip: env.c_u32(0),
        dst_port: env.c_u16(0),
        proto,
    };
    let Some(target) = env.lookup_external(&target_key) else {
        env.drop_pkt(pkt.handle);
        return IterationOutcome::Dropped(DropReason::NoFlow);
    };
    let fid = internal_fid(env, cfg, pkt, proto);
    let sender = match hint {
        Some(flow) => Some(flow),
        None => env.lookup_internal(&fid),
    };
    match sender {
        Some(flow) => {
            env.rejuvenate(flow.slot, &now, Direction::Internal, &pkt.tcp_flags);
            let hdr = TxHdr {
                src_ip: flow.ext_ip,
                src_port: flow.ext_port,
                dst_ip: target.int_ip,
                dst_port: target.int_port,
            };
            env.tx(pkt.handle, Direction::Internal, hdr);
            IterationOutcome::Forwarded(Direction::Internal)
        }
        None => match env.allocate_slot(&now) {
            Some((slot, offset, ext_ip)) => {
                let start = env.c_u16(cfg.start_port);
                let ext_port = env.add_u16(&start, &offset);
                env.insert_flow(
                    slot,
                    fid,
                    ext_ip.clone(),
                    ext_port.clone(),
                    &now,
                    &pkt.tcp_flags,
                );
                let hdr = TxHdr {
                    src_ip: ext_ip,
                    src_port: ext_port,
                    dst_ip: target.int_ip,
                    dst_port: target.int_port,
                };
                env.tx(pkt.handle, Direction::Internal, hdr);
                IterationOutcome::Forwarded(Direction::Internal)
            }
            None => {
                env.drop_pkt(pkt.handle);
                IterationOutcome::Dropped(DropReason::TableFull)
            }
        },
    }
}

/// Largest burst [`nat_process_batch`] pulls per call — the
/// `rte_eth_rx_burst` default DPDK NFs use.
pub const MAX_BURST: usize = 32;

/// One burst of the NAT's packet-processing loop: pull up to
/// [`MAX_BURST`] packets and process them with per-packet semantics
/// **identical** to that many [`nat_loop_iteration`] calls made at the
/// same instant, while amortizing per-iteration overhead across the
/// burst:
///
/// * the clock is read **once** (a burst is one arrival instant, the
///   run-to-completion model: `rte_eth_rx_burst` → process → tx);
/// * `expire_flows` runs **once** — re-running it mid-burst is provably
///   a no-op, because every flow touched after the first scan is
///   stamped `now > now - Texp` (`Texp > 0` by the config invariant);
/// * internal flow lookups are issued as one batched probe
///   ([`NatEnv::lookup_internal_batch`]); only *hits* are trusted, and
///   misses re-probe at their sequence point, so a flow inserted by an
///   earlier packet of the same burst is still found by a later one.
///
/// The batched probe (pass 2 below) is also where **RSS-style shard
/// dispatch** rides when the environment's flow table is sharded
/// ([`crate::sharded::ShardedFlowManager`]): the probe pass has already
/// computed each query's key hash, and the sharded table splits the
/// burst into per-shard sub-batches by that same memoized hash — the
/// hash doubles as the shard selector, so dispatch adds no hash
/// computation and no extra pass. The loop body itself is oblivious:
/// slots it sees are global (`ext_port = start_port + slot` holds
/// verbatim across shards), so this function is byte-for-byte the same
/// code on sharded and unsharded tables, and the sharded differential
/// tests (`tests/shard_equivalence.rs`) lean on exactly that.
///
/// All per-packet *effects* (rejuvenate, allocate, insert, tx, drop)
/// happen strictly in arrival order, so flow-table state — including
/// LRU order and slot⇄port assignment — ends up exactly as the
/// sequential loop leaves it. `tests/batch_equivalence.rs` asserts this
/// differentially on adversarial traffic.
///
/// Returns one [`IterationOutcome`] per received packet (empty when no
/// packet was pending).
///
/// Per-burst scratch (the five small vectors below) is heap-allocated
/// per call — measured at ~2 ns/packet, and not reusable across calls
/// without threading `E`-typed buffers through every caller (the
/// env-side probe scratch, which dominates, *is* reused via
/// `BurstScratch` in netsim).
pub fn nat_process_batch<E: NatEnv + ?Sized>(
    env: &mut E,
    cfg: &NatConfig,
) -> Vec<IterationOutcome> {
    let now = env.now();
    expire_guarded(env, cfg, &now); // once per burst

    let mut pkts: Vec<RxPacket<E>> = Vec::with_capacity(MAX_BURST);
    env.receive_burst(MAX_BURST, &mut pkts);

    // Pass 1: validation ladder per packet. Decision only — the
    // `drop_pkt` *effect* is deferred to pass 3 so every buffer is
    // consumed at its own sequence point, in arrival order, exactly as
    // the sequential loop consumes them.
    let mut verdicts: Vec<Result<Proto, DropReason>> = Vec::with_capacity(pkts.len());
    for pkt in &pkts {
        verdicts.push(validate(env, pkt));
    }

    // Pass 2: one batched probe for all internal-direction lookups.
    // (On a sharded flow table this is the dispatch point: the env
    // splits these queries into per-shard sub-batches by their
    // memoized hashes — see the function docs.)
    // Keys are built by `internal_fid`, so EIM canonicalization applies
    // to batched probes exactly as to sequence-point lookups. (On the
    // hairpin path the sender's key is this same fid, so a batched hit
    // stays a valid hint there too.)
    let mut queries: Vec<FidParts<E>> = Vec::with_capacity(pkts.len());
    for (pkt, v) in pkts.iter().zip(&verdicts) {
        if let Ok(proto) = v {
            if pkt.dir == Direction::Internal {
                queries.push(internal_fid(env, cfg, pkt, *proto));
            }
        }
    }
    let mut hints: Vec<Option<FlowView<E>>> = Vec::with_capacity(queries.len());
    env.lookup_internal_batch(&queries, &mut hints);
    debug_assert_eq!(
        hints.len(),
        queries.len(),
        "env returned wrong batch result count"
    );

    // Pass 3: complete each packet in arrival order. Trust batched
    // hits; batched misses pass `None` and re-probe at the sequence
    // point (see `translate_internal`).
    let mut outcomes = Vec::with_capacity(pkts.len());
    let mut next_hint = 0;
    for (pkt, v) in pkts.iter().zip(&verdicts) {
        match v {
            Err(reason) => {
                env.drop_pkt(pkt.handle);
                outcomes.push(IterationOutcome::Dropped(*reason));
            }
            Ok(proto) => match pkt.dir {
                Direction::Internal => {
                    let hint = hints.get_mut(next_hint).and_then(Option::take);
                    next_hint += 1;
                    outcomes.push(translate_internal(env, cfg, pkt, *proto, now.clone(), hint));
                }
                Direction::External => {
                    outcomes.push(translate_external(env, cfg, pkt, *proto, now.clone()));
                }
            },
        }
    }
    outcomes
}

/// Validate the VigNAT configuration invariants the loop body's proofs
/// rely on. Call once at NF start-up (all provided environments do).
pub fn check_config(cfg: &NatConfig) -> Result<(), String> {
    if cfg.capacity == 0 {
        return Err("capacity must be at least 1".into());
    }
    // Million-flow tables are in scope; the cap below only keeps the
    // per-slot structures (flow table, dchain, timer wheel — all u32-
    // indexed) and their memory honestly bounded.
    if cfg.capacity > MAX_CAPACITY {
        return Err(format!(
            "capacity {} exceeds the supported maximum {}",
            cfg.capacity, MAX_CAPACITY
        ));
    }
    if cfg.start_port == 0 {
        return Err("start_port 0 would allocate the invalid port 0".into());
    }
    // The endpoint pool `slot -> (external_ip + slot/P, start_port +
    // slot%P)` must not run off the end of the IPv4 address space.
    // (With capacity <= P this reduces to the paper's single-address
    // `start_port + capacity <= 65536` shape: one address, contiguous
    // ports.)
    let last_ip = u64::from(cfg.external_ip.raw()) + (cfg.num_external_ips() as u64 - 1);
    if last_ip > u64::from(u32::MAX) {
        return Err(format!(
            "endpoint pool overflows the IPv4 space: {} addresses from {}",
            cfg.num_external_ips(),
            cfg.external_ip
        ));
    }
    if cfg.expiry_ns == 0 {
        return Err("expiry must be non-zero (flows would die instantly)".into());
    }
    // Per-class TCP lifetimes: zero means "inherit expiry_ns", so
    // lifetime_ns() is non-zero for every class once expiry_ns is —
    // nothing further to check there. Hairpinning, however, has two
    // structural prerequisites:
    if cfg.hairpinning && !cfg.eim {
        // The hairpin target is resolved by its allocated endpoint
        // alone — without EIM the mapping is keyed by a specific remote
        // endpoint and the hairpinned sender can never match it.
        return Err("hairpinning requires endpoint-independent mapping (eim)".into());
    }
    if cfg.hairpinning && cfg.num_external_ips() > 1 {
        // Pool membership is a port-range test only when the pool is
        // one address; RFC 4787's reference NAT has a single external
        // address, and multi-address hairpinning is out of scope.
        return Err("hairpinning requires a single-address pool".into());
    }
    Ok(())
}

/// Largest supported `capacity`: 2^26 flows. Far beyond the paper's
/// evaluation (and the issue's 2^20 target) while keeping u32 slot
/// indices — which the timer wheel's intrusive links use — comfortably
/// valid and table memory bounded.
pub const MAX_CAPACITY: usize = 1 << 26;

#[cfg(test)]
mod tests {
    use super::*;
    use libvig::time::Time;
    use vig_packet::Ip4;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn config_invariants() {
        check_config(&cfg()).unwrap();
        check_config(&NatConfig {
            capacity: 0,
            ..cfg()
        })
        .unwrap_err();
        // Capacities past one address' worth of ports are now valid —
        // the pool spills onto consecutive addresses.
        check_config(&NatConfig {
            capacity: 70_000,
            ..cfg()
        })
        .unwrap();
        check_config(&NatConfig {
            capacity: 1 << 20,
            ..cfg()
        })
        .unwrap();
        check_config(&NatConfig {
            start_port: 65_000,
            capacity: 1000,
            ..cfg()
        })
        .unwrap();
        check_config(&NatConfig {
            capacity: MAX_CAPACITY + 1,
            ..cfg()
        })
        .unwrap_err();
        // A pool that would run past 255.255.255.255 is rejected.
        check_config(&NatConfig {
            external_ip: vig_packet::Ip4::new(255, 255, 255, 255),
            capacity: 70_000,
            ..cfg()
        })
        .unwrap_err();
        check_config(&NatConfig {
            start_port: 0,
            ..cfg()
        })
        .unwrap_err();
        check_config(&NatConfig {
            expiry_ns: 0,
            ..cfg()
        })
        .unwrap_err();
        check_config(&NatConfig::paper_default()).unwrap();
        // Hairpinning needs EIM and a single-address pool.
        check_config(&NatConfig {
            hairpinning: true,
            eim: false,
            ..cfg()
        })
        .unwrap_err();
        check_config(&NatConfig {
            hairpinning: true,
            eim: true,
            capacity: 70_000, // spills onto a second pool address
            ..cfg()
        })
        .unwrap_err();
        check_config(&NatConfig {
            hairpinning: true,
            eim: true,
            ..cfg()
        })
        .unwrap();
        // EIM alone is fine, with or without per-class TCP lifetimes.
        check_config(&NatConfig {
            eim: true,
            tcp_transitory_ns: 1,
            tcp_established_ns: u64::MAX,
            ..cfg()
        })
        .unwrap();
    }
}
