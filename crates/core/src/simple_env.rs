//! A minimal concrete [`NatEnv`] over plain vectors — the test harness
//! the differential suite runs the real loop body in.
//!
//! No devices, no buffers: packets are injected as header fields,
//! outputs are recorded as field-level events. This keeps the
//! differential tests (loop body + [`FlowManager`] vs. the RFC 3022
//! [`vig_spec::SpecChecker`]) free of simulator noise — they compare
//! *decisions*, which is exactly what the spec constrains. Byte-level
//! behaviour (checksum updates, payload preservation) is covered by the
//! netsim end-to-end tests.
//!
//! The env also enforces the buffer-ownership discipline at runtime:
//! every received handle must be consumed by exactly one `tx`/`drop_pkt`
//! before the iteration ends, mirroring the Validator's leak check.

use crate::env::concrete::{ext_key, fid_key, view, FidMemo};
use crate::env::{ExtParts, FidParts, FlowView, NatEnv, PktHandle, RxPacket, SlotId, TxHdr};
use crate::flow_manager::{FlowManager, FlowTable};
use crate::loop_body::{nat_loop_iteration, nat_process_batch, IterationOutcome};
use crate::sharded::ShardedFlowManager;
use libvig::map::MapKey;
use libvig::time::Time;
use std::collections::VecDeque;
use vig_packet::{Direction, FlowFields, FlowId};
use vig_spec::NatConfig;

/// Raw header fields for an injected packet. Use [`RawRx::well_formed`]
/// for valid packets; construct directly to exercise the drop paths.
#[derive(Debug, Clone, Copy)]
pub struct RawRx {
    /// Arrival interface.
    pub dir: Direction,
    /// Frame length in bytes.
    pub frame_len: u16,
    /// EtherType.
    pub ethertype: u16,
    /// IPv4 version+IHL byte.
    pub version_ihl: u8,
    /// IPv4 total length.
    pub total_len: u16,
    /// IPv4 flags+fragment-offset field.
    pub frag_field: u16,
    /// IPv4 TTL.
    pub ttl: u8,
    /// IPv4 protocol.
    pub proto: u8,
    /// Source address.
    pub src_ip: u32,
    /// Destination address.
    pub dst_ip: u32,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// TCP flag byte (ignored for non-TCP packets).
    pub tcp_flags: u8,
}

impl RawRx {
    /// A well-formed 64-byte TCP/UDP frame carrying `fields` (empty
    /// TCP flag byte; see [`RawRx::with_tcp_flags`]).
    pub fn well_formed(dir: Direction, fields: FlowFields) -> RawRx {
        let l4 = match fields.proto {
            vig_packet::Proto::Tcp => 20,
            vig_packet::Proto::Udp => 8,
        };
        RawRx {
            dir,
            frame_len: 64,
            ethertype: 0x0800,
            version_ihl: 0x45,
            total_len: 20 + l4,
            frag_field: 0x4000, // DF, not fragmented
            ttl: 64,
            proto: fields.proto.number(),
            src_ip: fields.src_ip.raw(),
            dst_ip: fields.dst_ip.raw(),
            src_port: fields.src_port,
            dst_port: fields.dst_port,
            tcp_flags: 0,
        }
    }

    /// The same frame with a TCP flag byte.
    pub fn with_tcp_flags(self, tcp_flags: u8) -> RawRx {
        RawRx { tcp_flags, ..self }
    }
}

/// What the env observed the NF do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvEvent {
    /// Packet transmitted on `out` with the rewritten tuple.
    Sent {
        /// Egress interface.
        out: Direction,
        /// Rewritten source ip.
        src_ip: u32,
        /// Rewritten source port.
        src_port: u16,
        /// Rewritten destination ip.
        dst_ip: u32,
        /// Rewritten destination port.
        dst_port: u16,
    },
    /// Packet dropped.
    Dropped,
}

/// The vector-backed test environment, generic over the flow-table
/// implementation it drives (unsharded [`FlowManager`] by default,
/// [`ShardedFlowManager`] via [`SimpleEnv::sharded`]). See module docs.
pub struct SimpleEnv<T: FlowTable = FlowManager> {
    cfg: NatConfig,
    fm: T,
    now_ns: u64,
    pending: VecDeque<RawRx>,
    events: Vec<EnvEvent>,
    next_handle: usize,
    in_flight: Vec<usize>,
    expired_total: usize,
    /// Per-packet `FlowId` hash memo (each `FlowId` is hashed once).
    fid_memo: FidMemo,
}

impl<T: FlowTable> crate::domain::Domain for SimpleEnv<T> {
    crate::concrete_domain_items!();
}

impl SimpleEnv {
    /// Fresh env with an empty (unsharded) flow table.
    pub fn new(cfg: NatConfig) -> SimpleEnv {
        SimpleEnv::with_table(FlowManager::new(&cfg), cfg)
    }
}

impl SimpleEnv<ShardedFlowManager> {
    /// Fresh env over an N-shard flow table — the same loop body, the
    /// same decisions vocabulary, RSS-partitioned state underneath.
    pub fn sharded(cfg: NatConfig, shards: usize) -> Self {
        SimpleEnv::with_table(ShardedFlowManager::new(&cfg, shards), cfg)
    }
}

impl<T: FlowTable> SimpleEnv<T> {
    fn with_table(fm: T, cfg: NatConfig) -> SimpleEnv<T> {
        SimpleEnv {
            fm,
            cfg,
            now_ns: 0,
            pending: VecDeque::new(),
            events: Vec::new(),
            next_handle: 0,
            in_flight: Vec::new(),
            expired_total: 0,
            fid_memo: FidMemo::default(),
        }
    }

    /// The flow table (for assertions).
    pub fn flow_manager(&self) -> &T {
        &self.fm
    }

    /// Total flows expired so far.
    pub fn expired_total(&self) -> usize {
        self.expired_total
    }

    /// All recorded events.
    pub fn events(&self) -> &[EnvEvent] {
        &self.events
    }

    /// Set the clock (must be monotone across calls).
    pub fn set_time(&mut self, t: Time) {
        debug_assert!(t.nanos() >= self.now_ns, "SimpleEnv clock must be monotone");
        self.now_ns = t.nanos();
    }

    /// Queue a packet for the next iteration.
    pub fn inject(&mut self, raw: RawRx) {
        self.pending.push_back(raw);
    }

    /// Run one loop iteration of the *real* stateless code against this
    /// env, enforcing the buffer-ownership discipline.
    pub fn run_one(&mut self) -> IterationOutcome {
        let cfg = self.cfg;
        let out = nat_loop_iteration(self, &cfg);
        assert!(
            self.in_flight.is_empty(),
            "buffer leak: handles {:?} neither sent nor dropped",
            self.in_flight
        );
        out
    }

    /// Run one *burst* of the real stateless code
    /// ([`nat_process_batch`]): up to
    /// [`crate::loop_body::MAX_BURST`] pending packets in one call,
    /// with the same buffer-ownership enforcement.
    pub fn run_burst(&mut self) -> Vec<IterationOutcome> {
        let cfg = self.cfg;
        let out = nat_process_batch(self, &cfg);
        assert!(
            self.in_flight.is_empty(),
            "buffer leak: handles {:?} neither sent nor dropped",
            self.in_flight
        );
        out
    }

    /// Convenience for differential testing: inject a well-formed packet
    /// at time `t`, run one iteration, and return the NF's decision in
    /// the spec's vocabulary.
    pub fn step(&mut self, dir: Direction, fields: FlowFields, t: Time) -> vig_spec::Output {
        self.step_flags(dir, fields, 0, t)
    }

    /// [`SimpleEnv::step`] with a TCP flag byte (the connection-tracker
    /// input; ignored on UDP packets).
    pub fn step_flags(
        &mut self,
        dir: Direction,
        fields: FlowFields,
        tcp_flags: u8,
        t: Time,
    ) -> vig_spec::Output {
        self.set_time(t);
        self.inject(RawRx::well_formed(dir, fields).with_tcp_flags(tcp_flags));
        let before = self.events.len();
        let outcome = self.run_one();
        assert_eq!(
            self.events.len(),
            before + 1,
            "exactly one event per packet"
        );
        match (outcome, self.events[before]) {
            (
                IterationOutcome::Forwarded(_),
                EnvEvent::Sent {
                    out,
                    src_ip,
                    src_port,
                    dst_ip,
                    dst_port,
                },
            ) => vig_spec::Output::Forward {
                iface: out,
                fields: FlowFields {
                    src_ip: vig_packet::Ip4(src_ip),
                    dst_ip: vig_packet::Ip4(dst_ip),
                    src_port,
                    dst_port,
                    proto: fields.proto,
                },
            },
            (IterationOutcome::Dropped(_), EnvEvent::Dropped) => vig_spec::Output::Drop,
            (o, e) => panic!("outcome {o:?} inconsistent with event {e:?}"),
        }
    }
}

impl<T: FlowTable> NatEnv for SimpleEnv<T> {
    fn now(&mut self) -> u64 {
        self.now_ns
    }

    fn expire_flows(&mut self, threshold: &u64) {
        self.expired_total += self.fm.expire(Time(*threshold));
    }

    fn receive(&mut self) -> Option<RxPacket<Self>> {
        let raw = self.pending.pop_front()?;
        let handle = PktHandle(self.next_handle);
        self.next_handle += 1;
        self.in_flight.push(handle.0);
        Some(RxPacket {
            handle,
            dir: raw.dir,
            frame_len: raw.frame_len,
            ethertype: raw.ethertype,
            version_ihl: raw.version_ihl,
            total_len: raw.total_len,
            frag_field: raw.frag_field,
            ttl: raw.ttl,
            proto: raw.proto,
            src_ip: raw.src_ip,
            dst_ip: raw.dst_ip,
            src_port: raw.src_port,
            dst_port: raw.dst_port,
            // Zero-filled for non-TCP frames, per the RxPacket contract.
            tcp_flags: if raw.proto == 6 { raw.tcp_flags } else { 0 },
        })
    }

    fn branch(&mut self, cond: bool) -> bool {
        cond
    }

    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>> {
        let key = fid_key(fid);
        // Hash once per packet; a following insert_flow reuses it.
        let hash = self.fid_memo.hash_for_lookup(key);
        let (slot, flow) = self.fm.lookup_internal_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn lookup_internal_batch(
        &mut self,
        fids: &[FidParts<Self>],
        out: &mut Vec<Option<FlowView<Self>>>,
    ) {
        let keys: Vec<FlowId> = fids.iter().map(fid_key).collect();
        let hashes: Vec<u64> = keys.iter().map(MapKey::key_hash).collect();
        let mut found = Vec::with_capacity(keys.len());
        self.fm.probe_internal_batch(&keys, &hashes, &mut found);
        out.extend(
            found
                .into_iter()
                .map(|r| r.map(|(slot, flow)| view(slot, &flow))),
        );
    }

    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>> {
        let key = ext_key(ek);
        let hash = key.key_hash();
        let (slot, flow) = self.fm.lookup_external_hashed(&key, hash)?;
        Some(view(slot, flow))
    }

    fn rejuvenate(&mut self, slot: SlotId, now: &u64, dir: Direction, tcp_flags: &u8) {
        self.fm.rejuvenate(slot.0, Time(*now), dir, *tcp_flags);
    }

    fn allocate_slot(&mut self, now: &u64) -> Option<(SlotId, u16, u32)> {
        // The memoized hash of the just-missed lookup routes the
        // allocation (the shard selector for sharded tables).
        let slot = self
            .fm
            .allocate_slot_routed(self.fid_memo.hash_for_alloc(), Time(*now))?;
        let (ip, port) = self.fm.endpoint_of_slot(slot);
        Some((SlotId(slot), port - self.cfg.start_port, ip.raw()))
    }

    fn insert_flow(
        &mut self,
        slot: SlotId,
        fid: FidParts<Self>,
        ext_ip: u32,
        ext_port: u16,
        _now: &u64,
        tcp_flags: &u8,
    ) {
        let key = fid_key(&fid);
        // Reuse the hash memoized by the lookup miss that precedes
        // every insert on the same packet.
        let hash = self.fid_memo.hash_for_insert(&key);
        self.fm.insert_hashed(
            slot.0,
            key,
            vig_packet::Ip4(ext_ip),
            ext_port,
            hash,
            *tcp_flags,
        );
    }

    fn tx(&mut self, pkt: PktHandle, out: Direction, hdr: TxHdr<Self>) {
        let pos = self
            .in_flight
            .iter()
            .position(|&h| h == pkt.0)
            .expect("tx of a handle not in flight (double send or invented)");
        self.in_flight.swap_remove(pos);
        self.events.push(EnvEvent::Sent {
            out,
            src_ip: hdr.src_ip,
            src_port: hdr.src_port,
            dst_ip: hdr.dst_ip,
            dst_port: hdr.dst_port,
        });
    }

    fn drop_pkt(&mut self, pkt: PktHandle) {
        let pos = self
            .in_flight
            .iter()
            .position(|&h| h == pkt.0)
            .expect("drop of a handle not in flight");
        self.in_flight.swap_remove(pos);
        self.events.push(EnvEvent::Dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_body::DropReason;
    use proptest::prelude::*;
    use vig_packet::{Ip4, Proto};
    use vig_spec::{PacketInput, SpecChecker};

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 4,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn fields(h: u8, sport: u16, proto: Proto) -> FlowFields {
        FlowFields {
            src_ip: Ip4::new(192, 168, 0, h),
            dst_ip: Ip4::new(1, 1, 1, 1),
            src_port: sport,
            dst_port: 80,
            proto,
        }
    }

    #[test]
    fn no_packet_iteration() {
        let mut env = SimpleEnv::new(cfg());
        assert_eq!(env.run_one(), IterationOutcome::NoPacket);
    }

    #[test]
    fn new_flow_is_translated_and_return_traffic_flows_back() {
        let mut env = SimpleEnv::new(cfg());
        let out = env.step(
            Direction::Internal,
            fields(2, 5000, Proto::Tcp),
            Time::from_secs(1),
        );
        let vig_spec::Output::Forward { iface, fields: f } = out else {
            panic!("expected forward")
        };
        assert_eq!(iface, Direction::External);
        assert_eq!(f.src_ip, Ip4::new(10, 1, 0, 1));
        assert_eq!(f.dst_ip, Ip4::new(1, 1, 1, 1));
        let ext_port = f.src_port;
        assert!((1000..1004).contains(&ext_port));

        // return packet
        let back = FlowFields {
            src_ip: Ip4::new(1, 1, 1, 1),
            dst_ip: Ip4::new(10, 1, 0, 1),
            src_port: 80,
            dst_port: ext_port,
            proto: Proto::Tcp,
        };
        let out = env.step(Direction::External, back, Time::from_secs(2));
        let vig_spec::Output::Forward { iface, fields: f } = out else {
            panic!("expected reverse forward")
        };
        assert_eq!(iface, Direction::Internal);
        assert_eq!(f.dst_ip, Ip4::new(192, 168, 0, 2));
        assert_eq!(f.dst_port, 5000);
        assert_eq!(f.src_ip, Ip4::new(1, 1, 1, 1));
    }

    #[test]
    fn malformed_packets_hit_each_drop_path() {
        let wf = RawRx::well_formed(Direction::Internal, fields(2, 5000, Proto::Udp));
        let cases: Vec<(RawRx, DropReason)> = vec![
            (
                RawRx {
                    frame_len: 10,
                    ..wf
                },
                DropReason::ShortL2,
            ),
            (
                RawRx {
                    ethertype: 0x86dd,
                    ..wf
                },
                DropReason::NotIpv4,
            ),
            (
                RawRx {
                    frame_len: 20,
                    ..wf
                },
                DropReason::ShortL3,
            ),
            (
                RawRx {
                    version_ihl: 0x65,
                    ..wf
                },
                DropReason::BadVersion,
            ),
            (
                RawRx {
                    version_ihl: 0x44,
                    ..wf
                },
                DropReason::BadIhl,
            ),
            (
                RawRx {
                    total_len: 64,
                    ..wf
                },
                DropReason::BadTotalLen,
            ),
            (
                RawRx {
                    frag_field: 0x2000,
                    ..wf
                },
                DropReason::Fragment,
            ),
            (
                RawRx {
                    frag_field: 0x0001,
                    ..wf
                },
                DropReason::Fragment,
            ),
            (RawRx { proto: 1, ..wf }, DropReason::BadProto),
            (
                RawRx {
                    total_len: 20 + 7,
                    ..wf
                },
                DropReason::ShortL4,
            ),
            // IHL (24) larger than total_len (20): header overrun
            (
                RawRx {
                    version_ihl: 0x46,
                    total_len: 20,
                    ..wf
                },
                DropReason::HeaderOverrun,
            ),
        ];
        for (raw, want) in cases {
            let mut env = SimpleEnv::new(cfg());
            env.set_time(Time::from_secs(1));
            env.inject(raw);
            assert_eq!(
                env.run_one(),
                IterationOutcome::Dropped(want),
                "case {want:?} mis-dropped for {raw:?}"
            );
        }
    }

    #[test]
    fn table_full_drops_new_flows() {
        let mut env = SimpleEnv::new(cfg());
        for h in 0..4 {
            env.step(
                Direction::Internal,
                fields(h, 100, Proto::Udp),
                Time::from_secs(1),
            );
        }
        env.set_time(Time::from_secs(2));
        env.inject(RawRx::well_formed(
            Direction::Internal,
            fields(9, 100, Proto::Udp),
        ));
        assert_eq!(
            env.run_one(),
            IterationOutcome::Dropped(DropReason::TableFull)
        );
    }

    #[test]
    fn expiry_runs_before_lookup() {
        let mut env = SimpleEnv::new(cfg());
        env.step(
            Direction::Internal,
            fields(1, 100, Proto::Udp),
            Time::from_secs(1),
        );
        assert_eq!(env.flow_manager().len(), 1);
        // At t=11 the flow (stamped 1, Texp=10) is dead; its return
        // packet must be dropped by this very iteration.
        let back = FlowFields {
            src_ip: Ip4::new(1, 1, 1, 1),
            dst_ip: Ip4::new(10, 1, 0, 1),
            src_port: 80,
            dst_port: 1000,
            proto: Proto::Udp,
        };
        let out = env.step(Direction::External, back, Time::from_secs(11));
        assert_eq!(out, vig_spec::Output::Drop);
        assert_eq!(env.flow_manager().len(), 0);
        assert_eq!(env.expired_total(), 1);
    }

    #[test]
    fn burst_matches_sequential_iterations() {
        // Same traffic, same instant: one nat_process_batch call vs N
        // nat_loop_iteration calls must produce identical outcomes,
        // events, and flow-table state. Includes a duplicate flow in
        // the burst (second packet must hit the flow the first one
        // inserted) and junk return traffic.
        let traffic: Vec<(Direction, FlowFields)> = vec![
            (Direction::Internal, fields(1, 100, Proto::Udp)),
            (Direction::Internal, fields(2, 200, Proto::Tcp)),
            (Direction::Internal, fields(1, 100, Proto::Udp)), // repeat
            (
                Direction::External,
                FlowFields {
                    src_ip: Ip4::new(9, 9, 9, 9),
                    dst_ip: Ip4::new(10, 1, 0, 1),
                    src_port: 1,
                    dst_port: 1001,
                    proto: Proto::Udp,
                },
            ),
        ];
        let mut seq = SimpleEnv::new(cfg());
        let mut bat = SimpleEnv::new(cfg());
        let t = Time::from_secs(3);
        seq.set_time(t);
        bat.set_time(t);
        let mut raws: Vec<RawRx> = traffic
            .iter()
            .map(|(dir, f)| RawRx::well_formed(*dir, *f))
            .collect();
        // A malformed frame *between* forwarded ones: its drop event
        // must land at its own sequence point, not be hoisted ahead of
        // earlier packets' tx (the event order below checks this).
        raws.insert(
            1,
            RawRx {
                ethertype: 0x86dd,
                ..RawRx::well_formed(Direction::Internal, fields(9, 900, Proto::Udp))
            },
        );
        for raw in &raws {
            seq.inject(*raw);
            bat.inject(*raw);
        }
        let traffic = raws;
        let seq_out: Vec<_> = traffic.iter().map(|_| seq.run_one()).collect();
        let bat_out = bat.run_burst();
        assert_eq!(seq_out, bat_out);
        assert_eq!(seq.events(), bat.events());
        assert_eq!(seq.flow_manager().len(), bat.flow_manager().len());
        let a: Vec<_> = seq
            .flow_manager()
            .iter_lru()
            .map(|(s, f, t)| (s, *f, t))
            .collect();
        let b: Vec<_> = bat
            .flow_manager()
            .iter_lru()
            .map(|(s, f, t)| (s, *f, t))
            .collect();
        assert_eq!(a, b, "LRU order must match sequential execution");
        bat.flow_manager().check_coherence().unwrap();
    }

    #[test]
    fn empty_burst_is_noop() {
        let mut env = SimpleEnv::new(cfg());
        assert!(env.run_burst().is_empty());
    }

    /// Drive one randomized schedule through the real loop body and the
    /// RFC 3022 spec in lockstep — the shared body of the differential
    /// properties below.
    fn run_differential(
        c: NatConfig,
        steps: Vec<(u8, u8, u16, bool, u8, u64)>,
    ) -> Result<(), TestCaseError> {
        let mut env = SimpleEnv::new(c);
        let mut spec = SpecChecker::new(c);
        let mut now = Time::from_secs(1);
        for (kind, host, ext_port, tcp, raw_flags, dt) in steps {
            now = now.plus(dt * 1_500_000_000);
            let proto = if tcp { Proto::Tcp } else { Proto::Udp };
            // FIN/SYN/RST/ACK bits only; anything else is noise the
            // tracker ignores anyway.
            let tcp_flags = if tcp { raw_flags & 0x17 } else { 0 };
            let (dir, f) = match kind {
                // internal traffic from a small host pool (drives
                // repeats and new flows)
                0 | 1 => (Direction::Internal, fields(host, 100, proto)),
                // return traffic to a port that may or may not be live
                2 => (
                    Direction::External,
                    FlowFields {
                        src_ip: Ip4::new(1, 1, 1, 1),
                        dst_ip: Ip4::new(10, 1, 0, 1),
                        src_port: 80,
                        dst_port: ext_port,
                        proto,
                    },
                ),
                // junk external traffic from a different remote
                _ => (
                    Direction::External,
                    FlowFields {
                        src_ip: Ip4::new(7, 7, 7, 7),
                        dst_ip: Ip4::new(10, 1, 0, 1),
                        src_port: 9999,
                        dst_port: ext_port,
                        proto,
                    },
                ),
            };
            let output = env.step_flags(dir, f, tcp_flags, now);
            let input = PacketInput {
                dir,
                fields: f,
                tcp_flags,
            };
            spec.observe(&input, now, &output).map_err(|v| {
                TestCaseError::fail(format!("spec violation at step {}: {v}", spec.steps()))
            })?;
            prop_assert!(env.flow_manager().check_coherence().is_ok());
        }
        Ok(())
    }

    // The workhorse: the real loop body + real libVig vs. the RFC 3022
    // spec, on randomized workloads mixing new flows, repeats, valid
    // and junk return traffic, TCP flag storms, and time jumps that
    // trigger expiry.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn differential_vs_rfc3022_spec(
            steps in proptest::collection::vec(
                (0u8..4, 0u8..6, 1000u16..1012, any::<bool>(), any::<u8>(), 0u64..8),
                1..300,
            ),
        ) {
            run_differential(cfg(), steps)?;
        }

        /// The same relation on a per-class config: the TCP tracker
        /// picks the lifetime (transitory 3s, established 30s, UDP
        /// 10s), so flag sequences now change *which* packets expire.
        #[test]
        fn differential_vs_spec_with_tcp_lifetimes(
            steps in proptest::collection::vec(
                (0u8..4, 0u8..6, 1000u16..1012, any::<bool>(), any::<u8>(), 0u64..8),
                1..300,
            ),
        ) {
            let c = NatConfig {
                tcp_transitory_ns: Time::from_secs(3).nanos(),
                tcp_established_ns: Time::from_secs(30).nanos(),
                ..cfg()
            };
            run_differential(c, steps)?;
        }

        /// And with EIM + hairpinning on: remote-independent mappings,
        /// pool-addressed internal packets looping back inside.
        #[test]
        fn differential_vs_spec_with_eim_hairpinning(
            steps in proptest::collection::vec(
                (0u8..5, 0u8..6, 1000u16..1012, any::<bool>(), any::<u8>(), 0u64..8),
                1..300,
            ),
        ) {
            let c = NatConfig {
                eim: true,
                hairpinning: true,
                tcp_transitory_ns: Time::from_secs(3).nanos(),
                tcp_established_ns: Time::from_secs(30).nanos(),
                ..cfg()
            };
            let mut env = SimpleEnv::new(c);
            let mut spec = SpecChecker::new(c);
            let mut now = Time::from_secs(1);
            for (kind, host, ext_port, tcp, raw_flags, dt) in steps {
                now = now.plus(dt * 1_500_000_000);
                let proto = if tcp { Proto::Tcp } else { Proto::Udp };
                let tcp_flags = if tcp { raw_flags & 0x17 } else { 0 };
                let (dir, f) = match kind {
                    0 | 1 => (Direction::Internal, fields(host, 100, proto)),
                    // hairpin attempt: an internal host aims at a pool
                    // endpoint (live or dangling)
                    2 => (
                        Direction::Internal,
                        FlowFields {
                            src_ip: Ip4::new(192, 168, 0, host),
                            dst_ip: Ip4::new(10, 1, 0, 1),
                            src_port: 100,
                            dst_port: ext_port,
                            proto,
                        },
                    ),
                    3 => (
                        Direction::External,
                        FlowFields {
                            src_ip: Ip4::new(1, 1, 1, 1),
                            dst_ip: Ip4::new(10, 1, 0, 1),
                            src_port: 80,
                            dst_port: ext_port,
                            proto,
                        },
                    ),
                    _ => (
                        Direction::External,
                        FlowFields {
                            src_ip: Ip4::new(7, 7, 7, 7),
                            dst_ip: Ip4::new(10, 1, 0, 1),
                            src_port: 9999,
                            dst_port: ext_port,
                            proto,
                        },
                    ),
                };
                let output = env.step_flags(dir, f, tcp_flags, now);
                let input = PacketInput { dir, fields: f, tcp_flags };
                spec.observe(&input, now, &output).map_err(|v| {
                    TestCaseError::fail(format!("spec violation at step {}: {v}", spec.steps()))
                })?;
                prop_assert!(env.flow_manager().check_coherence().is_ok());
            }
        }
    }
}
