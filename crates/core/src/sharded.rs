//! The sharded flow table: N independent [`FlowManager`] shards behind
//! one [`FlowTable`] face, partitioned RSS-style by the flow-key hash.
//!
//! ## Partitioning scheme
//!
//! * **Internal traffic** routes by [`libvig::rss::shard_of`] over the
//!   `FlowId` hash — the same 64-bit hash the datapath already memoizes
//!   per packet for the directory probe, so shard selection costs one
//!   multiply-shift and **no extra hash**.
//! * **Pool endpoints are partitioned per shard**: shard `s` owns the
//!   contiguous global-slot range `s·per_shard .. (s+1)·per_shard` and
//!   with it that slice of the endpoint pool (for a single-address
//!   pool: ports `start_port + s·per_shard ..`), so allocation never
//!   crosses shards and endpoint uniqueness still follows from
//!   per-shard slot uniqueness (the dchain contract), exactly as in
//!   the unsharded VigNAT.
//! * **External (return) traffic** routes by that endpoint partition —
//!   a flow's external endpoint *identifies* its shard — never by the
//!   external key's hash, which is independent of the internal one and
//!   would land on the wrong shard for roughly `(N-1)/N` of all flows.
//!
//! ## Global slots: the bijection survives sharding
//!
//! Shard `s`'s local slot `i` is exposed as **global slot**
//! `g = s·per_shard + i`, and each shard maps its slots through the
//! *global* endpoint pool at base offset `s·per_shard`
//! ([`FlowManager::for_shard`]), so every shard's flow carries exactly
//! `endpoint_of(g)` — the unsharded slot⇄endpoint bijection, verbatim.
//! With the paper's single-address pool that reads
//! `ext_port = start_port + g`, so the verified loop body's port
//! arithmetic needs no sharding awareness at all, and the P2 overflow
//! proof carries over unchanged (`offset < ports_per_ip` bounds every
//! slot's port on every shard).
//!
//! ## What sharding preserves, and what it trades
//!
//! Per-shard state is fully disjoint (shards share no structure), so
//! every per-flow invariant — slot⇄port bijection, dmap/dchain
//! coherence, LRU expiry order *within a shard* — holds per shard by
//! the existing contracts, and the N-shard NAT is packet-for-packet
//! equivalent to N independent 1-shard NATs each fed its dispatch
//! subsequence (`tests/shard_equivalence.rs` proves this
//! differentially; with N = 1 the reference is the unsharded NAT and
//! equivalence is byte-for-byte). The one observable trade is
//! fullness: a new flow drops when *its shard* is full, which can
//! happen before the global table fills (hash skew). The edge-case
//! tests pin this behaviour down; `docs/ARCHITECTURE.md` discusses the
//! sizing consequences.

use crate::flow_manager::{ExpiryMode, FlowManager, FlowTable};
use crate::loop_body::IterationOutcome;
use crate::simple_env::{RawRx, SimpleEnv};
use libvig::rss::{shard_of, BatchSplit};
use libvig::time::Time;
use vig_packet::{Direction, ExtKey, Flow, FlowId, Ip4};
use vig_spec::NatConfig;

/// N independent flow-table shards. See module docs.
#[derive(Debug, Clone)]
pub struct ShardedFlowManager {
    shards: Vec<FlowManager>,
    cfg: NatConfig,
    per_shard: usize,
    /// Gather/scatter scratch for the per-shard sub-batch probe split.
    split: BatchSplit<FlowId>,
    /// Per-shard probe result scratch (reused across bursts).
    shard_found: Vec<Vec<Option<(usize, Flow)>>>,
}

impl ShardedFlowManager {
    /// Partition `cfg` into `shards` independent flow managers, in the
    /// default [`ExpiryMode::Wheel`].
    ///
    /// Each shard gets `cfg.capacity / shards` slots (the remainder, if
    /// any, is dropped — the table's effective capacity is
    /// `per_shard · shards`) and the matching contiguous slice of the
    /// endpoint pool. Panics if `cfg` is invalid ([`check_config`]) or
    /// if `shards` is zero or exceeds the capacity.
    ///
    /// [`check_config`]: crate::loop_body::check_config
    pub fn new(cfg: &NatConfig, shards: usize) -> ShardedFlowManager {
        ShardedFlowManager::with_expiry(cfg, shards, ExpiryMode::default())
    }

    /// [`ShardedFlowManager::new`] with an explicit expiry mode for
    /// every shard (the churn-parity suites run `Scan` as the oracle).
    pub fn with_expiry(cfg: &NatConfig, shards: usize, mode: ExpiryMode) -> ShardedFlowManager {
        crate::loop_body::check_config(cfg).expect("invalid NAT configuration");
        assert!(shards > 0, "need at least one shard");
        let per_shard = cfg.capacity / shards;
        assert!(
            per_shard > 0,
            "{} shards over capacity {} leaves empty shards",
            shards,
            cfg.capacity
        );
        ShardedFlowManager {
            shards: (0..shards)
                .map(|s| FlowManager::for_shard(cfg, per_shard, s * per_shard, mode))
                .collect(),
            cfg: *cfg,
            per_shard,
            split: BatchSplit::new(shards),
            shard_found: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// The global pool configuration — what every worker's loop body
    /// runs with (shards return pool-global port offsets, so the loop's
    /// `start_port + offset` arithmetic uses the *global* start port).
    pub fn global_cfg(&self) -> NatConfig {
        self.cfg
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Slots (and ports) per shard.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard
    }

    /// The configuration a **standalone 1-shard NAT** serving shard
    /// `s`'s partition would use: the shard's slice of the capacity and
    /// port range, with expiry and external ip shared. The differential
    /// tests build their per-shard references from it.
    ///
    /// Only expressible while the whole pool lives on one address
    /// (`capacity <= ports_per_ip`, the paper's configuration) — a
    /// shard of a multi-address pool is not a contiguous port range of
    /// any single-address config. Panics otherwise; drive workers with
    /// [`ShardedFlowManager::global_cfg`] instead, which is valid at
    /// every scale.
    pub fn shard_cfg(&self, s: usize) -> NatConfig {
        assert_eq!(
            self.cfg.num_external_ips(),
            1,
            "per-shard standalone configs exist only for single-address pools"
        );
        NatConfig {
            capacity: self.per_shard,
            start_port: self.cfg.start_port + (s * self.per_shard) as u16,
            ..self.cfg
        }
    }

    /// Shard `s`'s flow manager (read-only).
    pub fn shard(&self, s: usize) -> &FlowManager {
        &self.shards[s]
    }

    /// All shards, mutably and disjointly — what a `std::thread` driver
    /// splits across worker threads (each shard is `Send` and shares
    /// nothing with its siblings).
    pub fn shards_mut(&mut self) -> &mut [FlowManager] {
        &mut self.shards
    }

    /// Which shard the internal key with hash `fid_hash` routes to.
    pub fn shard_of_hash(&self, fid_hash: u64) -> usize {
        shard_of(fid_hash, self.shards.len())
    }

    /// Which shard owns the pool endpoint `(ip, port)`, if any shard
    /// does: the endpoint's global slot ([`NatConfig::slot_of_endpoint`])
    /// divided by the per-shard capacity — the shared definition the
    /// NIC classifier and queue-fed driver also use. `ip` must already
    /// be canonicalized the way the loop body's external key is (the
    /// configured address for single-address pools).
    pub fn shard_of_endpoint(&self, ip: Ip4, port: u16) -> Option<usize> {
        let slot = self.cfg.slot_of_endpoint(ip, port)?;
        // Remainder slots (capacity % shards) are dropped from the
        // sharded table; their endpoints belong to no shard.
        (slot < self.per_shard * self.shards.len()).then(|| slot / self.per_shard)
    }

    /// [`ShardedFlowManager::shard_of_endpoint`] for the paper's
    /// single-address pool, where the port alone identifies the shard.
    pub fn shard_of_port(&self, port: u16) -> Option<usize> {
        self.shard_of_endpoint(self.cfg.external_ip, port)
    }

    /// Global slot of shard `s`'s local `slot`.
    fn global(&self, s: usize, slot: usize) -> usize {
        s * self.per_shard + slot
    }

    /// `(shard, local slot)` of a global slot.
    fn local(&self, global: usize) -> (usize, usize) {
        debug_assert!(global < self.per_shard * self.shards.len());
        (global / self.per_shard, global % self.per_shard)
    }

    /// Expire shard `s` only, against its own clock's threshold — the
    /// entry point a per-core driver uses so each shard's expiry clock
    /// advances independently. Returns how many flows were removed.
    pub fn expire_shard(&mut self, s: usize, threshold: Time) -> usize {
        self.shards[s].expire(threshold)
    }

    /// Probe length of an internal-key lookup, measured in the shard
    /// the key routes to (shard routing itself is one multiply-shift
    /// and traverses nothing). Diagnostic twin of
    /// [`FlowManager::internal_probe_len`]; the high-occupancy suite
    /// uses it to confirm per-shard directory pressure matches the
    /// unsharded table's at equal per-shard occupancy.
    pub fn internal_probe_len(&self, fid: &FlowId) -> usize {
        use libvig::map::MapKey;
        let s = self.shard_of_hash(fid.key_hash());
        self.shards[s].internal_probe_len(fid)
    }

    /// Snapshot of every shard's live flows in shard-local LRU order,
    /// with global slot ids — the observable state the differential
    /// tests compare.
    pub fn snapshot(&self) -> Vec<Vec<(usize, Flow, Time)>> {
        (0..self.shards.len())
            .map(|s| {
                self.shards[s]
                    .iter_lru()
                    .map(|(slot, f, t)| (self.global(s, slot), *f, t))
                    .collect()
            })
            .collect()
    }
}

impl FlowTable for ShardedFlowManager {
    fn flow_count(&self) -> usize {
        self.shards.iter().map(FlowManager::len).sum()
    }

    fn table_capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    fn expire(&mut self, threshold: Time) -> usize {
        self.shards.iter_mut().map(|fm| fm.expire(threshold)).sum()
    }

    fn lookup_internal_hashed(&self, fid: &FlowId, hash: u64) -> Option<(usize, &Flow)> {
        let s = self.shard_of_hash(hash);
        let (slot, flow) = self.shards[s].lookup_internal_hashed(fid, hash)?;
        Some((self.global(s, slot), flow))
    }

    fn probe_internal_batch(
        &mut self,
        fids: &[FlowId],
        hashes: &[u64],
        out: &mut Vec<Option<(usize, Flow)>>,
    ) {
        // Gather: split the burst's probe batch into per-shard
        // sub-batches by the memoized hashes (the RSS dispatch step).
        self.split.split(fids, hashes);
        let base = out.len();
        out.resize(base + fids.len(), None);
        // Probe: each shard resolves its sub-batch with its own batched
        // directory probe (`get_batch_with_hash` underneath), giving
        // the same grouped-first-touch locality per shard the unsharded
        // burst path gets globally.
        for (s, (fm, found)) in self
            .shards
            .iter_mut()
            .zip(self.shard_found.iter_mut())
            .enumerate()
        {
            found.clear();
            fm.probe_internal_batch(self.split.keys(s), self.split.hashes(s), found);
            // Scatter: write each sub-batch result back at its query's
            // original position, remapped to global slots.
            for (j, &orig) in self.split.origins(s).iter().enumerate() {
                out[base + orig as usize] =
                    found[j].map(|(slot, flow)| (s * self.per_shard + slot, flow));
            }
        }
    }

    fn lookup_external_hashed(&self, ek: &ExtKey, hash: u64) -> Option<(usize, &Flow)> {
        // Route by the endpoint partition, not the hash (module docs):
        // an out-of-pool endpoint cannot belong to any flow, matching
        // the unsharded table's miss.
        let s = self.shard_of_endpoint(ek.ext_ip, ek.ext_port)?;
        let (slot, flow) = self.shards[s].lookup_external_hashed(ek, hash)?;
        Some((self.global(s, slot), flow))
    }

    fn rejuvenate(&mut self, slot: usize, now: Time, dir: Direction, tcp_flags: u8) {
        let (s, local) = self.local(slot);
        self.shards[s].rejuvenate_with(local, now, dir, tcp_flags);
    }

    fn allocate_slot_routed(&mut self, fid_hash: u64, now: Time) -> Option<usize> {
        let s = self.shard_of_hash(fid_hash);
        let slot = self.shards[s].allocate_slot(now)?;
        Some(self.global(s, slot))
    }

    fn endpoint_of_slot(&self, slot: usize) -> (Ip4, u16) {
        // Shards map their slots through the *global* pool, so this is
        // the global mapping regardless of which shard owns the slot.
        (
            self.cfg.ext_ip_of_slot(slot),
            self.cfg.ext_port_of_slot(slot),
        )
    }

    fn port_offset_of_slot(&self, slot: usize) -> u16 {
        (slot % self.cfg.ports_per_ip()) as u16
    }

    fn insert_hashed(
        &mut self,
        slot: usize,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        fid_hash: u64,
        tcp_flags: u8,
    ) {
        let (s, local) = self.local(slot);
        debug_assert_eq!(
            s,
            self.shard_of_hash(fid_hash),
            "insert into a slot of the wrong shard (allocate/insert hash mismatch)"
        );
        // The shard's own FlowManager asserts its local slot⇄endpoint
        // bijection, which composes to the global one (module docs).
        self.shards[s].insert_hashed(local, fid, ext_ip, ext_port, fid_hash, tcp_flags);
    }

    fn check_coherence(&self) -> Result<(), String> {
        use libvig::map::MapKey;
        for (s, fm) in self.shards.iter().enumerate() {
            fm.check_coherence()
                .map_err(|e| format!("shard {s}: {e}"))?;
            // Routing invariant: every resident flow's internal key
            // hashes to the shard it lives in (otherwise lookups would
            // silently miss it forever).
            for (slot, flow, _) in fm.iter_lru() {
                let want = self.shard_of_hash(flow.int_key.key_hash());
                if want != s {
                    return Err(format!(
                        "flow in shard {s} slot {slot} routes to shard {want}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A queue-fed driver over the sharded table: the third way packets
/// reach the verified loop body, next to per-packet [`SimpleEnv`]
/// stepping and run-to-completion burst draining.
///
/// [`crate::nat_loop_iteration`] never sees a device — it sees
/// [`crate::NatEnv`]. `QueueFed` models what an event-driven driver
/// (netsim's `eventloop` over its multi-queue NIC model) delivers to
/// that interface: **queue events**, each carrying one queue's burst at
/// one arrival instant, with FIFO order guaranteed per queue and
/// nothing guaranteed across queues. Every event becomes one (or more)
/// [`crate::nat_process_batch`] drains of the very same loop body —
/// the code path is identical whether packets arrive one at a time,
/// as a staged burst, or as a queue event; only the feeding discipline
/// differs. That is the invariant Panda et al.'s isolation argument
/// needs: the per-flow state machine cannot tell which queue delivered
/// the packet.
///
/// The driver-level obligations live here so every concrete event loop
/// inherits them:
///
/// * **per-queue monotone clocks** — an event's `now` must not move
///   backwards on its own queue (asserted), while sibling queues may
///   run ahead or behind;
/// * **one global NAT clock** — the loop body's `now` is the maximum
///   arrival instant seen so far (a NAT has one clock; expiry is a
///   function of time, not of queue interleaving);
/// * **polling semantics** — an empty event still runs one (empty)
///   burst, so expiry advances on idle queues exactly as a polling
///   core's loop does.
///
/// Like the envs and `netsim`'s backend seam, the driver is generic
/// over the [`FlowTable`] behind it — the sharded table by default,
/// the unsharded [`FlowManager`] via [`QueueFed::unsharded`] (queue
/// dispatch is a pure function of the packet and the queue count; the
/// table's own layout never sees it).
pub struct QueueFed<T: FlowTable = ShardedFlowManager> {
    env: SimpleEnv<T>,
    queue_clocks: Vec<Time>,
    clock: Time,
    cfg: NatConfig,
    slots_per_queue: usize,
    events: u64,
}

impl QueueFed {
    /// A queue-fed NAT: `shards` table shards behind `queues` RX
    /// queues. `queues == shards` makes queue dispatch and table
    /// dispatch the same function (each queue carries exactly one
    /// shard's subsequence); `queues > shards` nests queue groups
    /// inside shards (the multiply-shift reduction is hierarchical).
    pub fn new(cfg: &NatConfig, shards: usize, queues: usize) -> QueueFed {
        QueueFed::over(SimpleEnv::sharded(*cfg, shards), cfg, queues)
    }
}

impl QueueFed<FlowManager> {
    /// A queue-fed NAT over the *unsharded* table: `queues` RX queues
    /// all landing their events on one [`FlowManager`] — what a
    /// multi-queue NIC in front of a single-table NF looks like.
    /// Byte-for-byte equivalent to [`QueueFed::new`] with one shard
    /// (proven in this module's tests, on top of the 1-shard ≡
    /// unsharded equivalence of `tests/shard_equivalence.rs`).
    pub fn unsharded(cfg: &NatConfig, queues: usize) -> QueueFed<FlowManager> {
        QueueFed::over(SimpleEnv::new(*cfg), cfg, queues)
    }
}

impl<T: FlowTable> QueueFed<T> {
    /// Shared constructor: wrap an env with the queue-dispatch state.
    fn over(env: SimpleEnv<T>, cfg: &NatConfig, queues: usize) -> QueueFed<T> {
        assert!(queues > 0, "need at least one queue");
        let slots_per_queue = cfg.capacity / queues;
        assert!(slots_per_queue > 0, "more queues than slots");
        QueueFed {
            env,
            queue_clocks: vec![Time::ZERO; queues],
            clock: Time::ZERO,
            cfg: *cfg,
            slots_per_queue,
            events: 0,
        }
    }

    /// Number of RX queues feeding this NAT.
    pub fn queue_count(&self) -> usize {
        self.queue_clocks.len()
    }

    /// Queue events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The underlying env (state assertions, recorded events).
    pub fn env(&self) -> &SimpleEnv<T> {
        &self.env
    }

    /// The queue a packet's RSS classification steers it to — the
    /// field-level twin of netsim's frame-level classifier: internal
    /// traffic by [`shard_of`] over the flow-key hash, return traffic
    /// by the endpoint partition (destination ip canonicalized exactly
    /// as the loop body's external key: single-address pools route by
    /// port alone), unroutable packets to queue 0 (they drop
    /// identically everywhere).
    pub fn queue_of(&self, raw: &RawRx) -> usize {
        use libvig::map::MapKey;
        match raw.dir {
            Direction::Internal => match vig_packet::Proto::from_number(raw.proto) {
                Some(proto) => {
                    let fid = FlowId {
                        src_ip: vig_packet::Ip4(raw.src_ip),
                        src_port: raw.src_port,
                        dst_ip: vig_packet::Ip4(raw.dst_ip),
                        dst_port: raw.dst_port,
                        proto,
                    };
                    shard_of(fid.key_hash(), self.queue_count())
                }
                None => 0,
            },
            Direction::External => {
                let ip = if self.cfg.num_external_ips() == 1 {
                    self.cfg.external_ip
                } else {
                    vig_packet::Ip4(raw.dst_ip)
                };
                self.cfg
                    .slot_of_endpoint(ip, raw.dst_port)
                    .filter(|&slot| slot < self.slots_per_queue * self.queue_count())
                    .map(|slot| slot / self.slots_per_queue)
                    .unwrap_or(0)
            }
        }
    }

    /// Deliver one queue event: `packets` arrived on `queue` at instant
    /// `now` (every packet must classify to that queue — asserted, like
    /// the parallel driver's dispatch check). Runs the verified batch
    /// loop until the burst drains, plus one empty burst for the expiry
    /// tick, and returns one outcome per packet in queue order.
    pub fn on_event(
        &mut self,
        queue: usize,
        now: Time,
        packets: &[RawRx],
    ) -> Vec<IterationOutcome> {
        assert!(
            self.queue_clocks[queue] <= now,
            "queue {queue} clock must be monotone"
        );
        self.queue_clocks[queue] = now;
        if now > self.clock {
            self.clock = now;
        }
        self.env.set_time(self.clock);
        for p in packets {
            assert_eq!(self.queue_of(p), queue, "packet delivered on wrong queue");
            self.env.inject(*p);
        }
        self.events += 1;
        let mut out = Vec::with_capacity(packets.len());
        loop {
            let burst = self.env.run_burst();
            let drained = burst.is_empty();
            out.extend(burst);
            if drained {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libvig::map::MapKey;
    use vig_packet::{Ip4, Proto};

    fn cfg(capacity: usize) -> NatConfig {
        NatConfig {
            capacity,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn fid(host: u8, port: u16) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, host),
            src_port: port,
            dst_ip: Ip4::new(8, 8, 8, 8),
            dst_port: 53,
            proto: Proto::Udp,
        }
    }

    /// Drive the allocate→insert pair the way the loop body does.
    fn add_flow(t: &mut ShardedFlowManager, f: FlowId, now: Time) -> Option<(usize, u16)> {
        let hash = f.key_hash();
        assert!(t.lookup_internal_hashed(&f, hash).is_none());
        let slot = t.allocate_slot_routed(hash, now)?;
        let (ip, port) = t.endpoint_of_slot(slot);
        t.insert_hashed(slot, f, ip, port, hash, 0);
        Some((slot, port))
    }

    #[test]
    fn port_ranges_partition_cleanly() {
        let t = ShardedFlowManager::new(&cfg(8), 4);
        assert_eq!(t.per_shard_capacity(), 2);
        for s in 0..4 {
            let c = t.shard_cfg(s);
            assert_eq!(c.capacity, 2);
            assert_eq!(c.start_port, 1000 + 2 * s as u16);
        }
        assert_eq!(t.shard_of_port(999), None);
        assert_eq!(t.shard_of_port(1000), Some(0));
        assert_eq!(t.shard_of_port(1003), Some(1));
        assert_eq!(t.shard_of_port(1007), Some(3));
        assert_eq!(t.shard_of_port(1008), None);
    }

    #[test]
    fn global_slot_port_bijection_holds() {
        let mut t = ShardedFlowManager::new(&cfg(64), 4);
        for h in 0..40u8 {
            if let Some((slot, port)) = add_flow(&mut t, fid(h, 100), Time::from_secs(1)) {
                assert_eq!(port, 1000 + slot as u16, "global bijection");
                let s = slot / t.per_shard_capacity();
                assert_eq!(t.shard_of_port(port), Some(s), "port identifies the shard");
            }
        }
        t.check_coherence().unwrap();
    }

    #[test]
    fn both_directions_find_the_flow() {
        let mut t = ShardedFlowManager::new(&cfg(64), 4);
        let f = fid(7, 777);
        let (slot, port) = add_flow(&mut t, f, Time::from_secs(1)).unwrap();
        let h = f.key_hash();
        let (s2, flow) = t.lookup_internal_hashed(&f, h).unwrap();
        assert_eq!(s2, slot);
        let ek = flow.ext_key();
        assert_eq!(ek.ext_port, port);
        let ekh = ek.key_hash();
        let (s3, _) = t.lookup_external_hashed(&ek, ekh).unwrap();
        assert_eq!(s3, slot);
    }

    #[test]
    fn batch_probe_equals_sequential_lookups() {
        let mut t = ShardedFlowManager::new(&cfg(64), 3);
        for h in 0..30u8 {
            add_flow(&mut t, fid(h, 100), Time::from_secs(1));
        }
        // Hits, misses, and duplicates, in interleaved shard order.
        let queries: Vec<FlowId> = (0..40u8).map(|h| fid(h % 35, 100)).collect();
        let hashes: Vec<u64> = queries.iter().map(MapKey::key_hash).collect();
        let mut batch = Vec::new();
        t.probe_internal_batch(&queries, &hashes, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let seq = t.lookup_internal_hashed(q, hashes[i]).map(|(s, f)| (s, *f));
            assert_eq!(batch[i], seq, "query {i} diverged");
        }
    }

    #[test]
    fn one_shard_is_the_unsharded_table() {
        use crate::flow_manager::FlowManager;
        let c = cfg(16);
        let mut sharded = ShardedFlowManager::new(&c, 1);
        let mut plain = FlowManager::new(&c);
        for h in 0..20u8 {
            let f = fid(h, 100);
            let hash = f.key_hash();
            let a = add_flow(&mut sharded, f, Time::from_secs(1));
            let b = plain.allocate(f, Time::from_secs(1));
            assert_eq!(a, b, "identical slots and ports with one shard");
            assert_eq!(
                sharded
                    .lookup_internal_hashed(&f, hash)
                    .map(|(s, fl)| (s, *fl)),
                plain
                    .lookup_internal_hashed(&f, hash)
                    .map(|(s, fl)| (s, *fl)),
            );
        }
        sharded.check_coherence().unwrap();
    }

    #[test]
    fn per_shard_expiry_is_independent() {
        let mut t = ShardedFlowManager::new(&cfg(64), 2);
        // Place one flow in each shard (search the host space).
        let mut in_shard: [Option<FlowId>; 2] = [None, None];
        for h in 0..64u8 {
            let f = fid(h, 100);
            let s = t.shard_of_hash(f.key_hash());
            if in_shard[s].is_none() {
                in_shard[s] = Some(f);
                add_flow(&mut t, f, Time::from_secs(1));
            }
        }
        let [a, b] = in_shard.map(|f| f.expect("both shards populated"));
        // Only shard 0's clock passes the threshold.
        assert_eq!(t.expire_shard(0, Time::from_secs(5)), 1);
        assert!(t.lookup_internal_hashed(&a, a.key_hash()).is_none());
        assert!(t.lookup_internal_hashed(&b, b.key_hash()).is_some());
        t.check_coherence().unwrap();
    }

    #[test]
    fn shard_full_drops_even_when_siblings_are_empty() {
        let mut t = ShardedFlowManager::new(&cfg(8), 2); // 4 slots each
        let mut filled = 0;
        let mut rejected_in_full_shard = false;
        for h in 0..=255u8 {
            for p in [100u16, 200, 300] {
                let f = fid(h, p);
                let hash = f.key_hash();
                if t.shard_of_hash(hash) != 0 || t.lookup_internal_hashed(&f, hash).is_some() {
                    continue;
                }
                match t.allocate_slot_routed(hash, Time::from_secs(1)) {
                    Some(slot) => {
                        let (ip, port) = t.endpoint_of_slot(slot);
                        t.insert_hashed(slot, f, ip, port, hash, 0);
                        filled += 1;
                    }
                    None => {
                        rejected_in_full_shard = true;
                    }
                }
            }
        }
        assert_eq!(filled, 4, "shard 0 fills to its own capacity");
        assert!(rejected_in_full_shard, "then rejects, siblings empty");
        assert_eq!(t.shard(1).len(), 0);
        assert_eq!(t.flow_count(), 4);
    }

    #[test]
    #[should_panic(expected = "empty shards")]
    fn more_shards_than_capacity_is_rejected() {
        let _ = ShardedFlowManager::new(&cfg(4), 8);
    }

    fn raw(h: u8, port: u16) -> RawRx {
        RawRx::well_formed(
            Direction::Internal,
            vig_packet::FlowFields {
                src_ip: Ip4::new(192, 168, 0, h),
                dst_ip: Ip4::new(8, 8, 8, 8),
                src_port: port,
                dst_port: 53,
                proto: Proto::Udp,
            },
        )
    }

    #[test]
    fn queue_fed_equals_sequential_per_flow() {
        // queues == shards: a queue event per queue, interleaved in an
        // order that differs from arrival order, must leave the same
        // per-flow state and produce the same per-flow outcomes as the
        // sequential env fed the packets in arrival order.
        let c = cfg(64);
        let mut qf = QueueFed::new(&c, 2, 2);
        let mut seq = SimpleEnv::sharded(c, 2);
        let packets: Vec<RawRx> = (0..24u8).map(|h| raw(h, 100 + u16::from(h % 3))).collect();
        // Split by queue, preserving arrival order within each.
        let mut by_queue: Vec<Vec<RawRx>> = vec![Vec::new(); 2];
        for p in &packets {
            by_queue[qf.queue_of(p)].push(*p);
        }
        let t = Time::from_secs(1);
        // Deliver queue 1 first — the opposite of ascending order.
        let out1 = qf.on_event(1, t, &by_queue[1]);
        let out0 = qf.on_event(0, t, &by_queue[0]);
        assert_eq!(out0.len() + out1.len(), packets.len());
        // Sequential reference in arrival order.
        seq.set_time(t);
        for p in &packets {
            seq.inject(*p);
        }
        let mut seq_out = Vec::new();
        while seq_out.len() < packets.len() {
            seq_out.extend(seq.run_burst());
        }
        // Outcome multisets per queue subsequence match the sequential
        // outcomes of the same subsequence positions.
        let mut i0 = 0;
        let mut i1 = 0;
        for (p, o) in packets.iter().zip(&seq_out) {
            let got = if qf.queue_of(p) == 0 {
                i0 += 1;
                out0[i0 - 1]
            } else {
                i1 += 1;
                out1[i1 - 1]
            };
            assert_eq!(got, *o, "outcome diverged for {p:?}");
        }
        // Per-flow state: every shard holds the same flows with the
        // same slots/ports under both drivers (LRU order may differ
        // across queues, never within a shard).
        let a = qf.env().flow_manager().snapshot();
        let b = seq.flow_manager().snapshot();
        assert_eq!(a, b, "sharded state diverged");
        qf.env().flow_manager().check_coherence().unwrap();
    }

    #[test]
    fn queue_fed_unsharded_equals_one_shard_byte_for_byte() {
        // The generic driver over the plain FlowManager is the same
        // NAT as over a 1-shard table: identical outcomes, identical
        // slots/ports/stamps, under an out-of-order event schedule.
        let c = cfg(64);
        let mut plain = QueueFed::unsharded(&c, 2);
        let mut sharded = QueueFed::new(&c, 1, 2);
        let packets: Vec<RawRx> = (0..24u8).map(|h| raw(h, 300 + u16::from(h % 5))).collect();
        let mut by_queue: Vec<Vec<RawRx>> = vec![Vec::new(); 2];
        for p in &packets {
            assert_eq!(plain.queue_of(p), sharded.queue_of(p), "dispatch differs");
            by_queue[plain.queue_of(p)].push(*p);
        }
        for (q, t) in [(1, 1u64), (0, 1), (1, 3), (0, 5)] {
            let evs: &[RawRx] = if t == 1 { &by_queue[q] } else { &[] };
            let a = plain.on_event(q, Time::from_secs(t), evs);
            let b = sharded.on_event(q, Time::from_secs(t), evs);
            assert_eq!(a, b, "outcomes diverged at queue {q} t {t}");
        }
        let a: Vec<_> = plain.env().flow_manager().iter_lru().collect();
        let b: Vec<_> = sharded.env().flow_manager().shard(0).iter_lru().collect();
        assert_eq!(a, b, "table state diverged");
        plain.env().flow_manager().check_coherence().unwrap();
    }

    #[test]
    fn queue_fed_clocks_are_per_queue_monotone_and_global_max() {
        let c = cfg(64);
        let mut qf = QueueFed::new(&c, 2, 2);
        // Find one flow per queue.
        let mut per_queue: [Option<RawRx>; 2] = [None, None];
        for h in 0..64u8 {
            let p = raw(h, 100);
            per_queue[qf.queue_of(&p)].get_or_insert(p);
        }
        let [p0, p1] = per_queue.map(|p| p.expect("both queues reachable"));
        // Queue 1 runs ahead; queue 0 may still deliver at an older
        // instant — but the NAT clock (and expiry) follows the max.
        qf.on_event(1, Time::from_secs(20), &[p1]);
        let out = qf.on_event(0, Time::from_secs(5), &[p0]);
        // p1's flow was stamped at t=20; the global clock is already 20
        // when p0 arrives, so with Texp=10 nothing has expired and both
        // flows coexist.
        assert_eq!(out.len(), 1);
        assert_eq!(qf.env().flow_manager().flow_count(), 2);
        assert_eq!(qf.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "clock must be monotone")]
    fn queue_fed_rejects_backwards_queue_clock() {
        let mut qf = QueueFed::new(&cfg(64), 2, 2);
        qf.on_event(0, Time::from_secs(5), &[]);
        qf.on_event(0, Time::from_secs(4), &[]);
    }

    #[test]
    fn queue_fed_empty_event_still_expires() {
        let c = cfg(64);
        let mut qf = QueueFed::new(&c, 2, 2);
        let p = raw(1, 100);
        let q = qf.queue_of(&p);
        qf.on_event(q, Time::from_secs(1), &[p]);
        assert_eq!(qf.env().flow_manager().flow_count(), 1);
        // An empty poll on the *other* queue at t=20 (Texp=10) must
        // still tick expiry — polling cores expire every iteration.
        qf.on_event(1 - q, Time::from_secs(20), &[]);
        assert_eq!(qf.env().flow_manager().flow_count(), 0);
        assert_eq!(qf.env().expired_total(), 1);
    }

    #[test]
    fn queue_fed_refines_shards_when_queues_exceed_them() {
        // queues = 2 * shards: the multiply-shift reduction nests queue
        // groups inside shards — every packet's queue maps into its
        // table shard by floor(queue * shards / queues).
        let c = cfg(64);
        let qf = QueueFed::new(&c, 2, 4);
        let table = ShardedFlowManager::new(&c, 2);
        for h in 0..=255u8 {
            for port in [100u16, 2000, 40000] {
                let p = raw(h, port);
                let q = qf.queue_of(&p);
                let f = FlowId {
                    src_ip: Ip4::new(192, 168, 0, h),
                    src_port: port,
                    dst_ip: Ip4::new(8, 8, 8, 8),
                    dst_port: 53,
                    proto: Proto::Udp,
                };
                assert_eq!(
                    q * 2 / 4,
                    table.shard_of_hash(f.key_hash()),
                    "queue group must nest inside the shard"
                );
            }
        }
    }
}
