//! The flow manager: VigNAT's stateful half, entirely in libVig
//! structures.
//!
//! State layout (identical to the C VigNAT):
//!
//! * a [`DoubleMap`] keyed by internal 5-tuple and external key, holding
//!   [`Flow`] records in slots `0..capacity`;
//! * a [`DoubleChain`] allocating those same slot indices and keeping
//!   their last-activity order for expiry;
//! * in the default [`ExpiryMode::Wheel`], a [`TimerWheel`] shadowing
//!   the chain's deadlines so expiry drains due buckets instead of
//!   walking the LRU list;
//! * the invariant tying them: slot `i` is chain-allocated **iff** slot
//!   `i` is dmap-occupied (**iff** wheel-armed, in wheel mode), and the
//!   flow in slot `i` owns the pool endpoint
//!   `(ext_ip, ext_port) = cfg.endpoint_of(slot_base + i)`.
//!
//! That last equality is the trick that removes the need for a separate
//! endpoint allocator: endpoint uniqueness *is* slot uniqueness, which
//! the dchain contract guarantees. With the paper's single-address pool
//! it reads `ext_port == start_port + i`, VigNAT's literal invariant.
//! [`FlowManager::check_coherence`] asserts the full invariant; the
//! differential and property tests call it liberally.
//!
//! ## Wheel ≡ scan
//!
//! The wheel pops indices in exactly the order the LRU scan frees them
//! — ascending `(timestamp, insertion order)` — and frees them through
//! the same [`DoubleChain::free_index`] push the scan's `expire_one`
//! performs, so the two modes leave **byte-identical** chain state
//! (including free-list order, hence future slot and port assignment).
//! `libvig::expirator`'s `wheel_drain_equals_scan_drain` property and
//! `tests/wheel_equivalence.rs` prove this differentially; the only
//! precondition is the monotone clock every driver already guarantees
//! (asserted here in debug builds).
//!
//! ## Per-class lifetimes (TCP-aware expiry)
//!
//! With per-class TCP lifetimes configured (`!cfg.is_homogeneous()`)
//! each slot additionally carries its tracker state
//! ([`vig_spec::TcpState`], `None` for UDP) and its current
//! [`vig_spec::TimeoutClass`]; rejuvenation steps the tracker
//! ([`vig_spec::tcp::transition`]) and may *migrate* the slot between
//! classes. Expiry then runs **one engine per class**:
//!
//! * scan mode walks the whole LRU list applying each slot's own
//!   class lifetime (`expirator::expire_items_classed`);
//! * wheel mode keeps one [`TimerWheel`] *per class* — each wheel only
//!   ever sees monotone stamps, preserving its insert contract — and
//!   drains each against its own class threshold
//!   (`expirator::expire_items_wheels`).
//!
//! Both free due slots in the canonical ascending
//! `(deadline, class, within-class LRU)` order, so scan and wheels stay
//! byte-identical (free-list order included) and the scan remains the
//! wheel's differential oracle for every class mix.
//!
//! Homogeneous configurations (the paper's, and every config where the
//! TCP lifetimes inherit `expiry_ns`) keep the **literal legacy
//! single-wheel/scan path**: the classed engines break equal-deadline
//! ties by class rank rather than global LRU order, so they are *not*
//! a drop-in for the legacy order even when all lifetimes coincide.

use libvig::dchain::DoubleChain;
use libvig::dmap::DoubleMap;
use libvig::expirator;
use libvig::map::MapKey;
use libvig::time::Time;
use libvig::wheel::TimerWheel;
use vig_packet::{Direction, ExtKey, Flow, FlowId, Ip4, Proto};
use vig_spec::tcp::{class_of, initial_state, transition};
use vig_spec::{NatConfig, TcpState, TimeoutClass};

/// How a flow table finds its expired flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpiryMode {
    /// Walk the dchain's LRU list from its head (the paper's
    /// `expire_items` loop). O(expired + 1) per call but O(n) worst
    /// case per *tick* when a burst of deadlines lands together; kept
    /// as the differential oracle for the wheel.
    Scan,
    /// Drain due buckets of a hierarchical [`TimerWheel`]. Same
    /// expired sets, same order, same resulting state as [`Scan`]
    /// (module docs) with O(1) amortized arm/refresh/pop — the mode
    /// million-flow tables run.
    ///
    /// [`Scan`]: ExpiryMode::Scan
    #[default]
    Wheel,
}

/// The flow-table interface the concrete environments drive.
///
/// This is the seam at which the unsharded [`FlowManager`] and the
/// sharded [`crate::sharded::ShardedFlowManager`] are interchangeable:
/// the envs (`SimpleEnv`, netsim's `FrameEnv`/`BurstEnv`) are generic
/// over a `FlowTable`, and the verified loop body above them is
/// oblivious — it sees only [`crate::env::NatEnv`]. Every operation
/// takes the caller's memoized key hash, both to skip rehashing (the
/// PR 1 fast path) and because **the hash doubles as the shard
/// selector** for sharded implementations — which is why
/// [`FlowTable::allocate_slot_routed`] carries the flow hash: the shard
/// a fresh flow's slot (and therefore its external port) comes from is
/// a function of that hash, so allocation never crosses shards.
///
/// Slot indices returned by lookups and allocation are *global*: a
/// sharded table exposes `shard * per_shard_capacity + local_slot`, so
/// the VigNAT invariant `ext_port == start_port + slot` holds verbatim
/// for every implementation and the loop body's port arithmetic needs
/// no sharding awareness.
pub trait FlowTable {
    /// Flows currently tracked.
    fn flow_count(&self) -> usize;

    /// Total slot capacity.
    fn table_capacity(&self) -> usize;

    /// Expire every flow with `last_active <= threshold`; returns how
    /// many were removed. Sharded implementations expire all shards
    /// (each shard also exposes an independent per-shard entry point
    /// for per-core expiry clocks).
    fn expire(&mut self, threshold: Time) -> usize;

    /// Find a flow by internal 5-tuple; `hash == fid.key_hash()`.
    fn lookup_internal_hashed(&self, fid: &FlowId, hash: u64) -> Option<(usize, &Flow)>;

    /// Resolve a burst of internal-key lookups, appending one result
    /// per query to `out` in query order; `hashes[i] ==
    /// fids[i].key_hash()`. Results must equal element-wise
    /// [`FlowTable::lookup_internal_hashed`] — batching (and, for
    /// sharded tables, the per-shard sub-batch split) is a pure
    /// optimization. Takes `&mut self` only for internal scratch; the
    /// table state is not modified.
    fn probe_internal_batch(
        &mut self,
        fids: &[FlowId],
        hashes: &[u64],
        out: &mut Vec<Option<(usize, Flow)>>,
    );

    /// Find a flow by external key; `hash == ek.key_hash()`. Sharded
    /// tables route by the port partition, **not** by this hash — a
    /// flow's external port identifies its shard exactly, whereas the
    /// external key hashes independently of the internal one.
    fn lookup_external_hashed(&self, ek: &ExtKey, hash: u64) -> Option<(usize, &Flow)>;

    /// Refresh the activity timestamp of an allocated (global) slot.
    /// `dir`/`tcp_flags` step the slot's TCP tracker (when it has one),
    /// which may migrate the flow between timeout classes; UDP slots
    /// ignore them (pass `tcp_flags == 0`).
    fn rejuvenate(&mut self, slot: usize, now: Time, dir: Direction, tcp_flags: u8);

    /// Reserve a slot for a new flow whose internal key hashes to
    /// `fid_hash`, stamped `now`. Returns the *global* slot, or `None`
    /// when the routed shard is full (for the unsharded table: when the
    /// table is full — the hash is ignored).
    ///
    /// Contract (P4, as for [`crate::env::NatEnv::allocate_slot`]): the
    /// caller must follow up with [`FlowTable::insert_hashed`] for the
    /// same slot with a flow id hashing to `fid_hash`, on the same
    /// iteration.
    fn allocate_slot_routed(&mut self, fid_hash: u64, now: Time) -> Option<usize>;

    /// The pool endpoint owned by (global) slot `slot` — the
    /// `(ext_ip, ext_port)` a flow inserted there must carry. With a
    /// single-address pool this is `(external_ip, start_port + slot)`.
    fn endpoint_of_slot(&self, slot: usize) -> (Ip4, u16);

    /// (Global) slot `slot`'s port offset within its pool address — the
    /// `offset` the loop body feeds into `ext_port = start_port +
    /// offset` ([`crate::env::NatEnv::allocate_slot`]). Equals the slot
    /// index itself with a single-address pool.
    fn port_offset_of_slot(&self, slot: usize) -> u16;

    /// Populate a reserved slot; `fid_hash == fid.key_hash()`, and
    /// `(ext_ip, ext_port) == endpoint_of_slot(slot)` (globally).
    /// `tcp_flags` seeds the TCP tracker for TCP flows
    /// ([`vig_spec::tcp::initial_state`]); ignored for UDP.
    fn insert_hashed(
        &mut self,
        slot: usize,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        fid_hash: u64,
        tcp_flags: u8,
    );

    /// Assert the table's cross-structure coherence invariant
    /// (test/diagnostic use; O(capacity)).
    fn check_coherence(&self) -> Result<(), String>;
}

/// The NAT's flow table + expiry machinery. See module docs.
#[derive(Debug, Clone)]
pub struct FlowManager {
    table: DoubleMap<Flow>,
    chain: DoubleChain,
    /// Deadline index for [`ExpiryMode::Wheel`] on a *homogeneous*
    /// config; `None` in scan mode and on per-class configs.
    wheel: Option<TimerWheel>,
    /// One wheel per [`TimeoutClass`] for [`ExpiryMode::Wheel`] on a
    /// *heterogeneous* config (module docs); empty otherwise. Indexed
    /// by `TimeoutClass::index()`.
    class_wheels: Vec<TimerWheel>,
    /// Per-slot TCP tracker state; `None` for UDP flows (and for free
    /// slots — stale values are overwritten on insert, never read).
    tcp_state: Vec<Option<TcpState>>,
    /// Per-slot timeout class (`TimeoutClass::index()` of the flow).
    /// Only consulted by the heterogeneous expiry engines.
    class: Vec<u8>,
    /// The *global* pool configuration the endpoint mapping runs on.
    cfg: NatConfig,
    /// This table's first global slot (0 standalone; `s * per_shard`
    /// for shard `s` of a sharded table).
    slot_base: usize,
    capacity: usize,
    /// High-water mark of the clock values seen, for the wheel-mode
    /// monotonicity precondition (debug-asserted).
    #[cfg(debug_assertions)]
    clock_high: Time,
    /// Reusable slot buffer for [`FlowTable::probe_internal_batch`].
    probe_slots: Vec<Option<usize>>,
}

impl FlowManager {
    /// Preallocate for `cfg.capacity` flows with the default
    /// [`ExpiryMode::Wheel`]. Panics if the configuration violates
    /// [`crate::loop_body::check_config`] — a start-up error, never a
    /// datapath one.
    pub fn new(cfg: &NatConfig) -> FlowManager {
        FlowManager::with_expiry(cfg, ExpiryMode::default())
    }

    /// [`FlowManager::new`] with an explicit expiry mode —
    /// [`ExpiryMode::Scan`] is the differential oracle the equivalence
    /// suites run the wheel against.
    pub fn with_expiry(cfg: &NatConfig, mode: ExpiryMode) -> FlowManager {
        FlowManager::for_shard(cfg, cfg.capacity, 0, mode)
    }

    /// A flow manager owning the `capacity` global slots starting at
    /// `slot_base` of `cfg`'s pool — the shard constructor
    /// ([`crate::sharded::ShardedFlowManager`] builds one per shard;
    /// standalone tables use `slot_base == 0` and the full capacity).
    pub fn for_shard(
        cfg: &NatConfig,
        capacity: usize,
        slot_base: usize,
        mode: ExpiryMode,
    ) -> FlowManager {
        crate::loop_body::check_config(cfg).expect("invalid NAT configuration");
        assert!(
            slot_base + capacity <= cfg.capacity,
            "shard slots {slot_base}..{} exceed pool capacity {}",
            slot_base + capacity,
            cfg.capacity
        );
        FlowManager {
            table: DoubleMap::new(capacity),
            chain: DoubleChain::new(capacity),
            wheel: match mode {
                ExpiryMode::Scan => None,
                ExpiryMode::Wheel if cfg.is_homogeneous() => Some(TimerWheel::new(capacity)),
                ExpiryMode::Wheel => None, // per-class wheels below
            },
            class_wheels: if mode == ExpiryMode::Wheel && !cfg.is_homogeneous() {
                TimeoutClass::ALL
                    .iter()
                    .map(|_| TimerWheel::new(capacity))
                    .collect()
            } else {
                Vec::new()
            },
            tcp_state: vec![None; capacity],
            class: vec![0; capacity],
            cfg: *cfg,
            slot_base,
            capacity,
            #[cfg(debug_assertions)]
            clock_high: Time::ZERO,
            probe_slots: Vec::new(),
        }
    }

    /// The expiry mode this table runs.
    pub fn expiry_mode(&self) -> ExpiryMode {
        if self.wheel.is_some() || !self.class_wheels.is_empty() {
            ExpiryMode::Wheel
        } else {
            ExpiryMode::Scan
        }
    }

    /// Discard every flow and rebuild this table empty, keeping its
    /// identity (config, slot range, expiry mode). The supervisor's
    /// recovery primitive: after a worker panic the shard's state is
    /// suspect — mid-batch, any subset of table/chain/wheel updates may
    /// have landed — so the restarted worker starts from the one state
    /// whose invariants are trivially re-established, the empty table.
    /// Equivalent to (and implemented as) constructing a fresh
    /// [`FlowManager::for_shard`] with the stored parameters.
    pub fn reset(&mut self) {
        *self =
            FlowManager::for_shard(&self.cfg, self.capacity, self.slot_base, self.expiry_mode());
    }

    /// Debug-only: the wheel-mode clock precondition. Every driver
    /// feeds the table a monotone clock (the NAT has one clock); the
    /// wheel's sorted-bucket invariant leans on it.
    #[inline]
    fn note_clock(&mut self, now: Time) {
        #[cfg(debug_assertions)]
        {
            if self.wheel.is_some() || !self.class_wheels.is_empty() {
                debug_assert!(
                    self.clock_high <= now,
                    "wheel mode requires a monotone clock: {:?} after {:?}",
                    now,
                    self.clock_high
                );
            }
            if self.clock_high < now {
                self.clock_high = now;
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = now;
    }

    /// Flow count.
    pub fn len(&self) -> usize {
        self.table.size()
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the table is full.
    pub fn is_full(&self) -> bool {
        self.chain.is_full()
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The external port assigned to (local) slot `i`.
    pub fn port_of_slot(&self, slot: usize) -> u16 {
        debug_assert!(slot < self.capacity);
        self.cfg.ext_port_of_slot(self.slot_base + slot)
    }

    /// The pool address assigned to (local) slot `i`.
    pub fn ip_of_slot(&self, slot: usize) -> Ip4 {
        debug_assert!(slot < self.capacity);
        self.cfg.ext_ip_of_slot(self.slot_base + slot)
    }

    /// Slot `i`'s port offset within its pool address — the `offset`
    /// of the loop body's `ext_port = start_port + offset` (equals the
    /// global slot index with a single-address pool).
    pub fn port_offset_of_slot(&self, slot: usize) -> u16 {
        debug_assert!(slot < self.capacity);
        ((self.slot_base + slot) % self.cfg.ports_per_ip()) as u16
    }

    /// Expire due flows. Returns how many were removed.
    ///
    /// `threshold` is what the loop body computes: `now -
    /// min_lifetime_ns()`. On a homogeneous config that *is* the
    /// paper's `last_active <= threshold` test, on the literal legacy
    /// engines. On a per-class config the manager reconstructs `now`
    /// and applies each class's own lifetime (module docs) — a flow is
    /// due iff `last_active + lifetime(class) <= now`.
    pub fn expire(&mut self, threshold: Time) -> usize {
        if self.cfg.is_homogeneous() {
            return match self.wheel.as_mut() {
                Some(wheel) => expirator::expire_items_wheel(
                    wheel,
                    &mut self.chain,
                    &mut self.table,
                    threshold,
                ),
                None => expirator::expire_items(&mut self.chain, &mut self.table, threshold),
            };
        }
        let now = Time(threshold.nanos().saturating_add(self.cfg.min_lifetime_ns()));
        let lifetimes = self.lifetimes();
        if self.class_wheels.is_empty() {
            expirator::expire_items_classed(
                &mut self.chain,
                &mut self.table,
                &self.class,
                &lifetimes,
                now,
            )
        } else {
            expirator::expire_items_wheels(
                &mut self.class_wheels,
                &mut self.chain,
                &mut self.table,
                &lifetimes,
                now,
            )
        }
    }

    /// Per-class lifetimes, indexed by `TimeoutClass::index()`.
    fn lifetimes(&self) -> [u64; 3] {
        let mut out = [0u64; 3];
        for c in TimeoutClass::ALL {
            out[c.index()] = self.cfg.lifetime_ns(c);
        }
        out
    }

    /// Find a flow by its internal 5-tuple.
    pub fn lookup_internal(&self, fid: &FlowId) -> Option<(usize, &Flow)> {
        self.lookup_internal_hashed(fid, fid.key_hash())
    }

    /// [`FlowManager::lookup_internal`] with a caller-computed hash
    /// (`hash == fid.key_hash()`). The environments hash each packet's
    /// `FlowId` exactly once and reuse it here and in
    /// [`FlowManager::insert_hashed`].
    pub fn lookup_internal_hashed(&self, fid: &FlowId, hash: u64) -> Option<(usize, &Flow)> {
        let slot = self.table.get_by_a_with_hash(fid, hash)?;
        self.table.get(slot).map(|f| (slot, f))
    }

    /// Resolve a burst of internal-key lookups with one batched
    /// directory probe ([`libvig::DoubleMap::lookup_batch`]), appending
    /// `(slot, flow)` per query to `out` in query order. `hashes[i]`
    /// must equal `fids[i].key_hash()`. `slots_scratch` is a reusable
    /// buffer (cleared here) so steady-state bursts allocate nothing.
    pub fn lookup_internal_batch(
        &self,
        fids: &[FlowId],
        hashes: &[u64],
        slots_scratch: &mut Vec<Option<usize>>,
        out: &mut Vec<Option<(usize, Flow)>>,
    ) {
        slots_scratch.clear();
        self.table.lookup_batch(fids, hashes, slots_scratch);
        out.extend(
            slots_scratch
                .iter()
                .map(|s| s.and_then(|slot| self.table.get(slot).map(|f| (slot, *f)))),
        );
    }

    /// Find a flow by its external key.
    pub fn lookup_external(&self, ek: &ExtKey) -> Option<(usize, &Flow)> {
        self.lookup_external_hashed(ek, ek.key_hash())
    }

    /// [`FlowManager::lookup_external`] with a caller-computed hash
    /// (`hash == ek.key_hash()`).
    pub fn lookup_external_hashed(&self, ek: &ExtKey, hash: u64) -> Option<(usize, &Flow)> {
        let slot = self.table.get_by_b_with_hash(ek, hash)?;
        self.table.get(slot).map(|f| (slot, f))
    }

    /// Refresh a flow's activity timestamp without stepping its TCP
    /// tracker (equivalent to [`FlowManager::rejuvenate_with`] with an
    /// empty flag set, which transitions no state).
    ///
    /// Precondition (P4, validated by the Vigor pipeline): `slot` was
    /// returned by a lookup on this same iteration, hence allocated.
    pub fn rejuvenate(&mut self, slot: usize, now: Time) {
        self.rejuvenate_with(slot, now, Direction::Internal, 0);
    }

    /// Refresh a flow's activity timestamp and step its TCP tracker
    /// with a segment's flags from `dir`. A state change can migrate
    /// the flow between timeout classes, re-arming it on its new
    /// class's wheel (stamped `now`, so each wheel still only ever
    /// sees monotone stamps).
    ///
    /// Precondition (P4) as for [`FlowManager::rejuvenate`].
    pub fn rejuvenate_with(&mut self, slot: usize, now: Time, dir: Direction, tcp_flags: u8) {
        self.note_clock(now);
        let ok = self.chain.rejuvenate(slot, now);
        debug_assert!(ok, "rejuvenate of unallocated slot {slot}");
        if let Some(st) = self.tcp_state[slot] {
            let next = transition(st, dir, tcp_flags);
            self.tcp_state[slot] = Some(next);
            let old_class = self.class[slot];
            let new_class = class_of(Proto::Tcp, Some(next)).index() as u8;
            self.class[slot] = new_class;
            if !self.class_wheels.is_empty() {
                if new_class == old_class {
                    self.class_wheels[usize::from(new_class)].refresh(slot, now);
                } else {
                    let removed = self.class_wheels[usize::from(old_class)].remove(slot);
                    debug_assert!(removed, "slot {slot} missing from class-{old_class} wheel");
                    self.class_wheels[usize::from(new_class)].insert(slot, now);
                }
            }
        } else if !self.class_wheels.is_empty() {
            self.class_wheels[usize::from(self.class[slot])].refresh(slot, now);
        }
        if let Some(wheel) = self.wheel.as_mut() {
            wheel.refresh(slot, now);
        }
    }

    /// The TCP tracker state of an occupied slot (`None` for UDP
    /// flows). Diagnostic/test accessor.
    pub fn tcp_state_of(&self, slot: usize) -> Option<TcpState> {
        debug_assert!(self.chain.is_allocated(slot));
        self.tcp_state.get(slot).copied().flatten()
    }

    /// Reserve a slot for a new flow, stamped `now`. `None` when full.
    ///
    /// The caller must follow up with [`FlowManager::insert`] for the
    /// same slot (the loop body does; the Validator checks it).
    pub fn allocate_slot(&mut self, now: Time) -> Option<usize> {
        self.note_clock(now);
        let slot = self.chain.allocate(now).ok()?;
        if let Some(wheel) = self.wheel.as_mut() {
            wheel.insert(slot, now);
        }
        Some(slot)
    }

    /// Populate a reserved slot.
    ///
    /// Preconditions (P4): `slot` freshly allocated and empty; `fid` not
    /// present; `(ext_ip, ext_port)` is the slot's pool endpoint.
    pub fn insert(&mut self, slot: usize, fid: FlowId, ext_ip: Ip4, ext_port: u16) {
        let hash = fid.key_hash();
        self.insert_hashed(slot, fid, ext_ip, ext_port, hash, 0);
    }

    /// [`FlowManager::insert`] with a caller-computed `FlowId` hash
    /// (`fid_hash == fid.key_hash()`): the lookup miss that precedes
    /// every insert already hashed the key, and this entry point reuses
    /// that work instead of hashing a second time. `tcp_flags` (the
    /// creating segment's flag byte; 0 for UDP) seeds the TCP tracker.
    pub fn insert_hashed(
        &mut self,
        slot: usize,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        fid_hash: u64,
        tcp_flags: u8,
    ) {
        debug_assert_eq!(
            ext_port,
            self.port_of_slot(slot),
            "slot/port bijection violated"
        );
        debug_assert_eq!(
            ext_ip,
            self.ip_of_slot(slot),
            "slot/address bijection violated"
        );
        let st = (fid.proto == Proto::Tcp).then(|| initial_state(tcp_flags));
        let class = class_of(fid.proto, st).index() as u8;
        let flow = Flow {
            int_key: fid,
            ext_ip,
            ext_port,
        };
        let ok = self.table.put_with_hash(slot, flow, fid_hash);
        debug_assert!(ok.is_ok(), "insert into occupied slot {slot}");
        self.tcp_state[slot] = st;
        self.class[slot] = class;
        if !self.class_wheels.is_empty() {
            // The slot was stamped by `allocate_slot` (same iteration,
            // P4); arm its class's wheel with that same stamp so wheel
            // deadlines and chain stamps stay equal.
            let stamp = self
                .chain
                .timestamp_of(slot)
                .expect("insert into unallocated slot");
            self.class_wheels[usize::from(class)].insert(slot, stamp);
        }
    }

    /// Convenience: allocate + insert in one step, returning the slot
    /// and the assigned external port (the slot's pool address is
    /// [`FlowManager::ip_of_slot`]). This is the API examples and
    /// baselines use; the verified loop body uses the two-step form to
    /// keep the port arithmetic in stateless code.
    pub fn allocate(&mut self, fid: FlowId, now: Time) -> Option<(usize, u16)> {
        if self.lookup_internal(&fid).is_some() {
            return None; // caller error: flow exists (precondition)
        }
        let slot = self.allocate_slot(now)?;
        let port = self.port_of_slot(slot);
        let ip = self.ip_of_slot(slot);
        self.insert(slot, fid, ip, port);
        Some((slot, port))
    }

    /// Probe length of an internal-key lookup in the flow directory —
    /// how many positions the tag-probed walk traverses for `fid`
    /// (hit or miss). Diagnostic for the occupancy benchmarks and the
    /// high-occupancy equivalence suite; the datapath never calls it.
    pub fn internal_probe_len(&self, fid: &FlowId) -> usize {
        self.table.probe_len_by_a(fid)
    }

    /// Iterate over live flows (slot, flow, last_active), oldest first.
    /// For tests and statistics; the datapath never scans.
    pub fn iter_lru(&self) -> impl Iterator<Item = (usize, &Flow, Time)> + '_ {
        self.chain
            .iter_lru()
            .filter_map(move |(slot, t)| self.table.get(slot).map(|f| (slot, f, t)))
    }

    /// Assert the cross-structure coherence invariant. Test/diagnostic
    /// use; O(capacity).
    pub fn check_coherence(&self) -> Result<(), String> {
        if self.table.size() != self.chain.size() {
            return Err(format!(
                "size mismatch: dmap {} vs dchain {}",
                self.table.size(),
                self.chain.size()
            ));
        }
        // Both flow directories' tag-group control words must project
        // the slots exactly — expiry and slot realloc go through
        // erase/put, which maintain them.
        self.table.check_directory_coherence()?;
        if let Some(wheel) = self.wheel.as_ref() {
            wheel.check_consistency();
            if wheel.len() != self.chain.size() {
                return Err(format!(
                    "wheel arms {} slots, dchain {}",
                    wheel.len(),
                    self.chain.size()
                ));
            }
        }
        if !self.class_wheels.is_empty() {
            let armed: usize = self.class_wheels.iter().map(TimerWheel::len).sum();
            if armed != self.chain.size() {
                return Err(format!(
                    "class wheels arm {armed} slots, dchain {}",
                    self.chain.size()
                ));
            }
            for w in &self.class_wheels {
                w.check_consistency();
            }
        }
        for slot in 0..self.capacity {
            let in_map = self.table.get(slot).is_some();
            let in_chain = self.chain.is_allocated(slot);
            if in_map != in_chain {
                return Err(format!("slot {slot}: dmap={in_map} dchain={in_chain}"));
            }
            if let Some(wheel) = self.wheel.as_ref() {
                if wheel.contains(slot) != in_chain {
                    return Err(format!(
                        "slot {slot}: wheel={} dchain={in_chain}",
                        wheel.contains(slot)
                    ));
                }
                if in_chain && wheel.deadline_of(slot) != self.chain.timestamp_of(slot) {
                    return Err(format!(
                        "slot {slot}: wheel deadline {:?} != chain stamp {:?}",
                        wheel.deadline_of(slot),
                        self.chain.timestamp_of(slot)
                    ));
                }
            }
            if let Some(f) = self.table.get(slot) {
                // TCP tracker coherence: tracked iff TCP, class derived
                // from the tracker, and (per-class wheel mode) armed on
                // exactly its class's wheel at the chain's stamp.
                if self.tcp_state[slot].is_some() != (f.int_key.proto == Proto::Tcp) {
                    return Err(format!(
                        "slot {slot}: tcp_state {:?} for proto {:?}",
                        self.tcp_state[slot], f.int_key.proto
                    ));
                }
                let want_class = class_of(f.int_key.proto, self.tcp_state[slot]).index() as u8;
                if self.class[slot] != want_class {
                    return Err(format!(
                        "slot {slot}: class {} != tracker class {want_class}",
                        self.class[slot]
                    ));
                }
                for (ci, w) in self.class_wheels.iter().enumerate() {
                    let should_arm = ci == usize::from(self.class[slot]);
                    if w.contains(slot) != should_arm {
                        return Err(format!(
                            "slot {slot}: class-{ci} wheel membership {} (class {})",
                            w.contains(slot),
                            self.class[slot]
                        ));
                    }
                    if should_arm && w.deadline_of(slot) != self.chain.timestamp_of(slot) {
                        return Err(format!(
                            "slot {slot}: class-{ci} wheel stamp {:?} != chain stamp {:?}",
                            w.deadline_of(slot),
                            self.chain.timestamp_of(slot)
                        ));
                    }
                }
                if f.ext_port != self.port_of_slot(slot) {
                    return Err(format!(
                        "slot {slot}: ext_port {} != pool port {}",
                        f.ext_port,
                        self.port_of_slot(slot)
                    ));
                }
                if f.ext_ip != self.ip_of_slot(slot) {
                    return Err(format!(
                        "slot {slot}: ext_ip {} != pool address {}",
                        f.ext_ip,
                        self.ip_of_slot(slot)
                    ));
                }
            }
        }
        Ok(())
    }
}

impl FlowTable for FlowManager {
    fn flow_count(&self) -> usize {
        self.len()
    }

    fn table_capacity(&self) -> usize {
        self.capacity()
    }

    fn expire(&mut self, threshold: Time) -> usize {
        FlowManager::expire(self, threshold)
    }

    fn lookup_internal_hashed(&self, fid: &FlowId, hash: u64) -> Option<(usize, &Flow)> {
        FlowManager::lookup_internal_hashed(self, fid, hash)
    }

    fn probe_internal_batch(
        &mut self,
        fids: &[FlowId],
        hashes: &[u64],
        out: &mut Vec<Option<(usize, Flow)>>,
    ) {
        // Detach the scratch so the `&self` batch probe can run while
        // we hold it mutably; reattach afterwards (no allocation in
        // steady state).
        let mut slots = std::mem::take(&mut self.probe_slots);
        self.lookup_internal_batch(fids, hashes, &mut slots, out);
        self.probe_slots = slots;
    }

    fn lookup_external_hashed(&self, ek: &ExtKey, hash: u64) -> Option<(usize, &Flow)> {
        FlowManager::lookup_external_hashed(self, ek, hash)
    }

    fn rejuvenate(&mut self, slot: usize, now: Time, dir: Direction, tcp_flags: u8) {
        FlowManager::rejuvenate_with(self, slot, now, dir, tcp_flags);
    }

    fn allocate_slot_routed(&mut self, _fid_hash: u64, now: Time) -> Option<usize> {
        // Unsharded: one port pool, the hash plays no routing role.
        self.allocate_slot(now)
    }

    fn endpoint_of_slot(&self, slot: usize) -> (Ip4, u16) {
        (self.ip_of_slot(slot), self.port_of_slot(slot))
    }

    fn port_offset_of_slot(&self, slot: usize) -> u16 {
        FlowManager::port_offset_of_slot(self, slot)
    }

    fn insert_hashed(
        &mut self,
        slot: usize,
        fid: FlowId,
        ext_ip: Ip4,
        ext_port: u16,
        fid_hash: u64,
        tcp_flags: u8,
    ) {
        FlowManager::insert_hashed(self, slot, fid, ext_ip, ext_port, fid_hash, tcp_flags);
    }

    fn check_coherence(&self) -> Result<(), String> {
        FlowManager::check_coherence(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vig_packet::{Ip4, Proto};

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 4,
            expiry_ns: Time::from_secs(10).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 1000,
            ..NatConfig::paper_default()
        }
    }

    fn fid(h: u8, p: u16) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, h),
            src_port: p,
            dst_ip: Ip4::new(8, 8, 8, 8),
            dst_port: 53,
            proto: Proto::Udp,
        }
    }

    #[test]
    fn allocate_assigns_bijective_ports() {
        let mut fm = FlowManager::new(&cfg());
        let mut ports = std::collections::HashSet::new();
        for h in 0..4 {
            let (slot, port) = fm.allocate(fid(h, 100), Time::from_secs(1)).unwrap();
            assert_eq!(port, 1000 + slot as u16);
            assert!(ports.insert(port));
        }
        assert!(fm.is_full());
        assert_eq!(fm.allocate(fid(9, 100), Time::from_secs(1)), None);
        fm.check_coherence().unwrap();
    }

    #[test]
    fn lookup_both_directions() {
        let mut fm = FlowManager::new(&cfg());
        let (slot, port) = fm.allocate(fid(1, 100), Time::from_secs(1)).unwrap();
        let (s2, f) = fm.lookup_internal(&fid(1, 100)).unwrap();
        assert_eq!(s2, slot);
        let ek = f.ext_key();
        assert_eq!(ek.ext_port, port);
        let (s3, _) = fm.lookup_external(&ek).unwrap();
        assert_eq!(s3, slot);
    }

    #[test]
    fn expiry_respects_rejuvenation() {
        let mut fm = FlowManager::new(&cfg());
        let (a, _) = fm.allocate(fid(1, 100), Time::from_secs(1)).unwrap();
        fm.allocate(fid(2, 100), Time::from_secs(2)).unwrap();
        fm.rejuvenate(a, Time::from_secs(5));
        // threshold 2: only flow 2 (stamped 2s) dies; flow 1 was refreshed.
        assert_eq!(fm.expire(Time::from_secs(2)), 1);
        assert!(fm.lookup_internal(&fid(1, 100)).is_some());
        assert!(fm.lookup_internal(&fid(2, 100)).is_none());
        fm.check_coherence().unwrap();
    }

    #[test]
    fn expired_slot_reuses_same_port() {
        let mut fm = FlowManager::new(&cfg());
        let (slot, port) = fm.allocate(fid(1, 100), Time::from_secs(1)).unwrap();
        fm.expire(Time::from_secs(1));
        let (slot2, port2) = fm.allocate(fid(2, 200), Time::from_secs(2)).unwrap();
        assert_eq!(slot2, slot, "LIFO free list reuses the slot");
        assert_eq!(port2, port, "and therefore the port");
        fm.check_coherence().unwrap();
    }

    #[test]
    fn duplicate_allocate_is_rejected() {
        let mut fm = FlowManager::new(&cfg());
        fm.allocate(fid(1, 100), Time::from_secs(1)).unwrap();
        assert_eq!(fm.allocate(fid(1, 100), Time::from_secs(2)), None);
        assert_eq!(fm.len(), 1);
    }

    fn classed_cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            tcp_transitory_ns: Time::from_secs(2).nanos(),
            tcp_established_ns: Time::from_secs(30).nanos(),
            ..cfg()
        }
    }

    fn tcp_fid(h: u8, p: u16) -> FlowId {
        FlowId {
            proto: Proto::Tcp,
            ..fid(h, p)
        }
    }

    #[test]
    fn heterogeneous_config_selects_per_class_engines() {
        let fm = FlowManager::new(&classed_cfg());
        assert_eq!(fm.expiry_mode(), ExpiryMode::Wheel);
        let fm = FlowManager::with_expiry(&classed_cfg(), ExpiryMode::Scan);
        assert_eq!(fm.expiry_mode(), ExpiryMode::Scan);
        // Homogeneous keeps the legacy single wheel.
        let fm = FlowManager::new(&cfg());
        assert!(fm.wheel.is_some() && fm.class_wheels.is_empty());
    }

    #[test]
    fn established_outlives_transitory_and_udp() {
        use vig_packet::tcp::flags;
        let c = classed_cfg();
        let mut fm = FlowManager::new(&c);
        // Half-open TCP (created by a SYN), established TCP (created by
        // a bare-ACK mid-stream pickup), and a UDP flow.
        let f1 = tcp_fid(1, 100);
        let half = fm.allocate_slot(Time::from_secs(1)).unwrap();
        let (ip, port) = (fm.ip_of_slot(half), fm.port_of_slot(half));
        fm.insert_hashed(half, f1, ip, port, f1.key_hash(), flags::SYN);
        assert_eq!(fm.tcp_state_of(half), Some(TcpState::SynSent));
        let (est, _) = fm.allocate(tcp_fid(2, 100), Time::from_secs(1)).unwrap();
        assert_eq!(fm.tcp_state_of(est), Some(TcpState::Established));
        let (udp, _) = fm.allocate(fid(3, 100), Time::from_secs(1)).unwrap();
        assert_eq!(fm.tcp_state_of(udp), None);
        fm.check_coherence().unwrap();
        // The loop body's threshold at t is `t - min_lifetime` (2s).
        // t=4s: the half-open flow (2s lifetime, stamped 1s) is due.
        assert_eq!(fm.expire(Time::from_secs(2)), 1);
        assert!(fm.lookup_internal(&tcp_fid(1, 100)).is_none());
        // t=12s: the UDP flow (10s) dies, established survives.
        assert_eq!(fm.expire(Time::from_secs(10)), 1);
        assert!(fm.lookup_internal(&fid(3, 100)).is_none());
        assert!(fm.lookup_internal(&tcp_fid(2, 100)).is_some());
        // t=31s: the established flow (30s) finally dies.
        assert_eq!(fm.expire(Time::from_secs(29)), 1);
        assert!(fm.is_empty());
        fm.check_coherence().unwrap();
    }

    #[test]
    fn rst_demotes_established_to_transitory() {
        use vig_packet::tcp::flags;
        let mut fm = FlowManager::new(&classed_cfg());
        let (slot, _) = fm.allocate(tcp_fid(1, 100), Time::from_secs(1)).unwrap();
        assert_eq!(fm.tcp_state_of(slot), Some(TcpState::Established));
        fm.rejuvenate_with(slot, Time::from_secs(5), Direction::External, flags::RST);
        assert_eq!(fm.tcp_state_of(slot), Some(TcpState::Closed));
        fm.check_coherence().unwrap();
        // Now on the 2s transitory timer: dead by t=8s.
        assert_eq!(fm.expire(Time::from_secs(6)), 1);
        assert!(fm.is_empty());
    }

    /// One rejuvenate/expire trace, on a per-class config, against both
    /// expiry engines in lockstep.
    fn classed_trace(mode: ExpiryMode) -> Vec<(usize, u16, Time)> {
        use vig_packet::tcp::flags;
        let c = classed_cfg();
        let mut fm = FlowManager::with_expiry(&c, mode);
        let mk = |i: u8| {
            if i.is_multiple_of(2) {
                fid(i, 100)
            } else {
                tcp_fid(i, 100)
            }
        };
        let mut now = Time::ZERO;
        for i in 0..6u8 {
            now = now.plus(500_000_000);
            fm.allocate(mk(i), now).unwrap();
        }
        // Steer the TCP flows through distinct states.
        for (i, fl) in [(1u8, flags::SYN), (3, flags::FIN), (5, flags::ACK)] {
            if let Some((slot, _)) = fm.lookup_internal(&mk(i)) {
                now = now.plus(100_000_000);
                fm.rejuvenate_with(slot, now, Direction::Internal, fl);
            }
        }
        let mut log = Vec::new();
        for step in 0..40u64 {
            now = now.plus(1_000_000_000);
            let thr = now.minus(c.min_lifetime_ns());
            fm.expire(thr);
            fm.check_coherence().unwrap();
            if step % 7 == 0 {
                if let Some((slot, _)) = fm.lookup_internal(&mk(5)) {
                    fm.rejuvenate_with(slot, now, Direction::Internal, flags::ACK);
                }
            }
            for (slot, f, t) in fm.iter_lru() {
                log.push((slot, f.ext_port, t));
            }
        }
        // Free-list drain order: refill and log the assignment order.
        let mut i = 100u8;
        while let Some((slot, port)) = fm.allocate(fid(i, 200), now) {
            log.push((slot, port, now));
            i += 1;
        }
        log
    }

    #[test]
    fn per_class_wheels_equal_per_class_scan() {
        assert_eq!(
            classed_trace(ExpiryMode::Wheel),
            classed_trace(ExpiryMode::Scan)
        );
    }

    proptest! {
        /// Coherence holds under arbitrary interleavings of allocate,
        /// rejuvenate (via lookup), and expiry.
        #[test]
        fn coherence_under_random_ops(
            ops in proptest::collection::vec((0u8..3, 0u8..6, 1u64..30), 0..120),
        ) {
            let mut fm = FlowManager::new(&cfg());
            let mut now = Time::ZERO;
            for (kind, host, dt) in ops {
                now = now.plus(dt * 1_000_000_000);
                match kind {
                    0 => {
                        if fm.lookup_internal(&fid(host, 100)).is_none() {
                            fm.allocate(fid(host, 100), now);
                        }
                    }
                    1 => {
                        if let Some((slot, _)) = fm.lookup_internal(&fid(host, 100)) {
                            fm.rejuvenate(slot, now);
                        }
                    }
                    _ => {
                        let thr = now.minus(10_000_000_000);
                        fm.expire(thr);
                    }
                }
                prop_assert!(fm.check_coherence().is_ok());
            }
        }
    }
}
