//! The effect interface of the stateless NAT code.
//!
//! [`NatEnv`] is everything the stateless loop can do to the outside
//! world: read the clock, receive, branch, query/update the flow table,
//! transmit, drop. In the paper's architecture this is the boundary at
//! which Vigor swaps the real libVig + DPDK for symbolic models (§5.2.1)
//! — so the *entire* behaviour of the NF is determined by the loop body
//! plus an implementation of this trait:
//!
//! * the `netsim` crate implements it over simulated devices and the
//!   concrete [`crate::flow_manager::FlowManager`];
//! * [`crate::simple_env::SimpleEnv`] implements it over plain vectors
//!   for unit and differential testing;
//! * `vig-validator` implements it over symbolic models, where
//!   [`NatEnv::branch`] forks execution and the flow operations return
//!   constrained fresh symbols.
//!
//! The trait extends [`Domain`]: an environment *is* a value domain plus
//! effects, which spares the loop body a borrow dance between the two.

use crate::domain::Domain;
use vig_packet::{Direction, Proto};

/// Opaque handle to an in-flight packet buffer. The loop body may copy
/// and compare it but can only consume it through [`NatEnv::tx`] or
/// [`NatEnv::drop_pkt`] — the paper's buffer-ownership discipline
/// (§5.2.4), with the leak check performed by the Validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PktHandle(pub usize);

/// Opaque handle to an allocated flow slot. Concrete environments use
/// the dmap/dchain index; the symbolic environment invents fresh ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub usize);

/// A received packet, presented as domain-valued header fields.
///
/// This is the granularity of the C original, which overlays
/// `ether_hdr`/`ipv4_hdr`/`tcp_hdr` structs on the mbuf: field access
/// is assumed, *validity checking is not* — every validation branch
/// (EtherType, version, IHL, fragmenting, lengths, protocol) is taken by
/// the stateless code on these values. For frames too short to contain
/// a field, concrete environments supply zeroes; the loop body's
/// length guards run **before** any semantic use of such fields, and
/// under the symbolic engine the fields are unconstrained symbols, so
/// the verification covers the zero-fill behaviour and more.
#[derive(Debug, Clone)]
pub struct RxPacket<D: Domain + ?Sized> {
    /// Buffer ownership token.
    pub handle: PktHandle,
    /// Arrival interface (concrete: the NF knows which port fired).
    pub dir: Direction,
    /// Total frame length in bytes.
    pub frame_len: D::U16,
    /// Ethernet EtherType.
    pub ethertype: D::U16,
    /// Raw IPv4 first byte: version (high nibble) + IHL (low nibble).
    pub version_ihl: D::U8,
    /// IPv4 `total_len` field.
    pub total_len: D::U16,
    /// Raw IPv4 flags+fragment-offset field (bytes 6–7).
    pub frag_field: D::U16,
    /// IPv4 TTL (carried for baselines; VigNAT does not use it).
    pub ttl: D::U8,
    /// IPv4 protocol number.
    pub proto: D::U8,
    /// IPv4 source address.
    pub src_ip: D::U32,
    /// IPv4 destination address.
    pub dst_ip: D::U32,
    /// L4 source port (zero-filled if the frame is short).
    pub src_port: D::U16,
    /// L4 destination port (zero-filled if the frame is short).
    pub dst_port: D::U16,
    /// TCP flags byte (zero-filled for non-TCP packets and frames too
    /// short to carry it). The loop body never branches on it — it is
    /// carried opaquely into the stateful half, whose TCP tracker
    /// selects the flow's timeout class from it.
    pub tcp_flags: D::U8,
}

/// The internal flow identifier, in domain values. The protocol is
/// concrete because the loop body has already branched on it.
#[derive(Debug, Clone)]
pub struct FidParts<D: Domain + ?Sized> {
    /// Internal host address.
    pub src_ip: D::U32,
    /// Internal host port.
    pub src_port: D::U16,
    /// Remote address.
    pub dst_ip: D::U32,
    /// Remote port.
    pub dst_port: D::U16,
    /// Session protocol (concrete per path).
    pub proto: Proto,
}

/// The external-side key, in domain values.
#[derive(Debug, Clone)]
pub struct ExtParts<D: Domain + ?Sized> {
    /// The NAT-allocated pool address (the return packet's destination
    /// ip, canonicalized by the loop body: the single configured
    /// address when the pool has one, the packet's destination
    /// address when it has several).
    pub ext_ip: D::U32,
    /// The NAT-allocated port (the return packet's destination port).
    pub ext_port: D::U16,
    /// Remote address.
    pub dst_ip: D::U32,
    /// Remote port.
    pub dst_port: D::U16,
    /// Session protocol (concrete per path).
    pub proto: Proto,
}

/// A flow-table match, as seen by the stateless code.
#[derive(Debug, Clone)]
pub struct FlowView<D: Domain + ?Sized> {
    /// The slot handle (for rejuvenation).
    pub slot: SlotId,
    /// The allocated external (pool) address.
    pub ext_ip: D::U32,
    /// The allocated external port.
    pub ext_port: D::U16,
    /// The internal endpoint address.
    pub int_ip: D::U32,
    /// The internal endpoint port.
    pub int_port: D::U16,
}

/// The rewritten 5-tuple handed to [`NatEnv::tx`]. The concrete
/// environment applies it to the packet bytes with incremental checksum
/// updates; the symbolic environment records it in the trace for the
/// P1 semantic check.
#[derive(Debug, Clone)]
pub struct TxHdr<D: Domain + ?Sized> {
    /// New source address.
    pub src_ip: D::U32,
    /// New source port.
    pub src_port: D::U16,
    /// New destination address.
    pub dst_ip: D::U32,
    /// New destination port.
    pub dst_port: D::U16,
}

/// Helpers shared by the *concrete* environments (machine-integer
/// domains): key construction from domain-valued packet parts, flow
/// views, and the per-packet `FlowId` hash memo. Kept here so the three
/// concrete envs (`SimpleEnv`, netsim's `FrameEnv` and `BurstEnv`)
/// cannot drift apart in how they hash and convert.
pub mod concrete {
    use super::{ExtParts, FidParts, FlowView, NatEnv, SlotId};
    use libvig::map::MapKey;
    use vig_packet::{ExtKey, Flow, FlowId, Ip4};

    /// The internal 5-tuple as a flow-table key.
    pub fn fid_key<E>(fid: &FidParts<E>) -> FlowId
    where
        E: NatEnv<B = bool, U8 = u8, U16 = u16, U32 = u32, U64 = u64> + ?Sized,
    {
        FlowId {
            src_ip: Ip4(fid.src_ip),
            src_port: fid.src_port,
            dst_ip: Ip4(fid.dst_ip),
            dst_port: fid.dst_port,
            proto: fid.proto,
        }
    }

    /// The external-side key as a flow-table key.
    pub fn ext_key<E>(ek: &ExtParts<E>) -> ExtKey
    where
        E: NatEnv<B = bool, U8 = u8, U16 = u16, U32 = u32, U64 = u64> + ?Sized,
    {
        ExtKey {
            ext_ip: Ip4(ek.ext_ip),
            ext_port: ek.ext_port,
            dst_ip: Ip4(ek.dst_ip),
            dst_port: ek.dst_port,
            proto: ek.proto,
        }
    }

    /// A matched flow as the loop body sees it.
    pub fn view<E>(slot: usize, flow: &Flow) -> FlowView<E>
    where
        E: NatEnv<B = bool, U8 = u8, U16 = u16, U32 = u32, U64 = u64> + ?Sized,
    {
        FlowView {
            slot: SlotId(slot),
            ext_ip: flow.ext_ip.raw(),
            ext_port: flow.ext_port,
            int_ip: flow.int_key.src_ip.raw(),
            int_port: flow.int_key.src_port,
        }
    }

    /// Per-packet `FlowId` hash memo: the lookup that precedes every
    /// insert hashes the key once; the insert reuses that hash. Falls
    /// back to rehashing if the memo doesn't match (an env driven in a
    /// nonstandard order), so it can slow down but never corrupt.
    #[derive(Debug, Default)]
    pub struct FidMemo(Option<(FlowId, u64)>);

    impl FidMemo {
        /// Hash `key` for a lookup, remembering it for the insert that
        /// may follow on the same packet.
        pub fn hash_for_lookup(&mut self, key: FlowId) -> u64 {
            let h = key.key_hash();
            self.0 = Some((key, h));
            h
        }

        /// Hash for the insert of `key`: the memoized value when it
        /// matches, a fresh hash otherwise.
        pub fn hash_for_insert(&mut self, key: &FlowId) -> u64 {
            match self.0 {
                Some((memo_key, memo_hash)) if memo_key == *key => memo_hash,
                _ => key.key_hash(),
            }
        }

        /// Hash for routing the slot allocation that follows a lookup
        /// miss: the memoized hash of the packet's flow id. This is how
        /// the memoized hash doubles as the shard selector for sharded
        /// flow tables ([`crate::flow_manager::FlowTable::allocate_slot_routed`]):
        /// the shard that owns the fresh slot — and therefore the port
        /// range the new flow's external port comes from — is a
        /// function of exactly this value, with no extra hash computed.
        ///
        /// Contract (guaranteed by the loop body, which only allocates
        /// at the sequence point of a just-missed lookup): a lookup of
        /// the flow id that will be inserted precedes every allocation.
        /// Panics if violated — silently routing by a wrong hash would
        /// strand the flow in a shard its lookups never probe.
        pub fn hash_for_alloc(&self) -> u64 {
            self.0
                .as_ref()
                .map(|&(_, h)| h)
                .expect("allocate_slot without a preceding flow lookup")
        }
    }
}

/// The NAT's effect interface. See module docs.
pub trait NatEnv: Domain {
    /// Current time in nanoseconds (monotonic).
    fn now(&mut self) -> Self::U64;

    /// Expire every flow with `last_active <= threshold` (Fig. 6 line 2,
    /// with `threshold = now - Texp` computed — and guarded — by the
    /// stateless code).
    fn expire_flows(&mut self, threshold: &Self::U64);

    /// Non-blocking receive. `None` when no packet is pending.
    fn receive(&mut self) -> Option<RxPacket<Self>>;

    /// Pull up to `max` pending packets into `out` (the
    /// `rte_eth_rx_burst` analog). The default delegates to
    /// [`NatEnv::receive`], so environments that model one packet per
    /// iteration — including the symbolic one — are unaffected; burst
    /// environments override it to drain their RX ring in one call.
    fn receive_burst(&mut self, max: usize, out: &mut Vec<RxPacket<Self>>) {
        while out.len() < max {
            match self.receive() {
                Some(p) => out.push(p),
                None => break,
            }
        }
    }

    /// Decide a branch. Concrete environments evaluate the condition;
    /// the symbolic engine forks execution here, recording the
    /// condition (or its negation) as a path constraint.
    fn branch(&mut self, cond: Self::B) -> bool;

    /// Look up a flow by internal 5-tuple.
    fn lookup_internal(&mut self, fid: &FidParts<Self>) -> Option<FlowView<Self>>;

    /// Resolve a burst of internal-key lookups, appending one result
    /// per query to `out` in query order. Must be observationally
    /// identical to calling [`NatEnv::lookup_internal`] per query — the
    /// default does exactly that; concrete environments override it
    /// with the flow table's batched probe
    /// (`libvig::DoubleMap::lookup_batch`) so a burst's directory
    /// probes issue back to back.
    ///
    /// The burst loop body ([`crate::loop_body::nat_process_batch`])
    /// only *trusts* hits from this call: burst-mate packets can insert
    /// flows (turning a stale miss into a hit) but never remove one, so
    /// misses are re-checked at their sequence point.
    fn lookup_internal_batch(
        &mut self,
        fids: &[FidParts<Self>],
        out: &mut Vec<Option<FlowView<Self>>>,
    ) {
        for fid in fids {
            let r = self.lookup_internal(fid);
            out.push(r);
        }
    }

    /// Look up a flow by external key.
    fn lookup_external(&mut self, ek: &ExtParts<Self>) -> Option<FlowView<Self>>;

    /// Refresh a matched flow's timestamp (Fig. 6 lines 10–12).
    ///
    /// `dir` and `tcp_flags` feed the stateful half's TCP connection
    /// tracker (per-class lifetimes); the stateless code never branches
    /// on either — `dir` is concrete per path already, and the flags
    /// byte is carried opaquely. The symbolic environment ignores both,
    /// so the verified path shapes are unchanged.
    fn rejuvenate(&mut self, slot: SlotId, now: &Self::U64, dir: Direction, tcp_flags: &Self::U8);

    /// Reserve a flow slot, returning its id, the slot's **port
    /// offset** within its pool address (so the loop body's
    /// `ext_port = start_port + offset` arithmetic stays in stateless
    /// code; with the paper's single-address pool the offset *is* the
    /// slot index and the arithmetic is Fig. 6's verbatim), and the
    /// slot's pool address. `None` when the table is full.
    ///
    /// Contract: a successful allocation **must** be followed by
    /// [`NatEnv::insert_flow`] for the same slot on the same path —
    /// the Validator's leak check enforces this (P4).
    fn allocate_slot(&mut self, now: &Self::U64) -> Option<(SlotId, Self::U16, Self::U32)>;

    /// Populate a reserved slot with the new flow (Fig. 6 line 16).
    /// `tcp_flags` seeds the TCP tracker's initial state for TCP flows
    /// (opaque to the stateless code, ignored symbolically — see
    /// [`NatEnv::rejuvenate`]).
    fn insert_flow(
        &mut self,
        slot: SlotId,
        fid: FidParts<Self>,
        ext_ip: Self::U32,
        ext_port: Self::U16,
        now: &Self::U64,
        tcp_flags: &Self::U8,
    );

    /// Transmit the packet on `out` with rewritten headers. Consumes the
    /// buffer.
    fn tx(&mut self, pkt: PktHandle, out: Direction, hdr: TxHdr<Self>);

    /// Drop the packet. Consumes the buffer.
    fn drop_pkt(&mut self, pkt: PktHandle);
}
