//! The value domain the stateless NAT code is written over.
//!
//! Every integer the stateless code touches — header fields, times,
//! ports — has type `D::U8/U16/U32/U64` for a [`Domain`] `D`, and every
//! operation on them goes through a `Domain` method. Two implementations
//! exist:
//!
//! * [`Concrete`] — the datapath: all associated types are plain machine
//!   integers and every method is an `#[inline]` one-liner, so the
//!   monomorphized loop is exactly the code one would write by hand;
//! * `vig_symbex::SymDomain` (in the symbex/validator crates) — every
//!   value is a term in an expression arena, comparisons build
//!   constraint atoms, and arithmetic additionally emits **proof
//!   obligations** (no overflow/underflow), which is how the paper's P2
//!   low-level properties are discharged for the arithmetic the NAT
//!   performs.
//!
//! Contract on arithmetic: `add_u16`, `add_u64` and `sub_u64` are only
//! called on paths where the result cannot wrap; the concrete domain
//! `debug_assert`s this, the symbolic domain *proves* it per path. This
//! mirrors the paper's "integer over/underflow" UBSan obligations (§4.2).

/// The value domain. See module docs.
///
/// Methods take `&mut self` because symbolic domains allocate terms in
/// an arena; [`Concrete`] is a zero-sized type and ignores the receiver.
pub trait Domain {
    /// Boolean values (concrete `bool` / symbolic proposition).
    type B: Clone + core::fmt::Debug;
    /// 8-bit values.
    type U8: Clone + core::fmt::Debug;
    /// 16-bit values.
    type U16: Clone + core::fmt::Debug;
    /// 32-bit values.
    type U32: Clone + core::fmt::Debug;
    /// 64-bit values.
    type U64: Clone + core::fmt::Debug;

    /// Constant boolean.
    fn c_bool(&mut self, v: bool) -> Self::B;
    /// Constant u8.
    fn c_u8(&mut self, v: u8) -> Self::U8;
    /// Constant u16.
    fn c_u16(&mut self, v: u16) -> Self::U16;
    /// Constant u32.
    fn c_u32(&mut self, v: u32) -> Self::U32;
    /// Constant u64.
    fn c_u64(&mut self, v: u64) -> Self::U64;

    /// `a == b` over u8.
    fn eq_u8(&mut self, a: &Self::U8, b: &Self::U8) -> Self::B;
    /// `a == b` over u16.
    fn eq_u16(&mut self, a: &Self::U16, b: &Self::U16) -> Self::B;
    /// `a == b` over u32.
    fn eq_u32(&mut self, a: &Self::U32, b: &Self::U32) -> Self::B;
    /// `a == b` over u64.
    fn eq_u64(&mut self, a: &Self::U64, b: &Self::U64) -> Self::B;

    /// `a < b` over u16.
    fn lt_u16(&mut self, a: &Self::U16, b: &Self::U16) -> Self::B;
    /// `a <= b` over u16.
    fn le_u16(&mut self, a: &Self::U16, b: &Self::U16) -> Self::B;
    /// `a < b` over u64.
    fn lt_u64(&mut self, a: &Self::U64, b: &Self::U64) -> Self::B;
    /// `a <= b` over u64.
    fn le_u64(&mut self, a: &Self::U64, b: &Self::U64) -> Self::B;

    /// Logical conjunction.
    fn and(&mut self, a: &Self::B, b: &Self::B) -> Self::B;
    /// Logical disjunction.
    fn or(&mut self, a: &Self::B, b: &Self::B) -> Self::B;
    /// Logical negation.
    fn not(&mut self, a: &Self::B) -> Self::B;

    /// `a + b` over u16. **Obligation: must not wrap** on the calling
    /// path.
    fn add_u16(&mut self, a: &Self::U16, b: &Self::U16) -> Self::U16;
    /// `a + b` over u64. **Obligation: must not wrap.**
    fn add_u64(&mut self, a: &Self::U64, b: &Self::U64) -> Self::U64;
    /// `a - b` over u64. **Obligation: `b <= a`** on the calling path.
    fn sub_u64(&mut self, a: &Self::U64, b: &Self::U64) -> Self::U64;
    /// `a - b` over u16. **Obligation: `b <= a`** on the calling path.
    fn sub_u16(&mut self, a: &Self::U16, b: &Self::U16) -> Self::U16;

    /// `a & mask` over u8 (header nibble/flag extraction).
    fn and_u8(&mut self, a: &Self::U8, mask: u8) -> Self::U8;
    /// `a & mask` over u16 (fragment-field extraction).
    fn and_u16(&mut self, a: &Self::U16, mask: u16) -> Self::U16;
    /// `a >> shift` over u8.
    fn shr_u8(&mut self, a: &Self::U8, shift: u32) -> Self::U8;
    /// `a << shift` over u8. **Obligation: must not shift bits out** —
    /// used for `IHL * 4`, where the prior `& 0x0f` bounds the operand.
    fn shl_u8(&mut self, a: &Self::U8, shift: u32) -> Self::U8;
    /// Zero-extend u8 to u16.
    fn u8_to_u16(&mut self, a: &Self::U8) -> Self::U16;
}

/// The datapath domain: plain machine integers, zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct Concrete;

impl Domain for Concrete {
    type B = bool;
    type U8 = u8;
    type U16 = u16;
    type U32 = u32;
    type U64 = u64;

    #[inline(always)]
    fn c_bool(&mut self, v: bool) -> bool {
        v
    }
    #[inline(always)]
    fn c_u8(&mut self, v: u8) -> u8 {
        v
    }
    #[inline(always)]
    fn c_u16(&mut self, v: u16) -> u16 {
        v
    }
    #[inline(always)]
    fn c_u32(&mut self, v: u32) -> u32 {
        v
    }
    #[inline(always)]
    fn c_u64(&mut self, v: u64) -> u64 {
        v
    }

    #[inline(always)]
    fn eq_u8(&mut self, a: &u8, b: &u8) -> bool {
        a == b
    }
    #[inline(always)]
    fn eq_u16(&mut self, a: &u16, b: &u16) -> bool {
        a == b
    }
    #[inline(always)]
    fn eq_u32(&mut self, a: &u32, b: &u32) -> bool {
        a == b
    }
    #[inline(always)]
    fn eq_u64(&mut self, a: &u64, b: &u64) -> bool {
        a == b
    }

    #[inline(always)]
    fn lt_u16(&mut self, a: &u16, b: &u16) -> bool {
        a < b
    }
    #[inline(always)]
    fn le_u16(&mut self, a: &u16, b: &u16) -> bool {
        a <= b
    }
    #[inline(always)]
    fn lt_u64(&mut self, a: &u64, b: &u64) -> bool {
        a < b
    }
    #[inline(always)]
    fn le_u64(&mut self, a: &u64, b: &u64) -> bool {
        a <= b
    }

    #[inline(always)]
    fn and(&mut self, a: &bool, b: &bool) -> bool {
        *a && *b
    }
    #[inline(always)]
    fn or(&mut self, a: &bool, b: &bool) -> bool {
        *a || *b
    }
    #[inline(always)]
    fn not(&mut self, a: &bool) -> bool {
        !*a
    }

    #[inline(always)]
    fn add_u16(&mut self, a: &u16, b: &u16) -> u16 {
        debug_assert!(a.checked_add(*b).is_some(), "add_u16 obligation violated");
        a.wrapping_add(*b)
    }
    #[inline(always)]
    fn add_u64(&mut self, a: &u64, b: &u64) -> u64 {
        debug_assert!(a.checked_add(*b).is_some(), "add_u64 obligation violated");
        a.wrapping_add(*b)
    }
    #[inline(always)]
    fn sub_u64(&mut self, a: &u64, b: &u64) -> u64 {
        debug_assert!(b <= a, "sub_u64 obligation violated");
        a.wrapping_sub(*b)
    }
    #[inline(always)]
    fn sub_u16(&mut self, a: &u16, b: &u16) -> u16 {
        debug_assert!(b <= a, "sub_u16 obligation violated");
        a.wrapping_sub(*b)
    }

    #[inline(always)]
    fn and_u8(&mut self, a: &u8, mask: u8) -> u8 {
        a & mask
    }
    #[inline(always)]
    fn and_u16(&mut self, a: &u16, mask: u16) -> u16 {
        a & mask
    }
    #[inline(always)]
    fn shr_u8(&mut self, a: &u8, shift: u32) -> u8 {
        a >> shift
    }
    #[inline(always)]
    fn shl_u8(&mut self, a: &u8, shift: u32) -> u8 {
        debug_assert!(
            a.checked_shl(shift).is_some_and(|r| r == (a << shift)),
            "shl_u8 obligation"
        );
        a << shift
    }
    #[inline(always)]
    fn u8_to_u16(&mut self, a: &u8) -> u16 {
        u16::from(*a)
    }
}

/// The associated types and methods of a concrete (machine-integer)
/// [`Domain`] implementation, for expansion *inside* an `impl Domain
/// for …` block. `impl_concrete_domain!` wraps this for plain types;
/// generic environments (e.g. an env parameterized over its flow-table
/// type) write the `impl<…> Domain for …` header themselves and expand
/// this macro in the body, so every concrete env still forwards to
/// [`Concrete`] and cannot drift.
#[macro_export]
macro_rules! concrete_domain_items {
    () => {
        type B = bool;
        type U8 = u8;
        type U16 = u16;
        type U32 = u32;
        type U64 = u64;

        #[inline(always)]
        fn c_bool(&mut self, v: bool) -> bool {
            v
        }
        #[inline(always)]
        fn c_u8(&mut self, v: u8) -> u8 {
            v
        }
        #[inline(always)]
        fn c_u16(&mut self, v: u16) -> u16 {
            v
        }
        #[inline(always)]
        fn c_u32(&mut self, v: u32) -> u32 {
            v
        }
        #[inline(always)]
        fn c_u64(&mut self, v: u64) -> u64 {
            v
        }
        #[inline(always)]
        fn eq_u8(&mut self, a: &u8, b: &u8) -> bool {
            a == b
        }
        #[inline(always)]
        fn eq_u16(&mut self, a: &u16, b: &u16) -> bool {
            a == b
        }
        #[inline(always)]
        fn eq_u32(&mut self, a: &u32, b: &u32) -> bool {
            a == b
        }
        #[inline(always)]
        fn eq_u64(&mut self, a: &u64, b: &u64) -> bool {
            a == b
        }
        #[inline(always)]
        fn lt_u16(&mut self, a: &u16, b: &u16) -> bool {
            a < b
        }
        #[inline(always)]
        fn le_u16(&mut self, a: &u16, b: &u16) -> bool {
            a <= b
        }
        #[inline(always)]
        fn lt_u64(&mut self, a: &u64, b: &u64) -> bool {
            a < b
        }
        #[inline(always)]
        fn le_u64(&mut self, a: &u64, b: &u64) -> bool {
            a <= b
        }
        #[inline(always)]
        fn and(&mut self, a: &bool, b: &bool) -> bool {
            *a && *b
        }
        #[inline(always)]
        fn or(&mut self, a: &bool, b: &bool) -> bool {
            *a || *b
        }
        #[inline(always)]
        fn not(&mut self, a: &bool) -> bool {
            !*a
        }
        #[inline(always)]
        fn add_u16(&mut self, a: &u16, b: &u16) -> u16 {
            let mut c = $crate::domain::Concrete;
            c.add_u16(a, b)
        }
        #[inline(always)]
        fn add_u64(&mut self, a: &u64, b: &u64) -> u64 {
            let mut c = $crate::domain::Concrete;
            c.add_u64(a, b)
        }
        #[inline(always)]
        fn sub_u64(&mut self, a: &u64, b: &u64) -> u64 {
            let mut c = $crate::domain::Concrete;
            c.sub_u64(a, b)
        }
        #[inline(always)]
        fn sub_u16(&mut self, a: &u16, b: &u16) -> u16 {
            let mut c = $crate::domain::Concrete;
            c.sub_u16(a, b)
        }
        #[inline(always)]
        fn and_u8(&mut self, a: &u8, mask: u8) -> u8 {
            a & mask
        }
        #[inline(always)]
        fn and_u16(&mut self, a: &u16, mask: u16) -> u16 {
            a & mask
        }
        #[inline(always)]
        fn shr_u8(&mut self, a: &u8, shift: u32) -> u8 {
            a >> shift
        }
        #[inline(always)]
        fn shl_u8(&mut self, a: &u8, shift: u32) -> u8 {
            let mut c = $crate::domain::Concrete;
            c.shl_u8(a, shift)
        }
        #[inline(always)]
        fn u8_to_u16(&mut self, a: &u8) -> u16 {
            u16::from(*a)
        }
    };
}

/// Implement [`Domain`] for a type by forwarding every operation to
/// [`Concrete`]. Concrete environments (the simple test env, the netsim
/// datapath env, the baselines) use this so they can be handed to the
/// generic loop body without any indirection — each forwarded method
/// inlines to the same machine instruction `Concrete` emits.
#[macro_export]
macro_rules! impl_concrete_domain {
    ($ty:ty) => {
        impl $crate::domain::Domain for $ty {
            $crate::concrete_domain_items!();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_are_plain_arithmetic() {
        let mut d = Concrete;
        assert!(d.eq_u16(&5, &5));
        assert!(!d.eq_u32(&1, &2));
        assert!(d.lt_u64(&1, &2));
        assert!(d.le_u16(&2, &2));
        assert_eq!(d.add_u16(&1000, &24), 1024);
        assert_eq!(d.sub_u64(&10, &4), 6);
        assert_eq!(d.and_u8(&0x45, 0x0f), 5);
        assert_eq!(d.shr_u8(&0x45, 4), 4);
        assert_eq!(d.shl_u8(&5, 2), 20);
        assert_eq!(d.u8_to_u16(&0xff), 255);
        let t = d.c_bool(true);
        let f = d.not(&t);
        assert!(d.or(&t, &f));
        assert!(!d.and(&t, &f));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "add_u16 obligation")]
    fn concrete_add_checks_obligation_in_debug() {
        let mut d = Concrete;
        let _ = d.add_u16(&65535, &1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sub_u64 obligation")]
    fn concrete_sub_checks_obligation_in_debug() {
        let mut d = Concrete;
        let _ = d.sub_u64(&1, &2);
    }
}
