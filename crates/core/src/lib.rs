//! # vignat — the verified NAT (the paper's primary artifact)
//!
//! VigNAT splits into exactly the two halves the paper's methodology
//! requires (§5):
//!
//! * **Stateful half** — [`flow_manager::FlowManager`]: all NAT state,
//!   held in libVig structures (a [`libvig::DoubleMap`] flow table plus a
//!   [`libvig::DoubleChain`] slot allocator). Verified against contracts
//!   in the `libvig` crate (P3). Behind the [`flow_manager::FlowTable`]
//!   seam the state can also be RSS-partitioned across N independent
//!   shards ([`sharded::ShardedFlowManager`]) without the stateless
//!   half noticing — see the `sharded` module docs.
//! * **Stateless half** — [`loop_body::nat_loop_iteration`]: one
//!   iteration of the packet-processing loop, containing *every* branch
//!   and every piece of arithmetic the NAT performs, but **zero**
//!   persistent state. It is written once, generically:
//!
//!   - over a value [`domain::Domain`] — concrete machine integers on
//!     the datapath ([`domain::Concrete`]), symbolic terms under the
//!     verification engine;
//!   - over an effect interface [`env::NatEnv`] — real devices + real
//!     libVig in production (the `netsim` crate), *symbolic models* of
//!     both under verification (the `vig-validator` crate).
//!
//! This is the Rust equivalent of the paper's arrangement where the same
//! C file is compiled against DPDK + libVig for deployment and against
//! the symbolic models for exhaustive symbolic execution. Because the
//! loop body is a single generic function, there is no possibility of
//! the verified code and the deployed code drifting apart — they are
//! the same monomorphization source, and with [`domain::Concrete`]
//! every domain operation inlines to a plain machine instruction.
//!
//! The slot⇄port bijection VigNAT is known for is preserved: flow slot
//! `i` always uses the pool endpoint of index `i` — external port
//! `start_port + i` with the paper's single-address pool — so endpoint
//! uniqueness follows from slot uniqueness, which the dchain contract
//! provides. Beyond 64k flows the pool spills onto consecutive
//! external addresses, and expiry runs on a hierarchical timer wheel
//! ([`flow_manager::ExpiryMode`]) proven equivalent to the LRU scan.
//!
//! ## Quick start
//!
//! ```
//! use vignat::{FlowManager, NatConfig};
//! use libvig::time::Time;
//! use vig_packet::{FlowId, Ip4, Proto};
//!
//! let cfg = NatConfig {
//!     capacity: 1024,
//!     expiry_ns: Time::from_secs(60).nanos(),
//!     external_ip: Ip4::new(203, 0, 113, 1),
//!     start_port: 1024,
//!     ..NatConfig::paper_default()
//! };
//! let mut fm = FlowManager::new(&cfg);
//! let fid = FlowId {
//!     src_ip: Ip4::new(192, 168, 0, 2), src_port: 49152,
//!     dst_ip: Ip4::new(93, 184, 216, 34), dst_port: 80, proto: Proto::Tcp,
//! };
//! let (slot, ext_port) = fm.allocate(fid, Time::from_secs(1)).unwrap();
//! assert_eq!(ext_port, 1024 + slot as u16);
//! assert_eq!(fm.lookup_internal(&fid).unwrap().0, slot);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod env;
pub mod flow_manager;
pub mod loop_body;
pub mod sharded;
pub mod simple_env;

pub use domain::{Concrete, Domain};
pub use env::{ExtParts, FidParts, FlowView, NatEnv, PktHandle, RxPacket, SlotId, TxHdr};
pub use flow_manager::{ExpiryMode, FlowManager, FlowTable};
pub use loop_body::{nat_loop_iteration, nat_process_batch, IterationOutcome, MAX_BURST};
pub use sharded::{QueueFed, ShardedFlowManager};
pub use simple_env::SimpleEnv;

/// The NAT configuration — re-exported from the spec crate so that the
/// implementation and its specification can never disagree about what
/// the parameters mean.
pub use vig_spec::NatConfig;
