//! The symbolic term arena.
//!
//! Terms are immutable, hash-consed (structurally identical terms share
//! one id — so syntactic equality is id equality, and the solver's
//! "same base" reasoning works across the whole path), and cover
//! exactly the operations `vignat`'s `Domain` trait exposes plus the
//! propositions its branches produce.
//!
//! Constant folding happens at construction: `add(c1, c2)` yields a
//! constant, `eq(t, t)` yields `true`, etc. This keeps paths short and
//! makes many proof obligations discharge syntactically.

use std::collections::HashMap;

/// Bit-width of a numeric term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    /// Largest value of this width.
    pub fn max_value(self) -> u64 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
            Width::W64 => u64::MAX,
        }
    }
}

/// Index of a term in its arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// A proposition: a boolean-sorted term.
pub type Prop = TermId;

/// Term node. Numeric nodes carry/imply a width; boolean nodes are
/// propositions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// Numeric constant.
    ConstU(u64, Width),
    /// Free variable (the symbolic inputs: packet fields, time, model
    /// outputs). The `u32` is a unique variable number.
    Var(u32, Width),
    /// `a + b` (mathematical integer semantics; non-wrapping is a proof
    /// obligation emitted by the domain, not an assumption here).
    Add(TermId, TermId),
    /// `a - b` (mathematical; non-negative is an obligation).
    Sub(TermId, TermId),
    /// `a & mask`.
    AndMask(TermId, u64),
    /// `a << s`.
    ShlC(TermId, u32),
    /// `a >> s`.
    ShrC(TermId, u32),
    /// Zero-extension to a wider width.
    Zext(TermId, Width),
    /// Boolean constant.
    ConstB(bool),
    /// `a == b` (operands sorted for hash-consing).
    Eq(TermId, TermId),
    /// `a < b`.
    Lt(TermId, TermId),
    /// `a <= b`.
    Le(TermId, TermId),
    /// `!a`.
    Not(TermId),
    /// `a && b` (operands sorted).
    AndB(TermId, TermId),
    /// `a || b` (operands sorted).
    OrB(TermId, TermId),
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct TermArena {
    nodes: Vec<Node>,
    memo: HashMap<Node, TermId>,
    var_names: HashMap<u32, String>,
    next_var: u32,
}

impl TermArena {
    /// Empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no terms were built.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    pub fn node(&self, t: TermId) -> &Node {
        &self.nodes[t.0 as usize]
    }

    fn intern(&mut self, n: Node) -> TermId {
        if let Some(&id) = self.memo.get(&n) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.memo.insert(n, id);
        id
    }

    /// Fresh symbolic variable.
    pub fn var(&mut self, name: &str, w: Width) -> TermId {
        let v = self.next_var;
        self.next_var += 1;
        self.var_names.insert(v, name.to_string());
        self.intern(Node::Var(v, w))
    }

    /// Debug name of a variable term (or a rendering of the node).
    pub fn name_of(&self, t: TermId) -> String {
        match self.node(t) {
            Node::Var(v, _) => self
                .var_names
                .get(v)
                .cloned()
                .unwrap_or_else(|| format!("v{v}")),
            n => format!("{n:?}"),
        }
    }

    /// Numeric constant.
    pub fn cu(&mut self, v: u64, w: Width) -> TermId {
        debug_assert!(v <= w.max_value());
        self.intern(Node::ConstU(v, w))
    }

    /// Boolean constant.
    pub fn cb(&mut self, v: bool) -> TermId {
        self.intern(Node::ConstB(v))
    }

    /// Constant value of a term, if it is a numeric constant.
    pub fn as_const(&self, t: TermId) -> Option<u64> {
        match self.node(t) {
            Node::ConstU(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Constant value of a proposition, if decided syntactically.
    pub fn as_const_bool(&self, t: TermId) -> Option<bool> {
        match self.node(t) {
            Node::ConstB(b) => Some(*b),
            _ => None,
        }
    }

    /// Width of a numeric term.
    pub fn width(&self, t: TermId) -> Width {
        match self.node(t) {
            Node::ConstU(_, w) | Node::Var(_, w) | Node::Zext(_, w) => *w,
            Node::Add(a, _)
            | Node::Sub(a, _)
            | Node::AndMask(a, _)
            | Node::ShlC(a, _)
            | Node::ShrC(a, _) => self.width(*a),
            _ => panic!("width of a boolean term"),
        }
    }

    /// `a + b`, constant-folded.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => {
                let w = self.width(a);
                self.cu((x + y).min(w.max_value()), w)
            }
            _ => self.intern(Node::Add(a, b)),
        }
    }

    /// `a - b`, constant-folded.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            let w = self.width(a);
            return self.cu(0, w);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) if x >= y => {
                let w = self.width(a);
                self.cu(x - y, w)
            }
            _ => self.intern(Node::Sub(a, b)),
        }
    }

    /// `a & mask`, constant-folded.
    pub fn and_mask(&mut self, a: TermId, mask: u64) -> TermId {
        match self.as_const(a) {
            Some(x) => {
                let w = self.width(a);
                self.cu(x & mask, w)
            }
            None => self.intern(Node::AndMask(a, mask)),
        }
    }

    /// `a << s`, constant-folded.
    pub fn shl(&mut self, a: TermId, s: u32) -> TermId {
        match self.as_const(a) {
            Some(x) => {
                let w = self.width(a);
                self.cu((x << s) & w.max_value(), w)
            }
            None => self.intern(Node::ShlC(a, s)),
        }
    }

    /// `a >> s`, constant-folded.
    pub fn shr(&mut self, a: TermId, s: u32) -> TermId {
        match self.as_const(a) {
            Some(x) => {
                let w = self.width(a);
                self.cu(x >> s, w)
            }
            None => self.intern(Node::ShrC(a, s)),
        }
    }

    /// Zero-extend to `w`.
    pub fn zext(&mut self, a: TermId, w: Width) -> TermId {
        debug_assert!(w >= self.width(a));
        match self.as_const(a) {
            Some(x) => self.cu(x, w),
            None => self.intern(Node::Zext(a, w)),
        }
    }

    /// `a == b`, folded and operand-sorted.
    pub fn eq(&mut self, a: TermId, b: TermId) -> Prop {
        if a == b {
            return self.cb(true);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.cb(x == y);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Node::Eq(a, b))
    }

    /// `a < b`, folded.
    pub fn lt(&mut self, a: TermId, b: TermId) -> Prop {
        if a == b {
            return self.cb(false);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.cb(x < y);
        }
        self.intern(Node::Lt(a, b))
    }

    /// `a <= b`, folded.
    pub fn le(&mut self, a: TermId, b: TermId) -> Prop {
        if a == b {
            return self.cb(true);
        }
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.cb(x <= y);
        }
        self.intern(Node::Le(a, b))
    }

    /// `!a`, folded (double negation collapses).
    pub fn not(&mut self, a: Prop) -> Prop {
        if let Some(b) = self.as_const_bool(a) {
            return self.cb(!b);
        }
        if let Node::Not(inner) = self.node(a) {
            return *inner;
        }
        self.intern(Node::Not(a))
    }

    /// `a && b`, folded and operand-sorted.
    pub fn and(&mut self, a: Prop, b: Prop) -> Prop {
        match (self.as_const_bool(a), self.as_const_bool(b)) {
            (Some(false), _) | (_, Some(false)) => return self.cb(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Node::AndB(a, b))
    }

    /// `a || b`, folded and operand-sorted.
    pub fn or(&mut self, a: Prop, b: Prop) -> Prop {
        match (self.as_const_bool(a), self.as_const_bool(b)) {
            (Some(true), _) | (_, Some(true)) => return self.cb(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(Node::OrB(a, b))
    }

    /// Evaluate a term under a variable assignment (model checking for
    /// tests, and counterexample confirmation). Returns `None` if some
    /// variable is unassigned.
    pub fn eval(&self, t: TermId, assign: &HashMap<u32, u64>) -> Option<u64> {
        Some(match self.node(t) {
            Node::ConstU(v, _) => *v,
            Node::Var(v, _) => *assign.get(v)?,
            Node::Add(a, b) => self.eval(*a, assign)? + self.eval(*b, assign)?,
            Node::Sub(a, b) => self.eval(*a, assign)?.wrapping_sub(self.eval(*b, assign)?),
            Node::AndMask(a, m) => self.eval(*a, assign)? & m,
            Node::ShlC(a, s) => self.eval(*a, assign)? << s,
            Node::ShrC(a, s) => self.eval(*a, assign)? >> s,
            Node::Zext(a, _) => self.eval(*a, assign)?,
            Node::ConstB(b) => u64::from(*b),
            Node::Eq(a, b) => u64::from(self.eval(*a, assign)? == self.eval(*b, assign)?),
            Node::Lt(a, b) => u64::from(self.eval(*a, assign)? < self.eval(*b, assign)?),
            Node::Le(a, b) => u64::from(self.eval(*a, assign)? <= self.eval(*b, assign)?),
            Node::Not(a) => u64::from(self.eval(*a, assign)? == 0),
            Node::AndB(a, b) => {
                u64::from(self.eval(*a, assign)? != 0 && self.eval(*b, assign)? != 0)
            }
            Node::OrB(a, b) => {
                u64::from(self.eval(*a, assign)? != 0 || self.eval(*b, assign)? != 0)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_structure() {
        let mut a = TermArena::new();
        let x = a.var("x", Width::W16);
        let five = a.cu(5, Width::W16);
        let t1 = a.add(x, five);
        let t2 = a.add(x, five);
        assert_eq!(t1, t2, "identical terms share one id");
        let e1 = a.eq(x, five);
        let e2 = a.eq(five, x);
        assert_eq!(e1, e2, "eq is order-normalized");
    }

    #[test]
    fn constant_folding() {
        let mut a = TermArena::new();
        let c2 = a.cu(2, Width::W16);
        let c3 = a.cu(3, Width::W16);
        let s = a.add(c2, c3);
        assert_eq!(a.as_const(s), Some(5));
        let e = a.eq(c2, c3);
        assert_eq!(a.as_const_bool(e), Some(false));
        let l = a.lt(c2, c3);
        assert_eq!(a.as_const_bool(l), Some(true));
        let x = a.var("x", Width::W8);
        let self_eq = a.eq(x, x);
        assert_eq!(a.as_const_bool(self_eq), Some(true));
        let self_sub = a.sub(x, x);
        assert_eq!(a.as_const(self_sub), Some(0));
    }

    #[test]
    fn boolean_simplification() {
        let mut a = TermArena::new();
        let x = a.var("x", Width::W8);
        let y = a.var("y", Width::W8);
        let p = a.eq(x, y);
        let t = a.cb(true);
        let f = a.cb(false);
        assert_eq!(a.and(p, t), p);
        assert_eq!(a.and(p, f), f);
        assert_eq!(a.or(p, f), p);
        assert_eq!(a.or(p, t), t);
        let np = a.not(p);
        assert_eq!(a.not(np), p, "double negation collapses");
        assert_eq!(a.and(p, p), p);
    }

    #[test]
    fn bitop_folding() {
        let mut a = TermArena::new();
        let c = a.cu(0x45, Width::W8);
        let masked = a.and_mask(c, 0x0f);
        assert_eq!(a.as_const(masked), Some(5));
        let shifted = a.shl(masked, 2);
        assert_eq!(a.as_const(shifted), Some(20));
        let back = a.shr(shifted, 2);
        assert_eq!(a.as_const(back), Some(5));
    }

    #[test]
    fn eval_against_assignment() {
        let mut a = TermArena::new();
        let x = a.var("x", Width::W16);
        let c10 = a.cu(10, Width::W16);
        let sum = a.add(x, c10);
        let c50 = a.cu(50, Width::W16);
        let prop = a.le(sum, c50);
        let mut assign = HashMap::new();
        assign.insert(0, 30); // x = 30
        assert_eq!(a.eval(sum, &assign), Some(40));
        assert_eq!(a.eval(prop, &assign), Some(1));
        assign.insert(0, 45);
        assert_eq!(a.eval(prop, &assign), Some(0));
    }

    #[test]
    fn width_tracking() {
        let mut a = TermArena::new();
        let x = a.var("x", Width::W8);
        let z = a.zext(x, Width::W16);
        assert_eq!(a.width(z), Width::W16);
        let m = a.and_mask(x, 0x0f);
        assert_eq!(a.width(m), Width::W8);
        assert_eq!(Width::W16.max_value(), 65535);
    }
}
