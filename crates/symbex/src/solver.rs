//! The constraint solver.
//!
//! Decides satisfiability of conjunctions of (possibly negated)
//! propositions from the [`crate::term`] language. The decision
//! procedure combines:
//!
//! 1. **abstract interval analysis** through the numeric operators
//!    (`&mask` is bounded by the mask, `<<`/`>>` shift bounds, `+`/`-`
//!    add bounds, variables get their width range);
//! 2. **difference-bound reasoning**: every numeric term linearizes to
//!    `base + offset` (constants fold into offsets, non-linear nodes
//!    become opaque bases with intervals); atoms become difference
//!    bounds `base1 - base2 <= c`, closed with Floyd–Warshall; a
//!    negative diagonal is a contradiction;
//! 3. **disequalities**: `a != b` refutes only a *forced* equality
//!    (tight bounds both ways);
//! 4. **DPLL-lite case splitting** over `&&`/`||`/`!` structure.
//!
//! ## Soundness contract
//!
//! [`SatResult::Unsat`] is a proof: every step only ever *adds implied
//! facts* (intervals over-approximate value sets; difference bounds are
//! implied by the atoms; shortest-path closure preserves solutions), so
//! a derived contradiction means no model exists. [`SatResult::Sat`]
//! means "no contradiction found" — the procedure is deliberately
//! incomplete in that direction, which for verification can only cause
//! spurious *failures*, never spurious proofs (the paper's own stance
//! for Vigor, §7).

use crate::term::{Node, Prop, TermArena, TermId};
use std::collections::HashMap;

/// Solver verdict for a conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// Proven unsatisfiable.
    Unsat,
    /// Not proven unsatisfiable (possibly satisfiable).
    Sat,
}

/// A literal: a proposition asserted `true` or `false`.
pub type Lit = (Prop, bool);

const INF: i128 = i128::MAX / 4;

/// The solver. Stateless between calls; borrow the arena per query.
#[derive(Debug, Default, Clone, Copy)]
pub struct Solver;

impl Solver {
    /// Check a conjunction of literals.
    pub fn check(arena: &TermArena, lits: &[Lit]) -> SatResult {
        let mut atoms = Vec::new();
        Self::split(arena, lits, &mut atoms, 0)
    }

    /// Does `path` entail `prop`? True iff `path ∧ ¬prop` is provably
    /// unsatisfiable.
    pub fn entails(arena: &TermArena, path: &[Lit], prop: Prop) -> bool {
        let mut lits: Vec<Lit> = path.to_vec();
        lits.push((prop, false));
        Self::check(arena, &lits) == SatResult::Unsat
    }

    // ---------------------------------------------------------------
    // DPLL-lite: reduce literals to conjunctions of atoms, splitting
    // on disjunctive structure. `idx` walks `lits`; `atoms`
    // accumulates (atom-node, polarity).
    // ---------------------------------------------------------------
    fn split(
        arena: &TermArena,
        lits: &[Lit],
        atoms: &mut Vec<(TermId, bool)>,
        idx: usize,
    ) -> SatResult {
        if idx == lits.len() {
            return Self::theory_check(arena, atoms);
        }
        let (t, want) = lits[idx];
        match arena.node(t) {
            Node::ConstB(b) => {
                if *b == want {
                    Self::split(arena, lits, atoms, idx + 1)
                } else {
                    SatResult::Unsat
                }
            }
            Node::Not(inner) => {
                let mut rest: Vec<Lit> = vec![(*inner, !want)];
                rest.extend_from_slice(&lits[idx + 1..]);
                Self::split(arena, &rest, atoms, 0)
            }
            Node::AndB(a, b) if want => {
                let mut rest: Vec<Lit> = vec![(*a, true), (*b, true)];
                rest.extend_from_slice(&lits[idx + 1..]);
                Self::split(arena, &rest, atoms, 0)
            }
            Node::AndB(a, b) => {
                // !(a && b) == !a || !b : case split
                Self::split_cases(arena, lits, atoms, idx, (*a, false), (*b, false))
            }
            Node::OrB(a, b) if want => {
                Self::split_cases(arena, lits, atoms, idx, (*a, true), (*b, true))
            }
            Node::OrB(a, b) => {
                let mut rest: Vec<Lit> = vec![(*a, false), (*b, false)];
                rest.extend_from_slice(&lits[idx + 1..]);
                Self::split(arena, &rest, atoms, 0)
            }
            Node::Eq(..) | Node::Lt(..) | Node::Le(..) => {
                atoms.push((t, want));
                let r = Self::split(arena, lits, atoms, idx + 1);
                atoms.pop();
                r
            }
            other => panic!("non-boolean term in literal position: {other:?}"),
        }
    }

    fn split_cases(
        arena: &TermArena,
        lits: &[Lit],
        atoms: &mut Vec<(TermId, bool)>,
        idx: usize,
        c1: Lit,
        c2: Lit,
    ) -> SatResult {
        for case in [c1, c2] {
            let mut rest: Vec<Lit> = vec![case];
            rest.extend_from_slice(&lits[idx + 1..]);
            if Self::split(arena, &rest, atoms, 0) == SatResult::Sat {
                return SatResult::Sat;
            }
        }
        SatResult::Unsat
    }

    // ---------------------------------------------------------------
    // Theory: intervals + difference bounds + disequalities.
    // ---------------------------------------------------------------
    fn theory_check(arena: &TermArena, atoms: &[(TermId, bool)]) -> SatResult {
        let mut th = Theory::new();
        // Collect base terms and seed intervals.
        for &(a, _) in atoms {
            let (l, r) = match arena.node(a) {
                Node::Eq(l, r) | Node::Lt(l, r) | Node::Le(l, r) => (*l, *r),
                _ => unreachable!("atoms are comparisons"),
            };
            th.base_of(arena, l);
            th.base_of(arena, r);
        }
        // Assert atoms as difference bounds / disequalities.
        for &(a, want) in atoms {
            let (l, r, kind) = match arena.node(a) {
                Node::Eq(l, r) => (*l, *r, AtomKind::Eq),
                Node::Lt(l, r) => (*l, *r, AtomKind::Lt),
                Node::Le(l, r) => (*l, *r, AtomKind::Le),
                _ => unreachable!(),
            };
            let (b1, o1) = th.linearize(arena, l);
            let (b2, o2) = th.linearize(arena, r);
            match (kind, want) {
                (AtomKind::Eq, true) => {
                    th.add_edge(b1, b2, o2 - o1);
                    th.add_edge(b2, b1, o1 - o2);
                }
                (AtomKind::Eq, false) => th.diseqs.push((b1, b2, o2 - o1)),
                (AtomKind::Le, true) => th.add_edge(b1, b2, o2 - o1),
                (AtomKind::Le, false) => th.add_edge(b2, b1, o1 - o2 - 1),
                (AtomKind::Lt, true) => th.add_edge(b1, b2, o2 - o1 - 1),
                (AtomKind::Lt, false) => th.add_edge(b2, b1, o1 - o2),
            }
        }
        th.consistent()
    }
}

#[derive(Debug, Clone, Copy)]
enum AtomKind {
    Eq,
    Lt,
    Le,
}

/// Theory state: bases (node 0 = the constant zero), a difference-bound
/// matrix, and disequalities.
struct Theory {
    /// term -> base index (vars and opaque terms).
    base_ids: HashMap<TermId, usize>,
    /// dbm[i][j] = upper bound on (base_i - base_j).
    dbm: Vec<Vec<i128>>,
    diseqs: Vec<(usize, usize, i128)>, // b1 - b2 != rhs  (i.e. b1+o1 != b2+o2 with rhs = o2-o1)
}

impl Theory {
    fn new() -> Theory {
        Theory {
            base_ids: HashMap::new(),
            dbm: vec![vec![0]],
            diseqs: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        while self.dbm.len() <= n {
            for row in &mut self.dbm {
                row.push(INF);
            }
            let len = self.dbm[0].len();
            let mut row = vec![INF; len];
            row[self.dbm.len()] = 0;
            self.dbm.push(row);
        }
    }

    /// Register the base of a term (recursively seeding intervals).
    fn base_of(&mut self, arena: &TermArena, t: TermId) -> (usize, i128) {
        self.linearize(arena, t)
    }

    /// Linearize a numeric term to (base index, offset). Constants fold
    /// into the offset; anything non-linear becomes an opaque base with
    /// its abstract interval asserted against zero.
    fn linearize(&mut self, arena: &TermArena, t: TermId) -> (usize, i128) {
        match arena.node(t) {
            Node::ConstU(v, _) => (0, *v as i128),
            Node::Add(a, b) => {
                let (ba, oa) = self.linearize(arena, *a);
                let (bb, ob) = self.linearize(arena, *b);
                if ba == 0 {
                    (bb, oa + ob)
                } else if bb == 0 {
                    (ba, oa + ob)
                } else {
                    self.opaque(arena, t)
                }
            }
            Node::Sub(a, b) => {
                let (ba, oa) = self.linearize(arena, *a);
                let (bb, ob) = self.linearize(arena, *b);
                if bb == 0 {
                    (ba, oa - ob)
                } else {
                    self.opaque(arena, t)
                }
            }
            _ => self.opaque(arena, t),
        }
    }

    /// An opaque base for `t`, with its abstract interval as bounds
    /// against the zero node.
    fn opaque(&mut self, arena: &TermArena, t: TermId) -> (usize, i128) {
        if let Some(&b) = self.base_ids.get(&t) {
            return (b, 0);
        }
        let b = self.dbm.len();
        self.ensure(b);
        self.base_ids.insert(t, b);
        let (lo, hi) = bounds(arena, t);
        // b - 0 <= hi ;  0 - b <= -lo
        self.add_edge(b, 0, hi);
        self.add_edge(0, b, -lo);
        // Structural refinement for opaque subtraction: relate
        // `t = a - s` to `a`'s linear form through `s`'s interval
        // (e.g. total_len - ihl <= total_len, since ihl >= 0).
        if let Node::Sub(a, s) = arena.node(t) {
            let (ba, oa) = self.linearize(arena, *a);
            let (lo_s, hi_s) = bounds(arena, *s);
            // t <= a - lo_s  =>  t - ba <= oa - lo_s
            self.add_edge(b, ba, oa - lo_s);
            // t >= a - hi_s  =>  ba - t <= hi_s - oa
            if hi_s < INF {
                self.add_edge(ba, b, hi_s - oa);
            }
        }
        (b, 0)
    }

    fn add_edge(&mut self, i: usize, j: usize, w: i128) {
        self.ensure(i.max(j));
        if w < self.dbm[i][j] {
            self.dbm[i][j] = w;
        }
    }

    fn consistent(&mut self) -> SatResult {
        let n = self.dbm.len();
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                if self.dbm[i][k] == INF {
                    continue;
                }
                for j in 0..n {
                    if self.dbm[k][j] == INF {
                        continue;
                    }
                    let via = self.dbm[i][k].saturating_add(self.dbm[k][j]);
                    if via < self.dbm[i][j] {
                        self.dbm[i][j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            if self.dbm[i][i] < 0 {
                return SatResult::Unsat;
            }
        }
        // Disequalities refute only forced equalities.
        for &(b1, b2, rhs) in &self.diseqs {
            if b1 == b2 {
                if rhs == 0 {
                    return SatResult::Unsat;
                }
                continue;
            }
            if self.dbm[b1][b2] == rhs && self.dbm[b2][b1] == -rhs {
                return SatResult::Unsat;
            }
        }
        SatResult::Sat
    }
}

/// Abstract interval of a term (inclusive), by structural recursion.
fn bounds(arena: &TermArena, t: TermId) -> (i128, i128) {
    match arena.node(t) {
        Node::ConstU(v, _) => (*v as i128, *v as i128),
        Node::Var(_, w) => (0, w.max_value() as i128),
        Node::Add(a, b) => {
            let (la, ha) = bounds(arena, *a);
            let (lb, hb) = bounds(arena, *b);
            (la + lb, ha + hb)
        }
        Node::Sub(a, b) => {
            // Mathematical subtraction (non-wrap is a separate
            // obligation); lower bound may be negative.
            let (la, ha) = bounds(arena, *a);
            let (lb, hb) = bounds(arena, *b);
            (la - hb, ha - lb)
        }
        Node::AndMask(a, m) => {
            let (_, ha) = bounds(arena, *a);
            (0, (*m as i128).min(ha))
        }
        Node::ShlC(a, s) => {
            let (la, ha) = bounds(arena, *a);
            (la << s, ha << s)
        }
        Node::ShrC(a, s) => {
            let (la, ha) = bounds(arena, *a);
            (la >> s, ha >> s)
        }
        Node::Zext(a, _) => bounds(arena, *a),
        _ => panic!("bounds of a boolean term"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Width;

    fn arena() -> TermArena {
        TermArena::new()
    }

    #[test]
    fn trivial_contradiction() {
        let mut a = arena();
        let x = a.var("x", Width::W16);
        let c5 = a.cu(5, Width::W16);
        let eq = a.eq(x, c5);
        assert_eq!(
            Solver::check(&a, &[(eq, true), (eq, false)]),
            SatResult::Unsat
        );
        assert_eq!(Solver::check(&a, &[(eq, true)]), SatResult::Sat);
    }

    #[test]
    fn interval_contradiction_via_width() {
        let mut a = arena();
        let x = a.var("x", Width::W8); // x <= 255
        let c300 = a.cu(300, Width::W16);
        let zx = a.zext(x, Width::W16);
        let gt = a.lt(c300, zx); // 300 < x : impossible for u8
        assert_eq!(Solver::check(&a, &[(gt, true)]), SatResult::Unsat);
    }

    #[test]
    fn difference_chain_contradiction() {
        // x < y, y < z, z < x is a negative cycle.
        let mut a = arena();
        let x = a.var("x", Width::W32);
        let y = a.var("y", Width::W32);
        let z = a.var("z", Width::W32);
        let p1 = a.lt(x, y);
        let p2 = a.lt(y, z);
        let p3 = a.lt(z, x);
        assert_eq!(
            Solver::check(&a, &[(p1, true), (p2, true), (p3, true)]),
            SatResult::Unsat
        );
        assert_eq!(Solver::check(&a, &[(p1, true), (p2, true)]), SatResult::Sat);
    }

    #[test]
    fn offset_reasoning() {
        // x + 10 <= 20 entails x <= 10; so x = 15 contradicts.
        let mut a = arena();
        let x = a.var("x", Width::W16);
        let c10 = a.cu(10, Width::W16);
        let c20 = a.cu(20, Width::W16);
        let c15 = a.cu(15, Width::W16);
        let sum = a.add(x, c10);
        let le = a.le(sum, c20);
        let eq15 = a.eq(x, c15);
        assert_eq!(
            Solver::check(&a, &[(le, true), (eq15, true)]),
            SatResult::Unsat
        );
        let c5 = a.cu(5, Width::W16);
        let eq5 = a.eq(x, c5);
        assert_eq!(
            Solver::check(&a, &[(le, true), (eq5, true)]),
            SatResult::Sat
        );
    }

    #[test]
    fn entailment_of_overflow_obligation() {
        // The NAT's port-arithmetic proof: idx <= 65534 entails
        // 1 + idx <= 65535 (start_port = 1, capacity = 65535).
        let mut a = arena();
        let idx = a.var("idx", Width::W16);
        let c65534 = a.cu(65534, Width::W16);
        let bound = a.le(idx, c65534);
        let one = a.cu(1, Width::W16);
        let sum = a.add(one, idx);
        let c65535 = a.cu(65535, Width::W16);
        let ob = a.le(sum, c65535);
        assert!(Solver::entails(&a, &[(bound, true)], ob));
        // Without the bound the obligation is not provable.
        assert!(!Solver::entails(&a, &[], ob));
    }

    #[test]
    fn mask_and_shift_bounds() {
        // (v & 0x0f) << 2 <= 60 always holds — the IHL obligation.
        let mut a = arena();
        let v = a.var("version_ihl", Width::W8);
        let nib = a.and_mask(v, 0x0f);
        let ihl = a.shl(nib, 2);
        let z = a.zext(ihl, Width::W16);
        let c60 = a.cu(60, Width::W16);
        let ob = a.le(z, c60);
        assert!(Solver::entails(&a, &[], ob));
        let c59 = a.cu(59, Width::W16);
        let too_tight = a.le(z, c59);
        assert!(
            !Solver::entails(&a, &[], too_tight),
            "59 is not a valid bound"
        );
    }

    #[test]
    fn guarded_subtraction_is_nonnegative() {
        // (texp <= now) entails now - texp >= 0 — the expiry threshold
        // obligation.
        let mut a = arena();
        let now = a.var("now", Width::W64);
        let texp = a.cu(2_000_000_000, Width::W64);
        let guard = a.le(texp, now);
        let diff = a.sub(now, texp);
        let zero = a.cu(0, Width::W64);
        let ob = a.le(zero, diff);
        assert!(Solver::entails(&a, &[(guard, true)], ob));
    }

    #[test]
    fn sub_upper_bound_via_structural_edge() {
        // total_len - ihl <= total_len when ihl >= 0 (trivially true
        // for unsigned) — needed to bound l4_avail.
        let mut a = arena();
        let total = a.var("total_len", Width::W16);
        let v = a.var("vihl", Width::W8);
        let nib = a.and_mask(v, 0x0f);
        let ihl8 = a.shl(nib, 2);
        let ihl = a.zext(ihl8, Width::W16);
        let avail = a.sub(total, ihl);
        let ob = a.le(avail, total);
        assert!(Solver::entails(&a, &[], ob));
    }

    #[test]
    fn disequality_refutes_forced_equality() {
        let mut a = arena();
        let x = a.var("x", Width::W16);
        let y = a.var("y", Width::W16);
        let le1 = a.le(x, y);
        let le2 = a.le(y, x);
        let eq = a.eq(x, y);
        assert_eq!(
            Solver::check(&a, &[(le1, true), (le2, true), (eq, false)]),
            SatResult::Unsat,
            "x <= y <= x forces x == y"
        );
        assert_eq!(
            Solver::check(&a, &[(le1, true), (eq, false)]),
            SatResult::Sat,
            "one-sided bound does not force equality"
        );
    }

    #[test]
    fn case_split_over_disjunction() {
        let mut a = arena();
        let x = a.var("x", Width::W8);
        let c1 = a.cu(1, Width::W8);
        let c2 = a.cu(2, Width::W8);
        let e1 = a.eq(x, c1);
        let e2 = a.eq(x, c2);
        let disj = a.or(e1, e2);
        // (x=1 || x=2) && x!=1 && x!=2 : unsat
        assert_eq!(
            Solver::check(&a, &[(disj, true), (e1, false), (e2, false)]),
            SatResult::Unsat
        );
        // (x=1 || x=2) && x!=1 : sat (x=2)
        assert_eq!(
            Solver::check(&a, &[(disj, true), (e1, false)]),
            SatResult::Sat
        );
        // !(x=1 && x=2) : sat trivially
        let conj = a.and(e1, e2);
        assert_eq!(Solver::check(&a, &[(conj, false)]), SatResult::Sat);
        // x=1 && x=2 : unsat
        assert_eq!(Solver::check(&a, &[(conj, true)]), SatResult::Unsat);
    }

    #[test]
    fn frame_length_ladder_is_consistent() {
        // A real path prefix from the NAT: frame_len >= 34,
        // total_len <= frame_len - 14, ihl <= total_len,
        // l4_avail = total_len - ihl >= 20.
        let mut a = arena();
        let frame = a.var("frame_len", Width::W16);
        let total = a.var("total_len", Width::W16);
        let v = a.var("vihl", Width::W8);
        let c34 = a.cu(34, Width::W16);
        let c14 = a.cu(14, Width::W16);
        let c20 = a.cu(20, Width::W16);
        let nib = a.and_mask(v, 0x0f);
        let ihl8 = a.shl(nib, 2);
        let ihl = a.zext(ihl8, Width::W16);
        let budget = a.sub(frame, c14);
        let l4 = a.sub(total, ihl);

        let g1 = a.le(c34, frame);
        let g2 = a.le(total, budget);
        let g3 = a.le(ihl, total);
        let g4 = a.le(c20, l4);
        let path = [(g1, true), (g2, true), (g3, true), (g4, true)];
        assert_eq!(
            Solver::check(&a, &path),
            SatResult::Sat,
            "the forwarding path is feasible"
        );

        // And it entails total_len >= 20 (sanity the validator uses).
        let ob = a.le(c20, total);
        assert!(Solver::entails(&a, &path, ob));
    }
}
