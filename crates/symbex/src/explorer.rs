//! Exhaustive path enumeration by decision-steered re-execution.
//!
//! KLEE forks its interpreter at every symbolic branch. We achieve the
//! same enumeration for *compiled* Rust by re-running the code under
//! test once per path: all nondeterminism in the stateless NF flows
//! through its environment (branches, receive outcomes, model forks),
//! and the environment consults a [`Steering`] at every such point.
//! The steering replays a recorded decision prefix, then extends it —
//! scheduling every unexplored (and feasible) sibling for a later run.
//! When the work queue empties, every feasible decision sequence has
//! been executed exactly once.
//!
//! Feasibility is decided by the caller (the symbolic environment asks
//! the solver whether a branch direction is consistent with the path
//! constraints), so infeasible paths are pruned exactly as KLEE prunes
//! them — this is what makes the enumeration *fully precise* in the
//! paper's sense (§5.2.1: "it enumerates only feasible paths ... and
//! does not miss any feasible paths").

/// One recorded decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Which alternative was taken.
    pub chosen: u8,
    /// How many alternatives existed at this point.
    pub arity: u8,
}

/// Decision steering for one execution. See module docs.
#[derive(Debug)]
pub struct Steering {
    prefix: Vec<Decision>,
    cursor: usize,
    taken: Vec<Decision>,
    scheduled: Vec<Vec<Decision>>,
}

impl Steering {
    fn new(prefix: Vec<Decision>) -> Steering {
        Steering {
            prefix,
            cursor: 0,
            taken: Vec::new(),
            scheduled: Vec::new(),
        }
    }

    /// The decisions this execution actually took (the path id).
    pub fn taken(&self) -> &[Decision] {
        &self.taken
    }

    /// Ask for a decision among `arity` alternatives; `feasible(i)`
    /// reports whether alternative `i` is worth exploring (consistent
    /// with the path constraints). Returns the chosen alternative.
    ///
    /// Panics if no alternative is feasible — the environment must
    /// guarantee at least one (an infeasible *state* cannot be reached
    /// by construction, since every earlier decision was feasible).
    pub fn decide(&mut self, arity: u8, mut feasible: impl FnMut(u8) -> bool) -> u8 {
        assert!(arity >= 1);
        if self.cursor < self.prefix.len() {
            let d = self.prefix[self.cursor];
            assert_eq!(d.arity, arity, "replay divergence: decision arity changed");
            self.cursor += 1;
            self.taken.push(d);
            return d.chosen;
        }
        let mut choice: Option<u8> = None;
        for i in 0..arity {
            if !feasible(i) {
                continue;
            }
            match choice {
                None => choice = Some(i),
                Some(_) => {
                    // Schedule the sibling: everything taken so far,
                    // then alternative i.
                    let mut sibling = self.taken.clone();
                    sibling.push(Decision { chosen: i, arity });
                    self.scheduled.push(sibling);
                }
            }
        }
        let chosen = choice.expect("at least one alternative must be feasible");
        self.taken.push(Decision { chosen, arity });
        chosen
    }

    /// Binary convenience over [`Steering::decide`]: returns `true` for
    /// alternative 0. `f_true`/`f_false` are the feasibility of the
    /// true/false directions.
    pub fn decide_bool(&mut self, f_true: bool, f_false: bool) -> bool {
        self.decide(2, |i| if i == 0 { f_true } else { f_false }) == 0
    }
}

/// Statistics from an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Feasible paths executed.
    pub paths: usize,
    /// Total decisions taken across all paths.
    pub decisions: usize,
}

/// Run `body` once per feasible path. `body` receives the steering and
/// returns the per-path result (typically a symbolic trace). Paths are
/// explored depth-first; the bound `max_paths` is a safety valve
/// against runaway exploration (returns an error if exceeded).
pub fn explore<R>(
    max_paths: usize,
    mut body: impl FnMut(&mut Steering) -> R,
) -> Result<(Vec<R>, ExploreStats), String> {
    let mut queue: Vec<Vec<Decision>> = vec![Vec::new()];
    let mut results = Vec::new();
    let mut decisions = 0usize;
    while let Some(prefix) = queue.pop() {
        if results.len() >= max_paths {
            return Err(format!("exploration exceeded {max_paths} paths"));
        }
        let mut steer = Steering::new(prefix);
        let r = body(&mut steer);
        decisions += steer.taken.len();
        results.push(r);
        queue.append(&mut steer.scheduled);
    }
    let stats = ExploreStats {
        paths: results.len(),
        decisions,
    };
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_binary_paths() {
        // Three free binary decisions: exactly 8 paths, each distinct.
        let (paths, stats) = explore(100, |s| {
            let a = s.decide_bool(true, true);
            let b = s.decide_bool(true, true);
            let c = s.decide_bool(true, true);
            (a, b, c)
        })
        .unwrap();
        assert_eq!(stats.paths, 8);
        let unique: std::collections::HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), 8, "all paths distinct");
    }

    #[test]
    fn respects_feasibility_pruning() {
        // The second decision is only free when the first was true.
        let (paths, _) = explore(100, |s| {
            let a = s.decide_bool(true, true);
            let b = if a {
                s.decide_bool(true, true)
            } else {
                s.decide_bool(true, false) // false side infeasible
            };
            (a, b)
        })
        .unwrap();
        let set: std::collections::HashSet<_> = paths.into_iter().collect();
        assert_eq!(
            set,
            [(true, true), (true, false), (false, true)]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn nary_decisions() {
        let (paths, stats) = explore(100, |s| {
            let k = s.decide(3, |_| true);
            let b = s.decide_bool(true, true);
            (k, b)
        })
        .unwrap();
        assert_eq!(stats.paths, 6);
        assert_eq!(paths.len(), 6);
    }

    #[test]
    fn variable_depth_paths() {
        // Early exit on one side: 1 + 4 paths.
        let (paths, _) = explore(100, |s| {
            if !s.decide_bool(true, true) {
                return 0usize;
            }
            let mut n = 1;
            if s.decide_bool(true, true) {
                n += 1;
            }
            if s.decide_bool(true, true) {
                n += 1;
            }
            n
        })
        .unwrap();
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn path_bound_trips() {
        let err = explore(4, |s| {
            let _ = s.decide_bool(true, true);
            let _ = s.decide_bool(true, true);
            let _ = s.decide_bool(true, true);
        });
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn all_infeasible_panics() {
        let _ = explore(10, |s| {
            s.decide(2, |_| false);
        });
    }
}
