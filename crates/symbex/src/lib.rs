//! # vig-symbex — the exhaustive symbolic execution engine (KLEE analog)
//!
//! The paper verifies VigNAT's stateless code by *exhaustive symbolic
//! execution* (ESE, §5.2.1): a modified KLEE explores every feasible
//! path of the loop body with libVig replaced by symbolic models,
//! proving low-level properties along each path and emitting symbolic
//! traces for the Validator. This crate is the engine underneath our
//! equivalent:
//!
//! * [`term`] — symbolic values: a hash-consed term arena over 8/16/32/
//!   64-bit bit-vectors and propositions. The NAT's `Domain` operations
//!   build these terms instead of computing machine integers.
//! * [`solver`] — a bounded decision procedure for the constraint shapes
//!   NF code produces: interval reasoning through the bit-twiddling
//!   operators, difference-bound constraints between terms, disequality
//!   tracking, and DPLL-style case splitting over the boolean structure.
//!   **Sound for UNSAT**: when it answers [`solver::SatResult::Unsat`]
//!   the formula truly has no model, so every proof obligation it
//!   discharges really holds. When it cannot decide, it answers `Sat`
//!   (possibly-satisfiable), which can only make verification *fail*,
//!   never pass wrongly — the same one-sided guarantee the paper claims
//!   for Vigor ("Vigor will not produce an incorrect proof, but it may
//!   fail to prove a property that actually holds", §7).
//! * [`explorer`] — exhaustive path enumeration by decision-steered
//!   re-execution: the engine runs the *actual* stateless code over and
//!   over, each time steering the environment's fork points down a new
//!   decision prefix until every feasible prefix has been explored.
//!   This replaces KLEE's fork-the-interpreter with fork-the-schedule,
//!   which is exactly as exhaustive for code whose only nondeterminism
//!   comes through the environment interface — which the `NatEnv`
//!   boundary guarantees by construction.
//!
//! The engine is NF-agnostic: the NAT-specific environment, the libVig
//! models and the trace vocabulary live in `vig-validator`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod solver;
pub mod term;

pub use explorer::{explore, Decision, Steering};
pub use solver::{SatResult, Solver};
pub use term::{Prop, TermArena, TermId, Width};
