//! The network-flow abstraction (`flow.h`): key hashing and the
//! [`DmapValue`] instance that makes [`vig_packet::Flow`] storable in the
//! libVig flow table.
//!
//! libVig keys carry their own hash functions (`map_key_hash` in the C
//! code). The hash below mixes all five tuple fields through a
//! SplitMix64-style finalizer — cheap, and uniform enough that the flow
//! table's probe chains stay short at the occupancies the paper
//! evaluates (Fig. 12 shows latency flat in table occupancy, which
//! requires exactly this property).

use crate::dmap::DmapValue;
use crate::map::MapKey;
use vig_packet::{ExtKey, Flow, FlowId};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl MapKey for FlowId {
    fn key_hash(&self) -> u64 {
        let a = (u64::from(self.src_ip.raw()) << 32) | u64::from(self.dst_ip.raw());
        let b = (u64::from(self.src_port) << 32)
            | (u64::from(self.dst_port) << 16)
            | u64::from(self.proto.number());
        mix(mix(a) ^ b)
    }
}

impl MapKey for ExtKey {
    fn key_hash(&self) -> u64 {
        let a = (u64::from(self.dst_ip.raw()) << 16) | u64::from(self.ext_port);
        let b = (u64::from(self.ext_ip.raw()) << 24)
            | (u64::from(self.dst_port) << 8)
            | u64::from(self.proto.number());
        mix(mix(a) ^ b)
    }
}

impl DmapValue for Flow {
    type KeyA = FlowId;
    type KeyB = ExtKey;

    fn key_a(&self) -> FlowId {
        self.int_key
    }

    fn key_b(&self) -> ExtKey {
        self.ext_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmap::DoubleMap;
    use proptest::prelude::*;
    use vig_packet::{Ip4, Proto};

    fn fid(host: u8, port: u16) -> FlowId {
        FlowId {
            src_ip: Ip4::new(192, 168, 0, host),
            src_port: port,
            dst_ip: Ip4::new(1, 2, 3, 4),
            dst_port: 80,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn flow_table_double_lookup() {
        let mut table: DoubleMap<Flow> = DoubleMap::new(16);
        let flow = Flow {
            int_key: fid(10, 4242),
            ext_ip: Ip4::new(10, 1, 0, 1),
            ext_port: 60001,
        };
        table.put(3, flow).unwrap();
        assert_eq!(table.get_by_a(&fid(10, 4242)), Some(3));
        assert_eq!(table.get_by_b(&flow.ext_key()), Some(3));
        assert_eq!(table.get(3).unwrap().ext_port, 60001);
    }

    #[test]
    fn distinct_tuples_have_distinct_hashes_mostly() {
        // Not a formal property (collisions are legal), but a smoke test
        // that the mixer actually differentiates nearby tuples.
        use std::collections::HashSet;
        let mut hashes = HashSet::new();
        for host in 0..32u8 {
            for port in 1000..1032u16 {
                hashes.insert(fid(host, port).key_hash());
            }
        }
        assert!(
            hashes.len() > 1000,
            "hash must separate nearby tuples: {}",
            hashes.len()
        );
    }

    proptest! {
        /// Hash is a pure function of the key.
        #[test]
        fn hash_is_deterministic(host in any::<u8>(), port in any::<u16>()) {
            let k = fid(host, port);
            prop_assert_eq!(k.key_hash(), fid(host, port).key_hash());
        }

        /// The derived external key commutes with storage: inserting a
        /// flow and looking it up by its ext_key always finds it.
        #[test]
        fn ext_key_lookup_total(host in any::<u8>(), port in any::<u16>(), ext in any::<u16>()) {
            let mut table: DoubleMap<Flow> = DoubleMap::new(4);
            let flow = Flow { int_key: fid(host, port), ext_ip: Ip4::new(10, 1, 0, 1), ext_port: ext };
            table.put(0, flow).unwrap();
            prop_assert_eq!(table.get_by_b(&flow.ext_key()), Some(0));
        }
    }
}
