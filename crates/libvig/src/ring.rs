//! The bounded FIFO ring (`ring.c`) — the data structure of the paper's
//! §3 worked example.
//!
//! The paper uses the ring to illustrate the whole Vigor methodology:
//! the discard-protocol NF pushes received packets (minus port-9 ones)
//! and pops them for transmission, and the proof shows a popped packet
//! can never have target port 9 because (a) the NF never pushes one and
//! (b) the ring never alters stored values. Property (b) is exactly the
//! `ring_pop_front` contract of the paper's Fig. 3, reproduced by
//! [`CheckedRing`] — including the *constraint preservation* clause: a
//! predicate that holds for every pushed element holds for every popped
//! element.

use crate::Full;
use core::fmt::Debug;
use std::collections::VecDeque;

/// Preallocated FIFO ring buffer.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    cells: Vec<Option<T>>,
    begin: usize,
    len: usize,
}

impl<T> Ring<T> {
    /// Preallocate a ring holding up to `capacity` items (paper Fig. 1:
    /// `ring_create(CAP)`).
    pub fn new(capacity: usize) -> Ring<T> {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Ring {
            cells: (0..capacity).map(|_| None).collect(),
            begin: 0,
            len: 0,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Item count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `ring_empty`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `ring_full`.
    pub fn is_full(&self) -> bool {
        self.len == self.cells.len()
    }

    /// `ring_push_back`. Returns [`Full`] when at capacity (the paper's
    /// NF guards with `!ring_full(r)`, making fullness unreachable; the
    /// Rust interface stays total).
    pub fn push_back(&mut self, item: T) -> Result<(), Full> {
        if self.is_full() {
            return Err(Full);
        }
        let idx = (self.begin + self.len) % self.cells.len();
        self.cells[idx] = Some(item);
        self.len += 1;
        Ok(())
    }

    /// `ring_pop_front`. Returns `None` when empty.
    ///
    /// Contract (paper Fig. 3): removes and returns exactly the head
    /// element; the rest of the ring is unchanged; any predicate that
    /// held of the element when pushed still holds (values are never
    /// altered in storage).
    pub fn pop_front(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let item = self.cells[self.begin].take();
        debug_assert!(item.is_some(), "occupied head cell must hold a value");
        self.begin = (self.begin + 1) % self.cells.len();
        self.len -= 1;
        item
    }

    /// Peek at the head without removing it.
    pub fn front(&self) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.cells[self.begin].as_ref()
        }
    }

    /// Iterate front-to-back. For contracts/tests.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).filter_map(move |i| self.cells[(self.begin + i) % self.cells.len()].as_ref())
    }
}

/// Implementation + `VecDeque` model in lockstep, with an optional
/// element **constraint** checked on every push and pop — the executable
/// analog of the `packet_constraints_fp` abstract predicate threading
/// through the paper's Fig. 2–3 contracts.
pub struct CheckedRing<T: Clone + PartialEq + Debug> {
    imp: Ring<T>,
    model: VecDeque<T>,
    constraint: fn(&T) -> bool,
}

impl<T: Clone + PartialEq + Debug> CheckedRing<T> {
    /// Ring with no element constraint.
    pub fn new(capacity: usize) -> Self {
        Self::with_constraint(capacity, |_| true)
    }

    /// Ring whose elements must all satisfy `constraint` (checked as a
    /// push precondition and re-asserted as a pop postcondition).
    pub fn with_constraint(capacity: usize, constraint: fn(&T) -> bool) -> Self {
        CheckedRing {
            imp: Ring::new(capacity),
            model: VecDeque::new(),
            constraint,
        }
    }

    /// Contract-checked push.
    pub fn push_back(&mut self, item: T) -> Result<(), Full> {
        assert!(
            (self.constraint)(&item),
            "ring.push_back precondition: element violates ring constraint"
        );
        let r = self.imp.push_back(item.clone());
        match r {
            Ok(()) => {
                assert!(
                    self.model.len() < self.imp.capacity(),
                    "impl accepted push when full"
                );
                self.model.push_back(item);
            }
            Err(Full) => assert_eq!(self.model.len(), self.imp.capacity(), "Full below capacity"),
        }
        self.check_equiv();
        r
    }

    /// Contract-checked pop: result equals the model head **and**
    /// satisfies the ring constraint (the paper's target property).
    pub fn pop_front(&mut self) -> Option<T> {
        let got = self.imp.pop_front();
        let spec = self.model.pop_front();
        assert_eq!(got, spec, "ring.pop_front diverged from model");
        if let Some(v) = &got {
            assert!(
                (self.constraint)(v),
                "ring.pop_front postcondition: popped element violates constraint"
            );
        }
        self.check_equiv();
        got
    }

    /// Contract-checked emptiness query.
    pub fn is_empty(&self) -> bool {
        let got = self.imp.is_empty();
        assert_eq!(got, self.model.is_empty());
        got
    }

    /// Contract-checked fullness query.
    pub fn is_full(&self) -> bool {
        let got = self.imp.is_full();
        assert_eq!(got, self.model.len() == self.imp.capacity());
        got
    }

    /// Full refinement check: identical contents in order, and the
    /// constraint invariant holds of every stored element.
    pub fn check_equiv(&self) {
        let imp: Vec<&T> = self.imp.iter().collect();
        let spec: Vec<&T> = self.model.iter().collect();
        assert_eq!(imp, spec, "ring contents diverged");
        for v in &imp {
            assert!(
                (self.constraint)(v),
                "stored element violates ring invariant"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order() {
        let mut r = CheckedRing::new(4);
        for i in 0..4 {
            r.push_back(i).unwrap();
        }
        assert!(r.is_full());
        for i in 0..4 {
            assert_eq!(r.pop_front(), Some(i));
        }
        assert!(r.is_empty());
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let mut r = CheckedRing::new(3);
        for round in 0..10u32 {
            r.push_back(round * 2).unwrap();
            r.push_back(round * 2 + 1).unwrap();
            assert_eq!(r.pop_front(), Some(round * 2));
            assert_eq!(r.pop_front(), Some(round * 2 + 1));
        }
    }

    #[test]
    fn push_full_rejected() {
        let mut r = CheckedRing::new(2);
        r.push_back(1).unwrap();
        r.push_back(2).unwrap();
        assert_eq!(r.push_back(3), Err(Full));
        assert_eq!(
            r.pop_front(),
            Some(1),
            "failed push must not disturb contents"
        );
    }

    /// The paper's §3 target property, in miniature: with the discard
    /// constraint installed, no popped "packet" ever has port 9.
    #[test]
    fn discard_constraint_preserved() {
        let not_port_9 = |p: &u16| *p != 9;
        let mut r = CheckedRing::with_constraint(8, not_port_9);
        for port in [1u16, 80, 443, 8080] {
            r.push_back(port).unwrap();
        }
        while let Some(p) = r.pop_front() {
            assert_ne!(p, 9);
        }
    }

    #[test]
    #[should_panic(expected = "violates ring constraint")]
    fn constraint_violating_push_is_caught() {
        let mut r = CheckedRing::with_constraint(4, |p: &u16| *p != 9);
        let _ = r.push_back(9);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut r = Ring::new(2);
        assert_eq!(r.front(), None);
        r.push_back(7).unwrap();
        assert_eq!(r.front(), Some(&7));
        assert_eq!(r.len(), 1);
    }

    proptest! {
        /// Arbitrary interleavings of pushes and pops match VecDeque.
        #[test]
        fn random_ops_refine_model(ops in proptest::collection::vec(any::<Option<u8>>(), 0..200)) {
            let mut r = CheckedRing::new(5);
            for op in ops {
                match op {
                    Some(v) => { let _ = r.push_back(v); }
                    None => { r.pop_front(); }
                }
            }
        }
    }
}
