//! The verified open-addressing hash map.
//!
//! This is the algorithm of Vigor's `map.c`, the structure whose formal
//! contract the paper contrasts with DPDK's separate-chaining table (§6):
//! linear probing over preallocated arrays, with a **probe-chain counter**
//! per slot (`chains[i]` = how many stored keys' probe paths *traverse*
//! slot `i` without stopping there). The counters replace tombstones:
//! a miss can stop at the first slot that is both free and traversed by
//! no chain, and deletion just decrements the counters along the probe
//! path. The price — and the effect the paper's Fig. 12 shows at ~full
//! occupancy — is that probe sequences grow as the table fills.
//!
//! The map stores `usize` values ("indices" in Vigor parlance) because
//! libVig's composite structures ([`crate::dmap::DoubleMap`]) keep the
//! real values in a separate preallocated slot array and use maps purely
//! as key → slot directories.
//!
//! ## Memory layout (cache-conscious)
//!
//! The table is a **single allocation** of `Slot`s: hash, value, key
//! and metadata for one probe position live side by side, so one probe
//! step touches one cache line instead of scattering across five
//! parallel arrays (the original layout paid up to five cache misses per
//! step). The busybit is folded into the high bit of the chain-counter
//! word (`Slot::meta`); the remaining 31 bits count traversing probe
//! chains, which bounds chains at 2^31 — far above any reachable
//! occupancy (capacity itself is bounded by memory long before).
//!
//! ## Batched lookups
//!
//! [`Map::get_with_hash`] / [`Map::put_with_hash`] accept a caller-
//! computed hash so composite structures can hash a key **once** and
//! reuse it across several probes (VigNAT: lookup miss → insert reuses
//! the same `FlowId` hash). [`Map::get_batch_with_hash`] resolves a
//! burst of keys in two passes — a hash/first-touch pass that issues all
//! the initial slot loads back to back (memory-level parallelism: the
//! misses overlap instead of serializing), then a probe pass that mostly
//! hits warm lines. This is what makes the burst path's flow-table cost
//! sublinear in burst size on large tables.
//!
//! ## Contract summary (paper Fig. 8 analog)
//!
//! Writing `m` for the abstract association list [`AbstractMap`]:
//!
//! * `get(k)`  — requires nothing; ensures result = `m.get(k)` and `m`
//!   unchanged.
//! * `put(k,v)` — requires `m.get(k) == None` and `m.len() < cap`;
//!   ensures post-state `m + [(k,v)]`.
//! * `erase(k)` — requires `m.get(k) != None`; ensures post-state
//!   `m - k` and result = old `m.get(k)`.
//! * `size()` — ensures result = `m.len()`.
//!
//! [`CheckedMap`] enforces exactly these, running the implementation and
//! the model in lockstep (refinement shadowing, property P3).

use crate::Full;

/// Key requirements for the verified map: equality plus a caller-supplied
/// hash. libVig keys carry their own hash function (`map_key_hash` in the
/// C code) instead of going through a generic hasher framework, so probing
/// behaviour is fully determined by the key type.
pub trait MapKey: Eq + Clone {
    /// A well-distributed 64-bit hash of the key.
    fn key_hash(&self) -> u64;
}

impl MapKey for u64 {
    fn key_hash(&self) -> u64 {
        // SplitMix64: cheap and well distributed, good enough for tests
        // and for port-indexed keys.
        let mut z = self.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl MapKey for u32 {
    fn key_hash(&self) -> u64 {
        (u64::from(*self)).key_hash()
    }
}

impl MapKey for u16 {
    fn key_hash(&self) -> u64 {
        (u64::from(*self)).key_hash()
    }
}

/// One probe position of the table: everything a probe step needs, in
/// one place (one cache line for NAT-sized keys). The busybit lives in
/// the high bit of `meta`; the low 31 bits are the probe-chain counter.
#[derive(Debug, Clone)]
struct Slot<K> {
    /// Cached hash of the stored key (valid only when busy).
    key_hash: u64,
    /// Stored value (valid only when busy).
    value: usize,
    /// Busybit (bit 31) | probe-chain counter (bits 0..31).
    meta: u32,
    /// The stored key, inline in the slot allocation.
    key: Option<K>,
}

/// Busybit mask within [`Slot::meta`].
const BUSY: u32 = 1 << 31;
/// Chain-counter mask within [`Slot::meta`].
const CHAIN: u32 = BUSY - 1;

impl<K> Slot<K> {
    #[inline(always)]
    fn busy(&self) -> bool {
        self.meta & BUSY != 0
    }

    #[inline(always)]
    fn chain(&self) -> u32 {
        self.meta & CHAIN
    }
}

/// The verified open-addressing map. See the module docs for the
/// algorithm, contract, and memory layout.
#[derive(Debug, Clone)]
pub struct Map<K: MapKey> {
    slots: Vec<Slot<K>>,
    size: usize,
    capacity: usize,
}

impl<K: MapKey> Map<K> {
    /// Preallocate a map for up to `capacity` entries. `capacity` must be
    /// non-zero (libVig asserts the same in `map_allocate`).
    pub fn new(capacity: usize) -> Map<K> {
        assert!(capacity > 0, "map capacity must be non-zero");
        assert!(
            capacity <= CHAIN as usize,
            "map capacity must fit the 31-bit chain counters"
        );
        Map {
            slots: (0..capacity)
                .map(|_| Slot {
                    key_hash: 0,
                    value: 0,
                    meta: 0,
                    key: None,
                })
                .collect(),
            size: 0,
            capacity,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when no more entries fit.
    pub fn is_full(&self) -> bool {
        self.size == self.capacity
    }

    fn start_of(&self, hash: u64) -> usize {
        (hash % self.capacity as u64) as usize
    }

    /// Look up `key`, returning the stored value if present.
    ///
    /// Probes linearly from the hash slot; stops early at a slot that is
    /// free and traversed by no probe chain (`!busy && chain == 0`),
    /// which is what makes misses cheap at low occupancy and expensive
    /// near fullness.
    pub fn get(&self, key: &K) -> Option<usize> {
        self.get_with_hash(key, key.key_hash())
    }

    /// [`Map::get`] with a caller-computed hash.
    ///
    /// Contract precondition (checked by [`CheckedMap`], assumed here):
    /// `hash == key.key_hash()`. Callers that already hold the hash
    /// (hash memoization across a lookup→insert pair, or a batch pass)
    /// skip recomputing it.
    pub fn get_with_hash(&self, key: &K, hash: u64) -> Option<usize> {
        debug_assert_eq!(hash, key.key_hash(), "get_with_hash: stale hash");
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            let slot = &self.slots[idx];
            if slot.busy() {
                if slot.key_hash == hash {
                    if let Some(k) = &slot.key {
                        if k == key {
                            return Some(slot.value);
                        }
                    }
                }
            } else if slot.chain() == 0 {
                return None;
            }
        }
        None
    }

    /// Resolve a burst of lookups, writing one result per query into
    /// `out` (appended in query order).
    ///
    /// Two passes: the first touches every query's **start slot**
    /// back-to-back, so on tables larger than cache the initial-probe
    /// misses overlap in the memory system instead of serializing one
    /// lookup at a time; the second finishes each probe on the warmed
    /// lines. Results are exactly `get_with_hash` per query (the
    /// contract layer checks this). `hashes[i]` must equal
    /// `keys[i].key_hash()`.
    pub fn get_batch_with_hash(&self, keys: &[K], hashes: &[u64], out: &mut Vec<Option<usize>>) {
        assert_eq!(
            keys.len(),
            hashes.len(),
            "get_batch: keys/hashes length mismatch"
        );
        // Pass 1: first-touch every start slot (group prefetch). The
        // fold prevents the loads from being optimized away.
        let mut touch = 0u64;
        for &h in hashes {
            let slot = &self.slots[self.start_of(h)];
            touch = touch.wrapping_add(u64::from(slot.meta));
        }
        std::hint::black_box(touch);
        // Pass 2: complete each probe.
        out.reserve(keys.len());
        for (k, &h) in keys.iter().zip(hashes) {
            out.push(self.get_with_hash(k, h));
        }
    }

    /// Number of slots a lookup for `key` would inspect. Exposed for the
    /// occupancy microbenchmarks (DESIGN.md §7); not part of the libVig
    /// interface.
    pub fn probe_len(&self, key: &K) -> usize {
        let hash = key.key_hash();
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            let slot = &self.slots[idx];
            if slot.busy() {
                if slot.key_hash == hash {
                    if let Some(k) = &slot.key {
                        if k == key {
                            return i + 1;
                        }
                    }
                }
            } else if slot.chain() == 0 {
                return i + 1;
            }
        }
        self.capacity
    }

    /// Insert `key -> value`.
    ///
    /// Contract precondition (checked by [`CheckedMap`], assumed here, as
    /// in the C code): `key` is not already present. Returns [`Full`] when
    /// the size is at capacity — fullness is interface behaviour, not a
    /// contract violation.
    pub fn put(&mut self, key: K, value: usize) -> Result<(), Full> {
        let hash = key.key_hash();
        self.put_with_hash(key, hash, value)
    }

    /// [`Map::put`] with a caller-computed hash (same contract, plus
    /// `hash == key.key_hash()`).
    pub fn put_with_hash(&mut self, key: K, hash: u64, value: usize) -> Result<(), Full> {
        debug_assert_eq!(hash, key.key_hash(), "put_with_hash: stale hash");
        if self.size == self.capacity {
            return Err(Full);
        }
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            if !self.slots[idx].busy() {
                let slot = &mut self.slots[idx];
                slot.meta |= BUSY;
                slot.key = Some(key);
                slot.key_hash = hash;
                slot.value = value;
                self.size += 1;
                // Mark the traversed prefix of the probe path.
                for j in 0..i {
                    let t = (start + j) % self.capacity;
                    self.slots[t].meta += 1; // chain bits; cannot carry into BUSY
                }
                return Ok(());
            }
        }
        // Unreachable: size < capacity guarantees a free slot on the path.
        Err(Full)
    }

    /// Remove `key`, returning its value.
    ///
    /// Contract precondition: `key` is present. Returns `None` (and
    /// changes nothing) if it is not — the defensive behaviour keeps the
    /// raw structure total, and the contract layer flags the misuse.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let hash = key.key_hash();
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            let slot = &self.slots[idx];
            if slot.busy() {
                if slot.key_hash == hash {
                    let matches = matches!(&slot.key, Some(k) if k == key);
                    if matches {
                        let slot = &mut self.slots[idx];
                        slot.meta &= !BUSY;
                        slot.key = None;
                        let v = slot.value;
                        self.size -= 1;
                        for j in 0..i {
                            let t = (start + j) % self.capacity;
                            debug_assert!(self.slots[t].chain() > 0, "chain underflow");
                            if self.slots[t].chain() > 0 {
                                self.slots[t].meta -= 1;
                            }
                        }
                        return Some(v);
                    }
                }
            } else if slot.chain() == 0 {
                return None;
            }
        }
        None
    }

    /// Iterate over `(key, value)` pairs in slot order. Not part of the
    /// libVig interface (the NF never scans the table); used by the
    /// contract layer and tests.
    pub fn iter(&self) -> impl Iterator<Item = (&K, usize)> + '_ {
        self.slots.iter().filter_map(|s| {
            if s.busy() {
                s.key.as_ref().map(|k| (k, s.value))
            } else {
                None
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Abstract model ("fixpoint" spec) and contracts
// ---------------------------------------------------------------------------

/// The abstract map: an association list, the direct analog of the
/// `mapp`/`mem`/`map_put_fp` fixpoints in Vigor's VeriFast spec. All
/// operations are obviously correct by inspection; the implementation is
/// verified *against* this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractMap<K: Eq + Clone> {
    entries: Vec<(K, usize)>,
    capacity: usize,
}

impl<K: Eq + Clone> AbstractMap<K> {
    /// Empty abstract map with the given capacity bound.
    pub fn new(capacity: usize) -> Self {
        AbstractMap {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Lookup by key.
    pub fn get(&self, key: &K) -> Option<usize> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add an entry. Caller must have established `!contains(key)` and
    /// `len() < capacity` (the `put` contract precondition).
    pub fn put(&mut self, key: K, value: usize) {
        debug_assert!(!self.contains(&key));
        debug_assert!(self.entries.len() < self.capacity);
        self.entries.push((key, value));
    }

    /// Remove an entry, returning its value.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// The entries as an unordered set (for equivalence checks).
    pub fn entries(&self) -> &[(K, usize)] {
        &self.entries
    }
}

/// The implementation and the abstract model in lockstep, asserting the
/// operation contracts on every call. This is the executable form of the
/// paper's P3 proof obligation for the map.
#[derive(Debug, Clone)]
pub struct CheckedMap<K: MapKey> {
    imp: Map<K>,
    model: AbstractMap<K>,
}

impl<K: MapKey + core::fmt::Debug> CheckedMap<K> {
    /// Preallocate, like [`Map::new`].
    pub fn new(capacity: usize) -> Self {
        CheckedMap {
            imp: Map::new(capacity),
            model: AbstractMap::new(capacity),
        }
    }

    /// Contract-checked `get`.
    pub fn get(&self, key: &K) -> Option<usize> {
        let got = self.imp.get(key);
        let spec = self.model.get(key);
        assert_eq!(got, spec, "map.get({key:?}) diverged from abstract model");
        got
    }

    /// Contract-checked `get_with_hash`: additionally asserts the
    /// memoized-hash precondition `hash == key.key_hash()`.
    pub fn get_with_hash(&self, key: &K, hash: u64) -> Option<usize> {
        assert_eq!(
            hash,
            key.key_hash(),
            "get_with_hash precondition: stale hash for {key:?}"
        );
        let got = self.imp.get_with_hash(key, hash);
        let spec = self.model.get(key);
        assert_eq!(
            got, spec,
            "map.get_with_hash({key:?}) diverged from abstract model"
        );
        got
    }

    /// Contract-checked batch lookup: the batch must equal element-wise
    /// `get` against the abstract model (batching is a pure optimization
    /// and may not change any result).
    pub fn get_batch_with_hash(&self, keys: &[K], hashes: &[u64]) -> Vec<Option<usize>> {
        for (k, &h) in keys.iter().zip(hashes) {
            assert_eq!(
                h,
                k.key_hash(),
                "get_batch precondition: stale hash for {k:?}"
            );
        }
        let mut got = Vec::new();
        self.imp.get_batch_with_hash(keys, hashes, &mut got);
        assert_eq!(got.len(), keys.len(), "batch result count mismatch");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                got[i],
                self.model.get(k),
                "map.get_batch_with_hash diverged from abstract model at query {i} ({k:?})"
            );
        }
        got
    }

    /// Contract-checked `put_with_hash` (the `put` contract plus the
    /// memoized-hash precondition).
    pub fn put_with_hash(&mut self, key: K, hash: u64, value: usize) -> Result<(), Full> {
        assert_eq!(
            hash,
            key.key_hash(),
            "put_with_hash precondition: stale hash for {key:?}"
        );
        self.put(key, value)
    }

    /// Contract-checked `put`. Panics on contract violation (duplicate
    /// key); propagates [`Full`].
    pub fn put(&mut self, key: K, value: usize) -> Result<(), Full> {
        let dup = self.model.contains(&key);
        assert!(
            !dup,
            "map.put precondition violated: key {key:?} already present"
        );
        let r = self.imp.put(key.clone(), value);
        match r {
            Ok(()) => {
                assert!(
                    self.model.len() < self.model.capacity(),
                    "impl accepted put into a full map"
                );
                self.model.put(key, value);
            }
            Err(Full) => {
                assert_eq!(
                    self.model.len(),
                    self.model.capacity(),
                    "impl reported Full below capacity"
                );
            }
        }
        self.check_equiv();
        r
    }

    /// Contract-checked `erase`.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let spec_had = self.model.get(key);
        let got = self.imp.erase(key);
        let spec = self.model.erase(key);
        assert_eq!(got, spec, "map.erase({key:?}) diverged from abstract model");
        assert_eq!(got, spec_had);
        self.check_equiv();
        got
    }

    /// Contract-checked `size`.
    pub fn size(&self) -> usize {
        let s = self.imp.size();
        assert_eq!(s, self.model.len(), "map.size diverged from abstract model");
        s
    }

    /// Access the underlying implementation (read-only).
    pub fn raw(&self) -> &Map<K> {
        &self.imp
    }

    /// Full-state refinement check: the implementation's visible entries
    /// equal the abstract map's, as sets.
    pub fn check_equiv(&self) {
        assert_eq!(self.imp.size(), self.model.len(), "size mismatch");
        let mut imp_entries: Vec<(K, usize)> =
            self.imp.iter().map(|(k, v)| (k.clone(), v)).collect();
        for (k, v) in self.model.entries() {
            let pos = imp_entries
                .iter()
                .position(|(ik, iv)| ik == k && iv == v)
                .unwrap_or_else(|| panic!("model entry missing from impl"));
            imp_entries.swap_remove(pos);
        }
        assert!(imp_entries.is_empty(), "impl has entries the model lacks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A key type whose hash collides in a controlled way, to stress the
    /// chain counters. `group` determines the hash; `id` distinguishes
    /// keys within the group.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct CollidingKey {
        group: u8,
        id: u32,
    }

    impl MapKey for CollidingKey {
        fn key_hash(&self) -> u64 {
            u64::from(self.group) // all keys in a group collide perfectly
        }
    }

    #[test]
    fn put_get_erase_roundtrip() {
        let mut m = CheckedMap::<u64>::new(8);
        m.put(10, 100).unwrap();
        m.put(20, 200).unwrap();
        assert_eq!(m.get(&10), Some(100));
        assert_eq!(m.get(&20), Some(200));
        assert_eq!(m.get(&30), None);
        assert_eq!(m.erase(&10), Some(100));
        assert_eq!(m.get(&10), None);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut m = CheckedMap::<u64>::new(4);
        for k in 0..4 {
            m.put(k, k as usize).unwrap();
        }
        assert_eq!(m.put(99, 9), Err(Full));
        assert_eq!(m.size(), 4);
        // every key still reachable at 100% occupancy
        for k in 0..4u64 {
            assert_eq!(m.get(&k), Some(k as usize));
        }
    }

    #[test]
    #[should_panic(expected = "precondition violated")]
    fn duplicate_put_violates_contract() {
        let mut m = CheckedMap::<u64>::new(4);
        m.put(1, 1).unwrap();
        let _ = m.put(1, 2);
    }

    #[test]
    fn erase_missing_is_noop_in_raw_map() {
        let mut m = Map::<u64>::new(4);
        m.put(1, 1).unwrap();
        assert_eq!(m.erase(&2), None);
        assert_eq!(m.size(), 1);
        assert_eq!(m.get(&1), Some(1));
    }

    #[test]
    fn colliding_keys_all_found() {
        let mut m = CheckedMap::<CollidingKey>::new(8);
        for id in 0..8 {
            m.put(CollidingKey { group: 3, id }, id as usize).unwrap();
        }
        for id in 0..8 {
            assert_eq!(m.get(&CollidingKey { group: 3, id }), Some(id as usize));
        }
    }

    #[test]
    fn erase_in_middle_of_chain_keeps_later_keys_reachable() {
        // The classic open-addressing deletion hazard the chain counters
        // solve: delete a key in the middle of a probe chain, then look
        // up a key stored beyond it.
        let mut m = CheckedMap::<CollidingKey>::new(8);
        let k = |id| CollidingKey { group: 5, id };
        for id in 0..5 {
            m.put(k(id), id as usize).unwrap();
        }
        assert_eq!(m.erase(&k(1)), Some(1)); // hole in the chain
        assert_eq!(
            m.get(&k(4)),
            Some(4),
            "key past the hole must stay reachable"
        );
        assert_eq!(m.get(&k(1)), None);
        // and a fresh insert reuses the hole without breaking anything
        m.put(k(40), 40).unwrap();
        for id in [0u32, 2, 3, 4, 40] {
            assert!(m.get(&k(id)).is_some());
        }
    }

    #[test]
    fn miss_probe_is_short_when_sparse_and_long_when_full() {
        // Quantifies the paper's Fig. 12 last-point effect.
        let mut m = Map::<u64>::new(1024);
        let probe_miss = |m: &Map<u64>| {
            // average probe length over many absent keys
            let total: usize = (1_000_000..1_000_256u64).map(|k| m.probe_len(&k)).sum();
            total as f64 / 256.0
        };
        for k in 0..512u64 {
            m.put(k, 0).unwrap(); // 50% occupancy
        }
        let half = probe_miss(&m);
        for k in 512..1016u64 {
            m.put(k, 0).unwrap(); // ~99% occupancy
        }
        let full = probe_miss(&m);
        assert!(
            full > 4.0 * half,
            "probe length must grow sharply near fullness (half={half}, full={full})"
        );
    }

    #[test]
    fn hashed_variants_match_plain_ones() {
        let mut m = CheckedMap::<u64>::new(16);
        for k in 0..10u64 {
            m.put_with_hash(k, k.key_hash(), k as usize).unwrap();
        }
        for k in 0..12u64 {
            assert_eq!(m.get_with_hash(&k, k.key_hash()), m.get(&k));
        }
    }

    #[test]
    #[should_panic(expected = "stale hash")]
    fn stale_hash_violates_contract() {
        let m = CheckedMap::<u64>::new(4);
        let _ = m.get_with_hash(&1, 2u64.key_hash());
    }

    #[test]
    fn batch_lookup_equals_sequential() {
        let mut m = CheckedMap::<u64>::new(64);
        for k in 0..40u64 {
            m.put(k, (k * 3) as usize).unwrap();
        }
        // mix of hits and misses, including duplicates
        let queries: Vec<u64> = (0..60u64).chain([5, 5, 39]).collect();
        let hashes: Vec<u64> = queries.iter().map(|k| k.key_hash()).collect();
        let batch = m.get_batch_with_hash(&queries, &hashes);
        for (i, k) in queries.iter().enumerate() {
            assert_eq!(batch[i], m.get(k));
        }
    }

    #[test]
    fn batch_lookup_with_collisions() {
        let mut m = CheckedMap::<CollidingKey>::new(16);
        let k = |id| CollidingKey { group: 2, id };
        for id in 0..8 {
            m.put(k(id), id as usize).unwrap();
        }
        m.erase(&k(3)); // hole in the chain
        let queries: Vec<CollidingKey> = (0..10).map(k).collect();
        let hashes: Vec<u64> = queries.iter().map(|q| q.key_hash()).collect();
        let batch = m.get_batch_with_hash(&queries, &hashes);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], m.get(q), "query {i} diverged");
        }
    }

    #[test]
    fn wraparound_probing_works() {
        // Force a probe path that wraps past the end of the array.
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct TailKey(u32);
        impl MapKey for TailKey {
            fn key_hash(&self) -> u64 {
                7 // last slot of capacity 8
            }
        }
        let mut m = CheckedMap::<TailKey>::new(8);
        for id in 0..4 {
            m.put(TailKey(id), id as usize).unwrap();
        }
        for id in 0..4 {
            assert_eq!(m.get(&TailKey(id)), Some(id as usize));
        }
        assert_eq!(m.erase(&TailKey(0)), Some(0));
        assert_eq!(m.get(&TailKey(3)), Some(3));
    }

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, usize),
        Get(u8),
        Erase(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<usize>()).prop_map(|(k, v)| Op::Put(k % 16, v)),
            any::<u8>().prop_map(|k| Op::Get(k % 16)),
            any::<u8>().prop_map(|k| Op::Erase(k % 16)),
        ]
    }

    proptest! {
        /// Random op sequences never diverge from the abstract model.
        /// (Contract-violating ops are filtered to their legal variants.)
        #[test]
        fn random_ops_refine_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut m = CheckedMap::<u64>::new(8);
            for op in ops {
                match op {
                    Op::Put(k, v) => {
                        let k = u64::from(k);
                        if m.get(&k).is_none() {
                            let _ = m.put(k, v);
                        }
                    }
                    Op::Get(k) => { m.get(&u64::from(k)); }
                    Op::Erase(k) => {
                        let k = u64::from(k);
                        if m.get(&k).is_some() {
                            m.erase(&k);
                        }
                    }
                }
                m.check_equiv();
            }
        }

        /// probe_len(get-hit) is always within capacity and >= 1.
        #[test]
        fn probe_len_bounds(keys in proptest::collection::hash_set(any::<u64>(), 0..32)) {
            let mut m = Map::<u64>::new(64);
            for &k in &keys {
                m.put(k, 1).unwrap();
            }
            for &k in &keys {
                let p = m.probe_len(&k);
                prop_assert!((1..=64).contains(&p));
            }
        }
    }
}
