//! The verified open-addressing hash map.
//!
//! This is the algorithm of Vigor's `map.c`, the structure whose formal
//! contract the paper contrasts with DPDK's separate-chaining table (§6):
//! linear probing over preallocated arrays, with a **probe-chain counter**
//! per slot (`chains[i]` = how many stored keys' probe paths *traverse*
//! slot `i` without stopping there). The counters replace tombstones:
//! a miss can stop at the first slot that is both free and traversed by
//! no chain, and deletion just decrements the counters along the probe
//! path. The price — and the effect the paper's Fig. 12 shows at ~full
//! occupancy — is that probe sequences grow as the table fills.
//!
//! The map stores `usize` values ("indices" in Vigor parlance) because
//! libVig's composite structures ([`crate::dmap::DoubleMap`]) keep the
//! real values in a separate preallocated slot array and use maps purely
//! as key → slot directories.
//!
//! ## Memory layout (cache-conscious)
//!
//! The table is a **single allocation** of `Slot`s: hash, value, key
//! and metadata for one probe position live side by side, so one probe
//! step touches one cache line instead of scattering across five
//! parallel arrays (the original layout paid up to five cache misses per
//! step). The busybit is folded into the high bit of the chain-counter
//! word (`Slot::meta`); the remaining 31 bits count traversing probe
//! chains, which bounds chains at 2^31 — far above any reachable
//! occupancy (capacity itself is bounded by memory long before).
//!
//! ## Tag-group directory (SWAR probing)
//!
//! Alongside (not inside) the slot array lives a compact **control
//! directory**: one `u64` word per group of eight consecutive slots,
//! each byte packing a busy bit (bit 7) and a 7-bit **tag** — the top
//! seven bits of the stored key's hash (bits the probe start
//! `hash % capacity` barely consumes). A probe step first scans a whole
//! group with SWAR bit tricks — XOR against the broadcast tag, detect
//! zero bytes, mask by busy bits — and only dereferences slots whose
//! control byte matches (candidate hits) or is free (possible chain
//! stop). Up to eight "load slot, compare" steps collapse into one u64
//! load; busy slots holding *other* keys are skipped without touching
//! their cache lines at all, which is exactly the cost that dominated
//! near-full-table misses (paper Fig. 12, last point). The scheme is
//! the portable-SWAR form of Swiss-table metadata probing (the
//! `hashbrown` design), with one twist: a free byte is not a terminator
//! by itself — the slot's probe-chain counter decides, as ever, whether
//! a miss may stop there.
//!
//! The scalar probe survives as `*_scalar` reference functions; the
//! differential suites (module tests, `libvig::exhaustive`,
//! `tests/tag_probe_equivalence.rs`) keep the tag-probed operations
//! byte-for-byte equivalent to both the scalar path and the abstract
//! model, and [`Map::check_tag_coherence`] asserts the control
//! directory is exactly the busy-bit/tag projection of the slots.
//!
//! ## Batched lookups
//!
//! [`Map::get_with_hash`] / [`Map::put_with_hash`] accept a caller-
//! computed hash so composite structures can hash a key **once** and
//! reuse it across several probes (VigNAT: lookup miss → insert reuses
//! the same `FlowId` hash). [`Map::get_batch_with_hash`] resolves a
//! burst of keys in two passes — a hash/first-touch pass that issues all
//! the initial slot loads back to back (memory-level parallelism: the
//! misses overlap instead of serializing), then a probe pass that mostly
//! hits warm lines. This is what makes the burst path's flow-table cost
//! sublinear in burst size on large tables.
//!
//! ## Contract summary (paper Fig. 8 analog)
//!
//! Writing `m` for the abstract association list [`AbstractMap`]:
//!
//! * `get(k)`  — requires nothing; ensures result = `m.get(k)` and `m`
//!   unchanged.
//! * `put(k,v)` — requires `m.get(k) == None` and `m.len() < cap`;
//!   ensures post-state `m + [(k,v)]`.
//! * `erase(k)` — requires `m.get(k) != None`; ensures post-state
//!   `m - k` and result = old `m.get(k)`.
//! * `size()` — ensures result = `m.len()`.
//!
//! [`CheckedMap`] enforces exactly these, running the implementation and
//! the model in lockstep (refinement shadowing, property P3).

use crate::Full;

/// Key requirements for the verified map: equality plus a caller-supplied
/// hash. libVig keys carry their own hash function (`map_key_hash` in the
/// C code) instead of going through a generic hasher framework, so probing
/// behaviour is fully determined by the key type.
pub trait MapKey: Eq + Clone {
    /// A well-distributed 64-bit hash of the key.
    fn key_hash(&self) -> u64;
}

impl MapKey for u64 {
    fn key_hash(&self) -> u64 {
        // SplitMix64: cheap and well distributed, good enough for tests
        // and for port-indexed keys.
        let mut z = self.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl MapKey for u32 {
    fn key_hash(&self) -> u64 {
        (u64::from(*self)).key_hash()
    }
}

impl MapKey for u16 {
    fn key_hash(&self) -> u64 {
        (u64::from(*self)).key_hash()
    }
}

/// One probe position of the table: everything a probe step needs, in
/// one place (one cache line for NAT-sized keys). The busybit lives in
/// the high bit of `meta`; the low 31 bits are the probe-chain counter.
#[derive(Debug, Clone)]
struct Slot<K> {
    /// Cached hash of the stored key (valid only when busy).
    key_hash: u64,
    /// Stored value (valid only when busy).
    value: usize,
    /// Busybit (bit 31) | probe-chain counter (bits 0..31).
    meta: u32,
    /// The stored key, inline in the slot allocation.
    key: Option<K>,
}

/// Busybit mask within [`Slot::meta`].
const BUSY: u32 = 1 << 31;
/// Chain-counter mask within [`Slot::meta`].
const CHAIN: u32 = BUSY - 1;

/// Slots per control word: eight one-byte lanes per `u64`.
const GROUP: usize = 8;
/// `0x01` broadcast to every lane (SWAR subtrahend).
const LANE_LSB: u64 = 0x0101_0101_0101_0101;
/// `0x80` broadcast to every lane: the per-lane busy bit, and where the
/// zero-byte detector leaves its result.
const LANE_MSB: u64 = 0x8080_8080_8080_8080;
/// Busy bit within one control byte.
const CTRL_BUSY: u8 = 0x80;

/// The control byte a busy slot holding a key with hash `hash` carries:
/// busy bit | top seven hash bits. The probe start position consumes
/// `hash % capacity` (low-order entropy), so the tag draws on bits the
/// start barely touches — tag collisions between *different* hashes in
/// the same probe window are ~1/128.
#[inline(always)]
fn ctrl_byte(hash: u64) -> u8 {
    CTRL_BUSY | (hash >> 57) as u8
}

/// High-bit-per-lane mask selecting lanes `off..hi` of a group word
/// (`off < 8`, `hi <= 8`).
#[inline(always)]
fn lane_window(off: usize, hi: usize) -> u64 {
    debug_assert!(off < GROUP && hi <= GROUP);
    let above = !((1u64 << (off * 8)) - 1);
    let below = if hi == GROUP {
        u64::MAX
    } else {
        (1u64 << (hi * 8)) - 1
    };
    LANE_MSB & above & below
}

/// Lanes of `w` whose byte equals `byte`, as a high-bit-per-lane mask.
///
/// Classic SWAR zero-byte detection over `w ^ broadcast(byte)`. May
/// report a **false positive** on a lane differing from `byte` only in
/// its lowest bit when a lower lane matched (borrow propagation) — the
/// caller always confirms a candidate against the slot's full hash and
/// key, so a false positive costs one extra comparison, never wrongness.
#[inline(always)]
fn match_lanes(w: u64, byte: u8) -> u64 {
    let x = w ^ (u64::from(byte) * LANE_LSB);
    x.wrapping_sub(LANE_LSB) & !x & LANE_MSB
}

/// Lanes of `w` whose busy bit is clear (free slots), as a
/// high-bit-per-lane mask. Exact: every busy control byte has bit 7
/// set, every free byte is zero.
#[inline(always)]
fn free_lanes(w: u64) -> u64 {
    !w & LANE_MSB
}

/// Where a tag-probed walk stopped (see [`Map::probe`]). `dist` is the
/// 0-based probe distance — the scalar loop's `i` — so `dist + 1` slots
/// were inspected.
enum ProbeOutcome {
    /// The key was found in slot `idx`.
    Hit { idx: usize, dist: usize },
    /// A free slot traversed by no probe chain proves the key absent.
    MissStop { dist: usize },
    /// The whole table was scanned without a stopping condition.
    Scanned,
}

impl<K> Slot<K> {
    #[inline(always)]
    fn busy(&self) -> bool {
        self.meta & BUSY != 0
    }

    #[inline(always)]
    fn chain(&self) -> u32 {
        self.meta & CHAIN
    }
}

/// The verified open-addressing map. See the module docs for the
/// algorithm, contract, and memory layout.
#[derive(Debug, Clone)]
pub struct Map<K: MapKey> {
    slots: Vec<Slot<K>>,
    /// Control directory: one word per eight slots, one byte per slot
    /// (busy bit | 7-bit tag; zero when free). Kept beside the slot
    /// array so the verified slot layout and chain counters are
    /// untouched; lanes past `capacity` in the last word stay zero and
    /// are masked out of every scan.
    tags: Vec<u64>,
    size: usize,
    capacity: usize,
}

impl<K: MapKey> Map<K> {
    /// Preallocate a map for up to `capacity` entries. `capacity` must be
    /// non-zero (libVig asserts the same in `map_allocate`).
    pub fn new(capacity: usize) -> Map<K> {
        assert!(capacity > 0, "map capacity must be non-zero");
        assert!(
            capacity <= CHAIN as usize,
            "map capacity must fit the 31-bit chain counters"
        );
        Map {
            slots: (0..capacity)
                .map(|_| Slot {
                    key_hash: 0,
                    value: 0,
                    meta: 0,
                    key: None,
                })
                .collect(),
            tags: vec![0u64; capacity.div_ceil(GROUP)],
            size: 0,
            capacity,
        }
    }

    /// Write slot `idx`'s control byte.
    #[inline(always)]
    fn set_ctrl(&mut self, idx: usize, byte: u8) {
        let shift = (idx % GROUP) * 8;
        let w = &mut self.tags[idx / GROUP];
        *w = (*w & !(0xFFu64 << shift)) | (u64::from(byte) << shift);
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when no more entries fit.
    pub fn is_full(&self) -> bool {
        self.size == self.capacity
    }

    /// First slot of `hash`'s probe sequence: the home slot
    /// (`hash % capacity`) rounded **down to its 8-slot group
    /// boundary**, so every probe's first window is a full control
    /// word. An unaligned start makes the first SWAR window partial
    /// (`off > 0` lanes masked out), which wastes up to 7 of the 8
    /// lanes the first — and usually only — control-word load pays
    /// for; aligning moves the start at most `GROUP - 1` slots back,
    /// keeps it within capacity (the group base of an in-range slot is
    /// in range), and costs nothing at lookup time.
    ///
    /// Every operation — the SWAR scan, the `*_scalar` reference
    /// probes, insert's chain-prefix marking and erase's unmarking —
    /// derives its probe sequence from this one function, so SWAR ≡
    /// scalar equivalence (asserted by `CheckedMap` and the
    /// differential suites) is preserved by construction.
    fn start_of(&self, hash: u64) -> usize {
        let home = (hash % self.capacity as u64) as usize;
        home - home % GROUP
    }

    /// Look up `key`, returning the stored value if present.
    ///
    /// Probes linearly from the hash slot; stops early at a slot that is
    /// free and traversed by no probe chain (`!busy && chain == 0`),
    /// which is what makes misses cheap at low occupancy and expensive
    /// near fullness.
    pub fn get(&self, key: &K) -> Option<usize> {
        self.get_with_hash(key, key.key_hash())
    }

    /// [`Map::get`] with a caller-computed hash.
    ///
    /// Contract precondition (checked by [`CheckedMap`], assumed here):
    /// `hash == key.key_hash()`. Callers that already hold the hash
    /// (hash memoization across a lookup→insert pair, or a batch pass)
    /// skip recomputing it.
    pub fn get_with_hash(&self, key: &K, hash: u64) -> Option<usize> {
        debug_assert_eq!(hash, key.key_hash(), "get_with_hash: stale hash");
        match self.probe(key, hash) {
            ProbeOutcome::Hit { idx, .. } => Some(self.slots[idx].value),
            _ => None,
        }
    }

    /// The scalar reference probe: [`Map::get_with_hash`] exactly as the
    /// pre-tag-directory implementation computed it, one slot load and
    /// compare per probe position. Kept as the differential oracle for
    /// the SWAR group scan (the equivalence suites assert
    /// `get_with_hash == get_with_hash_scalar` on every state they
    /// construct) and as the baseline the `tag_probe_*` benchmark rows
    /// are measured against.
    pub fn get_with_hash_scalar(&self, key: &K, hash: u64) -> Option<usize> {
        debug_assert_eq!(hash, key.key_hash(), "get_with_hash_scalar: stale hash");
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            let slot = &self.slots[idx];
            if slot.busy() {
                if slot.key_hash == hash {
                    if let Some(k) = &slot.key {
                        if k == key {
                            return Some(slot.value);
                        }
                    }
                }
            } else if slot.chain() == 0 {
                return None;
            }
        }
        None
    }

    /// Walk the probe sequence's group windows from slot `start`,
    /// calling `visit` once per window with `(group base, first lane,
    /// end lane, control word, probe distance of the first lane)`
    /// until it returns `Some` or the whole table has been covered —
    /// the **single owner** of the window clamp and wraparound
    /// arithmetic every SWAR operation rides on.
    ///
    /// Each window is clamped to the table end (short last group) and
    /// to the probe budget: the second visit of the start group after
    /// a wrap covers only the lanes before `start`, so exactly
    /// `capacity` lanes are visited overall, in scalar probe order.
    #[inline]
    fn scan_windows<R>(
        &self,
        start: usize,
        mut visit: impl FnMut(usize, usize, usize, u64, usize) -> Option<R>,
    ) -> Option<R> {
        let cap = self.capacity;
        let mut pos = start;
        let mut scanned = 0usize;
        while scanned < cap {
            let base = (pos / GROUP) * GROUP;
            let off = pos - base;
            let hi = GROUP.min(cap - base).min(off + (cap - scanned));
            if let Some(r) = visit(base, off, hi, self.tags[pos / GROUP], scanned) {
                return Some(r);
            }
            scanned += hi - off;
            pos = base + hi;
            if pos >= cap {
                pos = 0;
            }
        }
        None
    }

    /// The SWAR group walk every tag-probed operation shares: follow
    /// `key`'s probe sequence from `hash`'s start slot, scanning one
    /// control word per step. Lanes whose byte matches the broadcast
    /// tag are **candidates** (confirmed against the slot's full hash
    /// and key); free lanes consult the slot's chain counter, which —
    /// exactly as in the scalar walk — decides whether a miss may stop.
    /// Busy lanes with a different tag are skipped without loading
    /// their slots. `dist` is the 0-based probe distance (the scalar
    /// loop's `i`) at the stopping position.
    #[inline]
    fn probe(&self, key: &K, hash: u64) -> ProbeOutcome {
        let tag = ctrl_byte(hash);
        self.scan_windows(self.start_of(hash), |base, off, hi, w, scanned| {
            let window = lane_window(off, hi);
            let frees = free_lanes(w) & window;
            let mut events = (match_lanes(w, tag) & window) | frees;
            while events != 0 {
                let lowest = events & events.wrapping_neg();
                let lane = (events.trailing_zeros() as usize) / 8;
                let idx = base + lane;
                let slot = &self.slots[idx];
                if frees & lowest != 0 {
                    if slot.chain() == 0 {
                        return Some(ProbeOutcome::MissStop {
                            dist: scanned + (lane - off),
                        });
                    }
                } else if slot.key_hash == hash {
                    if let Some(k) = &slot.key {
                        if k == key {
                            return Some(ProbeOutcome::Hit {
                                idx,
                                dist: scanned + (lane - off),
                            });
                        }
                    }
                }
                events &= events - 1;
            }
            None
        })
        .unwrap_or(ProbeOutcome::Scanned)
    }

    /// Resolve a burst of lookups, writing one result per query into
    /// `out` (appended in query order).
    ///
    /// Two passes: the first touches every query's **start slot**
    /// back-to-back, so on tables larger than cache the initial-probe
    /// misses overlap in the memory system instead of serializing one
    /// lookup at a time; the second finishes each probe on the warmed
    /// lines. Results are exactly `get_with_hash` per query (the
    /// contract layer checks this). `hashes[i]` must equal
    /// `keys[i].key_hash()`.
    pub fn get_batch_with_hash(&self, keys: &[K], hashes: &[u64], out: &mut Vec<Option<usize>>) {
        assert_eq!(
            keys.len(),
            hashes.len(),
            "get_batch: keys/hashes length mismatch"
        );
        // Pass 1: first-touch every start position's control word
        // (group prefetch). With the tag directory a probe's first load
        // is the control word, not the slot — eight slots of metadata
        // per line-resident u64 — so warming these is what overlaps the
        // batch's initial misses. The fold prevents the loads from
        // being optimized away.
        let mut touch = 0u64;
        for &h in hashes {
            touch = touch.wrapping_add(self.tags[self.start_of(h) / GROUP]);
        }
        std::hint::black_box(touch);
        // Pass 2: complete each probe.
        out.reserve(keys.len());
        for (k, &h) in keys.iter().zip(hashes) {
            out.push(self.get_with_hash(k, h));
        }
    }

    /// Number of slots a lookup for `key` would inspect. Exposed for the
    /// occupancy microbenchmarks (DESIGN.md §7); not part of the libVig
    /// interface. Tag filtering changes how many slots a probe *loads*,
    /// never how many positions it traverses, so this is identical to
    /// [`Map::probe_len_scalar`] (asserted by the differential suites).
    pub fn probe_len(&self, key: &K) -> usize {
        match self.probe(key, key.key_hash()) {
            ProbeOutcome::Hit { dist, .. } | ProbeOutcome::MissStop { dist } => dist + 1,
            ProbeOutcome::Scanned => self.capacity,
        }
    }

    /// Scalar reference for [`Map::probe_len`] (see
    /// [`Map::get_with_hash_scalar`] for why the scalar walk is kept).
    pub fn probe_len_scalar(&self, key: &K) -> usize {
        let hash = key.key_hash();
        let start = self.start_of(hash);
        for i in 0..self.capacity {
            let idx = (start + i) % self.capacity;
            let slot = &self.slots[idx];
            if slot.busy() {
                if slot.key_hash == hash {
                    if let Some(k) = &slot.key {
                        if k == key {
                            return i + 1;
                        }
                    }
                }
            } else if slot.chain() == 0 {
                return i + 1;
            }
        }
        self.capacity
    }

    /// Insert `key -> value`.
    ///
    /// Contract precondition (checked by [`CheckedMap`], assumed here, as
    /// in the C code): `key` is not already present. Returns [`Full`] when
    /// the size is at capacity — fullness is interface behaviour, not a
    /// contract violation.
    pub fn put(&mut self, key: K, value: usize) -> Result<(), Full> {
        let hash = key.key_hash();
        self.put_with_hash(key, hash, value)
    }

    /// [`Map::put`] with a caller-computed hash (same contract, plus
    /// `hash == key.key_hash()`).
    pub fn put_with_hash(&mut self, key: K, hash: u64, value: usize) -> Result<(), Full> {
        debug_assert_eq!(hash, key.key_hash(), "put_with_hash: stale hash");
        if self.size == self.capacity {
            return Err(Full);
        }
        let start = self.start_of(hash);
        // SWAR scan for the first free slot on the probe path: an
        // insert stops at the first non-busy position regardless of its
        // chain counter, so only the free-lane mask matters here.
        let found = self.scan_windows(start, |base, off, hi, w, scanned| {
            let frees = free_lanes(w) & lane_window(off, hi);
            (frees != 0).then(|| {
                let lane = (frees.trailing_zeros() as usize) / 8;
                (base + lane, scanned + (lane - off))
            })
        });
        let Some((idx, i)) = found else {
            // Unreachable: size < capacity guarantees a free slot.
            return Err(Full);
        };
        let slot = &mut self.slots[idx];
        slot.meta |= BUSY;
        slot.key = Some(key);
        slot.key_hash = hash;
        slot.value = value;
        self.set_ctrl(idx, ctrl_byte(hash));
        self.size += 1;
        // Mark the traversed prefix of the probe path.
        for j in 0..i {
            let t = (start + j) % self.capacity;
            self.slots[t].meta += 1; // chain bits; cannot carry into BUSY
        }
        Ok(())
    }

    /// Remove `key`, returning its value.
    ///
    /// Contract precondition: `key` is present. Returns `None` (and
    /// changes nothing) if it is not — the defensive behaviour keeps the
    /// raw structure total, and the contract layer flags the misuse.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let hash = key.key_hash();
        let ProbeOutcome::Hit { idx, dist } = self.probe(key, hash) else {
            return None;
        };
        let start = self.start_of(hash);
        let slot = &mut self.slots[idx];
        slot.meta &= !BUSY;
        slot.key = None;
        let v = slot.value;
        self.set_ctrl(idx, 0);
        self.size -= 1;
        for j in 0..dist {
            let t = (start + j) % self.capacity;
            debug_assert!(self.slots[t].chain() > 0, "chain underflow");
            if self.slots[t].chain() > 0 {
                self.slots[t].meta -= 1;
            }
        }
        Some(v)
    }

    /// Assert the control directory is exactly the busy-bit/tag
    /// projection of the slot array: every busy slot's byte is
    /// `0x80 | top7(key_hash)`, every free slot's byte is zero, and the
    /// padding lanes past `capacity` in the last word are zero (they
    /// must never register as free *or* candidate in a scan of the
    /// short last group). Test/diagnostic use; O(capacity).
    pub fn check_tag_coherence(&self) -> Result<(), String> {
        if self.tags.len() != self.capacity.div_ceil(GROUP) {
            return Err(format!(
                "control directory has {} words for capacity {}",
                self.tags.len(),
                self.capacity
            ));
        }
        for idx in 0..self.capacity {
            let byte = (self.tags[idx / GROUP] >> ((idx % GROUP) * 8)) as u8;
            let slot = &self.slots[idx];
            if slot.busy() {
                let want = ctrl_byte(slot.key_hash);
                if byte != want {
                    return Err(format!(
                        "slot {idx}: control byte {byte:#04x} != expected {want:#04x}"
                    ));
                }
                if slot.key.is_none() {
                    return Err(format!("slot {idx}: busy without a key"));
                }
            } else if byte != 0 {
                return Err(format!(
                    "slot {idx}: free slot has control byte {byte:#04x}"
                ));
            }
        }
        for pad in self.capacity..self.tags.len() * GROUP {
            let byte = (self.tags[pad / GROUP] >> ((pad % GROUP) * 8)) as u8;
            if byte != 0 {
                return Err(format!(
                    "padding lane {pad} past capacity has control byte {byte:#04x}"
                ));
            }
        }
        Ok(())
    }

    /// Iterate over `(key, value)` pairs in slot order. Not part of the
    /// libVig interface (the NF never scans the table); used by the
    /// contract layer and tests.
    pub fn iter(&self) -> impl Iterator<Item = (&K, usize)> + '_ {
        self.slots.iter().filter_map(|s| {
            if s.busy() {
                s.key.as_ref().map(|k| (k, s.value))
            } else {
                None
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Abstract model ("fixpoint" spec) and contracts
// ---------------------------------------------------------------------------

/// The abstract map: an association list, the direct analog of the
/// `mapp`/`mem`/`map_put_fp` fixpoints in Vigor's VeriFast spec. All
/// operations are obviously correct by inspection; the implementation is
/// verified *against* this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractMap<K: Eq + Clone> {
    entries: Vec<(K, usize)>,
    capacity: usize,
}

impl<K: Eq + Clone> AbstractMap<K> {
    /// Empty abstract map with the given capacity bound.
    pub fn new(capacity: usize) -> Self {
        AbstractMap {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Lookup by key.
    pub fn get(&self, key: &K) -> Option<usize> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add an entry. Caller must have established `!contains(key)` and
    /// `len() < capacity` (the `put` contract precondition).
    pub fn put(&mut self, key: K, value: usize) {
        debug_assert!(!self.contains(&key));
        debug_assert!(self.entries.len() < self.capacity);
        self.entries.push((key, value));
    }

    /// Remove an entry, returning its value.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.swap_remove(pos).1)
    }

    /// The entries as an unordered set (for equivalence checks).
    pub fn entries(&self) -> &[(K, usize)] {
        &self.entries
    }
}

/// The implementation and the abstract model in lockstep, asserting the
/// operation contracts on every call. This is the executable form of the
/// paper's P3 proof obligation for the map.
#[derive(Debug, Clone)]
pub struct CheckedMap<K: MapKey> {
    imp: Map<K>,
    model: AbstractMap<K>,
}

impl<K: MapKey + core::fmt::Debug> CheckedMap<K> {
    /// Preallocate, like [`Map::new`].
    pub fn new(capacity: usize) -> Self {
        CheckedMap {
            imp: Map::new(capacity),
            model: AbstractMap::new(capacity),
        }
    }

    /// Contract-checked `get`: checked against the abstract model *and*
    /// the scalar reference probe (the tag-group scan is a pure probe
    /// optimization, so hits and misses alike must agree byte for byte).
    pub fn get(&self, key: &K) -> Option<usize> {
        let got = self.imp.get(key);
        let spec = self.model.get(key);
        assert_eq!(got, spec, "map.get({key:?}) diverged from abstract model");
        assert_eq!(
            got,
            self.imp.get_with_hash_scalar(key, key.key_hash()),
            "map.get({key:?}) diverged from the scalar reference probe"
        );
        assert_eq!(
            self.imp.probe_len(key),
            self.imp.probe_len_scalar(key),
            "probe_len({key:?}) diverged from the scalar reference probe"
        );
        got
    }

    /// Contract-checked `get_with_hash`: additionally asserts the
    /// memoized-hash precondition `hash == key.key_hash()`.
    pub fn get_with_hash(&self, key: &K, hash: u64) -> Option<usize> {
        assert_eq!(
            hash,
            key.key_hash(),
            "get_with_hash precondition: stale hash for {key:?}"
        );
        let got = self.imp.get_with_hash(key, hash);
        let spec = self.model.get(key);
        assert_eq!(
            got, spec,
            "map.get_with_hash({key:?}) diverged from abstract model"
        );
        got
    }

    /// Contract-checked batch lookup: the batch must equal element-wise
    /// `get` against the abstract model (batching is a pure optimization
    /// and may not change any result).
    pub fn get_batch_with_hash(&self, keys: &[K], hashes: &[u64]) -> Vec<Option<usize>> {
        for (k, &h) in keys.iter().zip(hashes) {
            assert_eq!(
                h,
                k.key_hash(),
                "get_batch precondition: stale hash for {k:?}"
            );
        }
        let mut got = Vec::new();
        self.imp.get_batch_with_hash(keys, hashes, &mut got);
        assert_eq!(got.len(), keys.len(), "batch result count mismatch");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                got[i],
                self.model.get(k),
                "map.get_batch_with_hash diverged from abstract model at query {i} ({k:?})"
            );
        }
        got
    }

    /// Contract-checked `put_with_hash` (the `put` contract plus the
    /// memoized-hash precondition).
    pub fn put_with_hash(&mut self, key: K, hash: u64, value: usize) -> Result<(), Full> {
        assert_eq!(
            hash,
            key.key_hash(),
            "put_with_hash precondition: stale hash for {key:?}"
        );
        self.put(key, value)
    }

    /// Contract-checked `put`. Panics on contract violation (duplicate
    /// key); propagates [`Full`].
    pub fn put(&mut self, key: K, value: usize) -> Result<(), Full> {
        let dup = self.model.contains(&key);
        assert!(
            !dup,
            "map.put precondition violated: key {key:?} already present"
        );
        let r = self.imp.put(key.clone(), value);
        match r {
            Ok(()) => {
                assert!(
                    self.model.len() < self.model.capacity(),
                    "impl accepted put into a full map"
                );
                self.model.put(key, value);
            }
            Err(Full) => {
                assert_eq!(
                    self.model.len(),
                    self.model.capacity(),
                    "impl reported Full below capacity"
                );
            }
        }
        self.check_equiv();
        r
    }

    /// Contract-checked `erase`.
    pub fn erase(&mut self, key: &K) -> Option<usize> {
        let spec_had = self.model.get(key);
        let got = self.imp.erase(key);
        let spec = self.model.erase(key);
        assert_eq!(got, spec, "map.erase({key:?}) diverged from abstract model");
        assert_eq!(got, spec_had);
        self.check_equiv();
        got
    }

    /// Contract-checked `size`.
    pub fn size(&self) -> usize {
        let s = self.imp.size();
        assert_eq!(s, self.model.len(), "map.size diverged from abstract model");
        s
    }

    /// Access the underlying implementation (read-only).
    pub fn raw(&self) -> &Map<K> {
        &self.imp
    }

    /// Full-state refinement check: the implementation's visible entries
    /// equal the abstract map's (as sets), the control directory is
    /// coherent with the slots, and the tag-probed read path agrees
    /// with the scalar reference walk for every stored key.
    pub fn check_equiv(&self) {
        assert_eq!(self.imp.size(), self.model.len(), "size mismatch");
        self.imp
            .check_tag_coherence()
            .unwrap_or_else(|e| panic!("tag directory incoherent: {e}"));
        for (k, _) in self.model.entries() {
            let h = k.key_hash();
            assert_eq!(
                self.imp.get_with_hash(k, h),
                self.imp.get_with_hash_scalar(k, h),
                "SWAR probe diverged from scalar reference for {k:?}"
            );
            assert_eq!(
                self.imp.probe_len(k),
                self.imp.probe_len_scalar(k),
                "probe_len diverged from scalar reference for {k:?}"
            );
        }
        let mut imp_entries: Vec<(K, usize)> =
            self.imp.iter().map(|(k, v)| (k.clone(), v)).collect();
        for (k, v) in self.model.entries() {
            let pos = imp_entries
                .iter()
                .position(|(ik, iv)| ik == k && iv == v)
                .unwrap_or_else(|| panic!("model entry missing from impl"));
            imp_entries.swap_remove(pos);
        }
        assert!(imp_entries.is_empty(), "impl has entries the model lacks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A key type whose hash collides in a controlled way, to stress the
    /// chain counters. `group` determines the hash; `id` distinguishes
    /// keys within the group.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct CollidingKey {
        group: u8,
        id: u32,
    }

    impl MapKey for CollidingKey {
        fn key_hash(&self) -> u64 {
            u64::from(self.group) // all keys in a group collide perfectly
        }
    }

    #[test]
    fn put_get_erase_roundtrip() {
        let mut m = CheckedMap::<u64>::new(8);
        m.put(10, 100).unwrap();
        m.put(20, 200).unwrap();
        assert_eq!(m.get(&10), Some(100));
        assert_eq!(m.get(&20), Some(200));
        assert_eq!(m.get(&30), None);
        assert_eq!(m.erase(&10), Some(100));
        assert_eq!(m.get(&10), None);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let mut m = CheckedMap::<u64>::new(4);
        for k in 0..4 {
            m.put(k, k as usize).unwrap();
        }
        assert_eq!(m.put(99, 9), Err(Full));
        assert_eq!(m.size(), 4);
        // every key still reachable at 100% occupancy
        for k in 0..4u64 {
            assert_eq!(m.get(&k), Some(k as usize));
        }
    }

    #[test]
    #[should_panic(expected = "precondition violated")]
    fn duplicate_put_violates_contract() {
        let mut m = CheckedMap::<u64>::new(4);
        m.put(1, 1).unwrap();
        let _ = m.put(1, 2);
    }

    #[test]
    fn erase_missing_is_noop_in_raw_map() {
        let mut m = Map::<u64>::new(4);
        m.put(1, 1).unwrap();
        assert_eq!(m.erase(&2), None);
        assert_eq!(m.size(), 1);
        assert_eq!(m.get(&1), Some(1));
    }

    #[test]
    fn colliding_keys_all_found() {
        let mut m = CheckedMap::<CollidingKey>::new(8);
        for id in 0..8 {
            m.put(CollidingKey { group: 3, id }, id as usize).unwrap();
        }
        for id in 0..8 {
            assert_eq!(m.get(&CollidingKey { group: 3, id }), Some(id as usize));
        }
    }

    #[test]
    fn erase_in_middle_of_chain_keeps_later_keys_reachable() {
        // The classic open-addressing deletion hazard the chain counters
        // solve: delete a key in the middle of a probe chain, then look
        // up a key stored beyond it.
        let mut m = CheckedMap::<CollidingKey>::new(8);
        let k = |id| CollidingKey { group: 5, id };
        for id in 0..5 {
            m.put(k(id), id as usize).unwrap();
        }
        assert_eq!(m.erase(&k(1)), Some(1)); // hole in the chain
        assert_eq!(
            m.get(&k(4)),
            Some(4),
            "key past the hole must stay reachable"
        );
        assert_eq!(m.get(&k(1)), None);
        // and a fresh insert reuses the hole without breaking anything
        m.put(k(40), 40).unwrap();
        for id in [0u32, 2, 3, 4, 40] {
            assert!(m.get(&k(id)).is_some());
        }
    }

    #[test]
    fn miss_probe_is_short_when_sparse_and_long_when_full() {
        // Quantifies the paper's Fig. 12 last-point effect.
        let mut m = Map::<u64>::new(1024);
        let probe_miss = |m: &Map<u64>| {
            // average probe length over many absent keys
            let total: usize = (1_000_000..1_000_256u64).map(|k| m.probe_len(&k)).sum();
            total as f64 / 256.0
        };
        for k in 0..512u64 {
            m.put(k, 0).unwrap(); // 50% occupancy
        }
        let half = probe_miss(&m);
        for k in 512..1016u64 {
            m.put(k, 0).unwrap(); // ~99% occupancy
        }
        let full = probe_miss(&m);
        assert!(
            full > 4.0 * half,
            "probe length must grow sharply near fullness (half={half}, full={full})"
        );
    }

    #[test]
    fn hashed_variants_match_plain_ones() {
        let mut m = CheckedMap::<u64>::new(16);
        for k in 0..10u64 {
            m.put_with_hash(k, k.key_hash(), k as usize).unwrap();
        }
        for k in 0..12u64 {
            assert_eq!(m.get_with_hash(&k, k.key_hash()), m.get(&k));
        }
    }

    #[test]
    #[should_panic(expected = "stale hash")]
    fn stale_hash_violates_contract() {
        let m = CheckedMap::<u64>::new(4);
        let _ = m.get_with_hash(&1, 2u64.key_hash());
    }

    #[test]
    fn batch_lookup_equals_sequential() {
        let mut m = CheckedMap::<u64>::new(64);
        for k in 0..40u64 {
            m.put(k, (k * 3) as usize).unwrap();
        }
        // mix of hits and misses, including duplicates
        let queries: Vec<u64> = (0..60u64).chain([5, 5, 39]).collect();
        let hashes: Vec<u64> = queries.iter().map(|k| k.key_hash()).collect();
        let batch = m.get_batch_with_hash(&queries, &hashes);
        for (i, k) in queries.iter().enumerate() {
            assert_eq!(batch[i], m.get(k));
        }
    }

    #[test]
    fn batch_lookup_with_collisions() {
        let mut m = CheckedMap::<CollidingKey>::new(16);
        let k = |id| CollidingKey { group: 2, id };
        for id in 0..8 {
            m.put(k(id), id as usize).unwrap();
        }
        m.erase(&k(3)); // hole in the chain
        let queries: Vec<CollidingKey> = (0..10).map(k).collect();
        let hashes: Vec<u64> = queries.iter().map(|q| q.key_hash()).collect();
        let batch = m.get_batch_with_hash(&queries, &hashes);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], m.get(q), "query {i} diverged");
        }
    }

    #[test]
    fn wraparound_probing_works() {
        // Force a probe path that wraps past the end of the array.
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct TailKey(u32);
        impl MapKey for TailKey {
            fn key_hash(&self) -> u64 {
                7 // last slot of capacity 8
            }
        }
        let mut m = CheckedMap::<TailKey>::new(8);
        for id in 0..4 {
            m.put(TailKey(id), id as usize).unwrap();
        }
        for id in 0..4 {
            assert_eq!(m.get(&TailKey(id)), Some(id as usize));
        }
        assert_eq!(m.erase(&TailKey(0)), Some(0));
        assert_eq!(m.get(&TailKey(3)), Some(3));
    }

    /// A key carrying an arbitrary precomputed hash, so tests and
    /// strategies can place probe starts and tags adversarially while
    /// `id` keeps keys distinct (tag collisions between distinct keys,
    /// the case the SWAR candidate-confirmation step exists for).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct AdvKey {
        id: u32,
        hash: u64,
    }

    impl MapKey for AdvKey {
        fn key_hash(&self) -> u64 {
            self.hash
        }
    }

    /// A hash whose home slot is exactly `start` (`hash % cap`; the
    /// probe itself begins at that slot's group base) and whose
    /// control tag is exactly `tag`: bit 56 is set so the small
    /// mod-`cap` adjustment can never borrow into the tag bits.
    fn adv_hash(tag: u8, start: usize, cap: usize) -> u64 {
        assert!(start < cap);
        let base = (u64::from(tag & 0x7F) << 57) | (1u64 << 56);
        base - base % cap as u64 + start as u64
    }

    #[test]
    fn distinct_tags_same_start_cross_group_boundary() {
        // Capacity 10: two control words, the second a short group of
        // two lanes. All keys start at slot 8 (inside the short group)
        // with pairwise-distinct tags, so every probe must scan the
        // short group, wrap into group 0, and skip busy non-matching
        // lanes by tag alone.
        let mut m = CheckedMap::<AdvKey>::new(10);
        let key = |id: u32| AdvKey {
            id,
            hash: adv_hash(id as u8, 8, 10),
        };
        for id in 0..10u32 {
            m.put(key(id), id as usize).unwrap();
        }
        for id in 0..10u32 {
            assert_eq!(m.get(&key(id)), Some(id as usize), "full-table hit {id}");
        }
        // Erase in the middle of the wrapped chain; later keys stay
        // reachable and the hole is reusable.
        assert_eq!(m.erase(&key(3)), Some(3));
        assert_eq!(m.get(&key(9)), Some(9));
        m.put(key(30), 30).unwrap();
        assert_eq!(m.get(&key(30)), Some(30));
    }

    #[test]
    fn extreme_tags_zero_and_127_probe_correctly() {
        // Tag 0x00 gives control byte 0x80 (busy bit only) and tag 0x7F
        // gives 0xFF — the two byte values most likely to trip SWAR
        // borrow/carry edge cases.
        let mut m = CheckedMap::<AdvKey>::new(16);
        for (i, tag) in [0u8, 127, 0, 127, 1, 126].into_iter().enumerate() {
            m.put(
                AdvKey {
                    id: i as u32,
                    hash: adv_hash(tag, 5, 16),
                },
                i,
            )
            .unwrap();
        }
        for i in 0..6u32 {
            let tag = [0u8, 127, 0, 127, 1, 126][i as usize];
            assert_eq!(
                m.get(&AdvKey {
                    id: i,
                    hash: adv_hash(tag, 5, 16),
                }),
                Some(i as usize)
            );
        }
        assert_eq!(
            m.get(&AdvKey {
                id: 99,
                hash: adv_hash(64, 5, 16),
            }),
            None
        );
    }

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, usize),
        Get(u8),
        Erase(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<usize>()).prop_map(|(k, v)| Op::Put(k % 16, v)),
            any::<u8>().prop_map(|k| Op::Get(k % 16)),
            any::<u8>().prop_map(|k| Op::Erase(k % 16)),
        ]
    }

    proptest! {
        /// Random op sequences never diverge from the abstract model.
        /// (Contract-violating ops are filtered to their legal variants.)
        #[test]
        fn random_ops_refine_model(ops in proptest::collection::vec(op_strategy(), 0..200)) {
            let mut m = CheckedMap::<u64>::new(8);
            for op in ops {
                match op {
                    Op::Put(k, v) => {
                        let k = u64::from(k);
                        if m.get(&k).is_none() {
                            let _ = m.put(k, v);
                        }
                    }
                    Op::Get(k) => { m.get(&u64::from(k)); }
                    Op::Erase(k) => {
                        let k = u64::from(k);
                        if m.get(&k).is_some() {
                            m.erase(&k);
                        }
                    }
                }
                m.check_equiv();
            }
        }

        /// probe_len(get-hit) is always within capacity and >= 1.
        #[test]
        fn probe_len_bounds(keys in proptest::collection::hash_set(any::<u64>(), 0..32)) {
            let mut m = Map::<u64>::new(64);
            for &k in &keys {
                m.put(k, 1).unwrap();
            }
            for &k in &keys {
                let p = m.probe_len(&k);
                prop_assert!((1..=64).contains(&p));
            }
        }

        /// Adversarial hash distributions — every key in one tag group,
        /// tags colliding across distinct keys, probe starts pinned to
        /// the group-boundary / wraparound lanes, capacities that leave
        /// a short last group — never diverge from the abstract model
        /// or the scalar reference probe (both asserted inside
        /// [`CheckedMap`] on every op).
        #[test]
        fn adversarial_hash_distributions_refine_model(
            cap in prop_oneof![Just(9usize), Just(10), Just(16), Just(24)],
            ops in proptest::collection::vec(
                (0u8..3, 0u8..4, 0u8..4, 0u32..5),
                0..160,
            ),
        ) {
            let mut m = CheckedMap::<AdvKey>::new(cap);
            for (kind, t, s, id) in ops {
                // Heavily colliding tag pool (two choices of 0) and
                // starts pinned to the adversarial lanes: slot 0, the
                // last slot (wraparound), mid-table, and the last
                // group's first lane.
                let tag = [0u8, 0, 1, 127][t as usize];
                let start = [0usize, cap - 1, cap / 2, (cap / 8) * 8][s as usize].min(cap - 1);
                let key = AdvKey { id, hash: adv_hash(tag, start, cap) };
                match kind {
                    0 => {
                        if m.get(&key).is_none() {
                            let _ = m.put(key, id as usize);
                        }
                    }
                    1 => { m.get(&key); }
                    _ => {
                        if m.get(&key).is_some() {
                            m.erase(&key);
                        }
                    }
                }
                m.check_equiv();
            }
        }

        /// Under insert-only sequences every free slot on a probe path
        /// has chain 0 (inserts traverse only busy slots), so the miss
        /// stop and the insert position coincide and `probe_len` is
        /// monotone non-decreasing for every key — present or absent —
        /// as the table fills.
        #[test]
        fn probe_len_monotone_under_inserts(
            inserts in proptest::collection::hash_set((0u8..2, 0u8..8, 0u32..8), 1..24),
            queries in proptest::collection::vec((0u8..2, 0u8..8, 0u32..12), 1..12),
        ) {
            let cap = 17; // short last group of one lane
            let mut m = CheckedMap::<AdvKey>::new(cap);
            let mk = |(t, s, id): (u8, u8, u32)| AdvKey {
                id,
                hash: adv_hash([0, 127][t as usize], (s as usize * 3) % cap, cap),
            };
            let queries: Vec<AdvKey> = queries.into_iter().map(mk).collect();
            let mut last: Vec<usize> = queries.iter().map(|q| m.raw().probe_len(q)).collect();
            for ins in inserts {
                let key = mk(ins);
                if m.get(&key).is_some() {
                    continue;
                }
                if m.put(key, 0).is_err() {
                    break;
                }
                for (q, prev) in queries.iter().zip(last.iter_mut()) {
                    let now = m.raw().probe_len(q);
                    prop_assert!(
                        now >= *prev,
                        "probe_len shrank from {prev} to {now} under insert-only ops"
                    );
                    *prev = now;
                }
            }
        }
    }
}
