//! # libVig — verified NF data structures (Rust reproduction)
//!
//! The paper's libVig keeps **all** NF state behind a small library of
//! data structures so the stateless NF code can be verified by exhaustive
//! symbolic execution while the stateful library is proven once against
//! separation-logic contracts (property P3 in the paper's Fig. 7).
//!
//! This crate reproduces that library and its verification artifacts:
//!
//! | module | structure | paper counterpart |
//! |--------|-----------|-------------------|
//! | [`map`] | open-addressing hash map with probe-chain counters; single-allocation slot layout, `get/put_with_hash` memoized-hash ops, `get_batch_with_hash` burst probe | `map.c` / `map.h` |
//! | [`dmap`] | double-keyed map over preallocated value slots; `get_by_*_with_hash`, `put_with_hash`, batched `lookup_batch` | the flow table (`double-map.c`) |
//! | [`dchain`] | index allocator with LRU timestamp order | `double-chain.c` (expirator substrate) |
//! | [`vector`] | preallocated value vector | `vector.c` |
//! | [`ring`] | bounded FIFO ring (the paper's §3 example) | `ring.c` |
//! | [`spsc`] | lock-free bounded SPSC word ring (shard-runtime queues) | DPDK `rte_ring` (SP/SC mode) |
//! | [`batcher`] | bounded item batcher | `batcher.c` |
//! | [`port_alloc`] | standalone port allocator | port allocator |
//! | [`rss`] | RSS-style hash→shard routing + batched-probe splitter | NIC receive-side scaling |
//! | [`expirator`] | dchain+dmap glue that expires old flows | `expirator.c` |
//! | [`wheel`] | hierarchical timer wheel (O(1) expiry at any scale), proven ≡ the scan drain | Varghese–Lauck wheel behind `expirator.c`'s seam |
//! | [`time`] | time abstraction (virtual + system clocks) | `nf_time` |
//! | [`flow`] | NAT flow key hashing | `flow.h` |
//!
//! ## The verification story (P3)
//!
//! Each structure comes with:
//!
//! 1. a **pure abstract model** (`Abstract*` types) — the executable analog
//!    of the paper's separation-logic *fixpoint* definitions: association
//!    lists and ordered sequences with obvious semantics;
//! 2. an executable **contract** for every operation — a precondition over
//!    the abstract state and a postcondition relating (pre-state, inputs)
//!    to (post-state, output), mirroring the `requires`/`ensures` clauses
//!    in the paper's Fig. 8;
//! 3. a **`Checked*` wrapper** that runs the real implementation and the
//!    abstract model in lockstep, asserting the contract on every call —
//!    refinement shadowing. The batched and memoized-hash operations are
//!    covered too: `Checked*` asserts the caller-supplied hash equals
//!    the key's hash and that a batch result equals element-wise model
//!    lookups, so the fast path cannot drift from the verified
//!    semantics;
//! 4. property-based tests (long random op sequences) and
//!    **bounded-exhaustive** tests (every op sequence up to a depth on
//!    small capacities) in [`exhaustive`] — the executable analog of the
//!    VeriFast proof that the implementation refines the contracts.
//!
//! ## Design rules carried over from the paper
//!
//! * **All memory is preallocated** at construction (§5.1.1): no
//!   allocation ever happens on the packet path, which both bounds the
//!   memory footprint and keeps layout under control.
//! * Structures are **opaque** to callers: state is only reachable through
//!   the interface, so the contract describes everything a caller can
//!   observe (the "sanitary" pointer policy of §5.1.2 becomes Rust
//!   ownership, enforced by the compiler instead of the Validator).
//! * `#![forbid(unsafe_code)]`: the paper's P2 memory-safety obligations
//!   are discharged by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod dchain;
pub mod dmap;
pub mod exhaustive;
pub mod expirator;
pub mod flow;
pub mod map;
pub mod port_alloc;
pub mod ring;
pub mod rss;
pub mod spsc;
pub mod time;
pub mod vector;
pub mod wheel;

pub use batcher::Batcher;
pub use dchain::DoubleChain;
pub use dmap::{DmapValue, DoubleMap};
pub use map::{Map, MapKey};
pub use port_alloc::PortAllocator;
pub use ring::Ring;
pub use time::{Clock, SystemClock, Time, VirtualClock};
pub use vector::Vector;
pub use wheel::TimerWheel;

/// Error returned by operations whose contract precondition "capacity not
/// exhausted" does not hold. These are *not* contract violations: the NF is
/// expected to handle fullness (e.g. drop the packet), so fullness is part
/// of the interface, unlike e.g. double-insertion of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full;

impl core::fmt::Display for Full {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "structure is at capacity")
    }
}

impl std::error::Error for Full {}
