//! Bounded-exhaustive checking: the executable stand-in for the
//! VeriFast proof of P3.
//!
//! The VeriFast proof covers *all* states symbolically. We approximate
//! with the small-scope hypothesis: enumerate **every** operation
//! sequence up to a depth over small capacities and key spaces, running
//! the implementation in lockstep with its abstract model (the
//! `Checked*` wrappers panic on any divergence or contract violation).
//! Data-structure bugs overwhelmingly manifest in small scopes — e.g.
//! the open-addressing deletion bug the chain counters exist to prevent
//! shows up with 3 colliding keys and depth 5.
//!
//! The driver is generic so every structure reuses it; per-structure
//! tests live here (rather than per-module) because they are slow-ish
//! and deliberately grouped for `cargo test -p libvig exhaustive`.

/// Apply every sequence of operations from `universe` of length up to
/// `depth` (inclusive) to clones of `init`, via `apply`. Returns the
/// number of sequences executed (including the empty one).
///
/// `apply` is expected to assert its own invariants (the `Checked*`
/// wrappers do) and panic on violation.
pub fn check_all_sequences<S, O, F>(init: &S, universe: &[O], depth: usize, apply: &F) -> u64
where
    S: Clone,
    F: Fn(&mut S, &O),
{
    fn rec<S, O, F>(state: &S, universe: &[O], depth: usize, apply: &F) -> u64
    where
        S: Clone,
        F: Fn(&mut S, &O),
    {
        let mut count = 1; // the sequence ending here
        if depth == 0 {
            return count;
        }
        for op in universe {
            let mut next = state.clone();
            apply(&mut next, op);
            count += rec(&next, universe, depth - 1, apply);
        }
        count
    }
    rec(init, universe, depth, apply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::CheckedBatcher;
    use crate::dchain::CheckedChain;
    use crate::dmap::{CheckedDmap, DmapValue};
    use crate::map::{CheckedMap, MapKey};
    use crate::ring::CheckedRing;
    use crate::time::Time;

    /// Fully colliding key type: the worst case for probing logic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct CKey(u8);

    impl MapKey for CKey {
        fn key_hash(&self) -> u64 {
            0
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum MapOp {
        Put(u8),
        Get(u8),
        Erase(u8),
    }

    #[test]
    fn map_all_sequences_depth5_colliding_keys() {
        let universe: Vec<MapOp> = (0..3u8)
            .flat_map(|k| [MapOp::Put(k), MapOp::Get(k), MapOp::Erase(k)])
            .collect();
        let init = CheckedMap::<CKey>::new(2); // capacity below key count!
        let n = check_all_sequences(&init, &universe, 5, &|m, op| match *op {
            MapOp::Put(k) => {
                if m.get(&CKey(k)).is_none() {
                    let _ = m.put(CKey(k), usize::from(k));
                }
            }
            MapOp::Get(k) => {
                m.get(&CKey(k));
            }
            MapOp::Erase(k) => {
                if m.get(&CKey(k)).is_some() {
                    m.erase(&CKey(k));
                }
            }
        });
        // 9 ops, depth 5: 1 + 9 + 81 + ... + 9^5 sequences
        assert_eq!(n, (0..=5).map(|d| 9u64.pow(d)).sum::<u64>());
    }

    /// A key with an explicitly placed probe start and control tag
    /// (bit 56 set so the mod-capacity adjustment cannot borrow into
    /// the tag bits) — the exhaustive analog of the adversarial
    /// proptest strategies in `map.rs`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct PlacedKey {
        id: u8,
        hash: u64,
    }

    impl MapKey for PlacedKey {
        fn key_hash(&self) -> u64 {
            self.hash
        }
    }

    fn placed(id: u8, tag: u8, start: usize, cap: usize) -> PlacedKey {
        let base = (u64::from(tag & 0x7F) << 57) | (1u64 << 56);
        PlacedKey {
            id,
            hash: base - base % cap as u64 + start as u64,
        }
    }

    #[test]
    fn map_all_sequences_depth5_tag_groups_short_last_group() {
        // Capacity 10: two control words, the last group two lanes
        // short. The key universe pins every probe start to the short
        // group (lanes 8 and 9), so every sequence exercises the
        // partial-word mask, the group-boundary crossing, and the wrap
        // back to group 0; tags collide across distinct keys (k0/k1)
        // and differ at the same start (k2/k3), covering both SWAR
        // candidate cases exhaustively.
        const CAP: usize = 10;
        let keys = [
            placed(0, 0, 8, CAP),   // tag 0x80, short-group lane 0
            placed(1, 0, 8, CAP),   // same tag, distinct key (collision)
            placed(2, 127, 8, CAP), // tag 0xFF at the same start
            placed(3, 5, 9, CAP),   // last lane: immediate wraparound
        ];
        let universe: Vec<MapOp> = (0..4u8)
            .flat_map(|k| [MapOp::Put(k), MapOp::Get(k), MapOp::Erase(k)])
            .collect();
        let init = CheckedMap::<PlacedKey>::new(CAP);
        let n = check_all_sequences(&init, &universe, 5, &|m, op| {
            let key = |k: u8| keys[k as usize].clone();
            match *op {
                MapOp::Put(k) => {
                    if m.get(&key(k)).is_none() {
                        let _ = m.put(key(k), usize::from(k));
                    }
                }
                MapOp::Get(k) => {
                    m.get(&key(k));
                }
                MapOp::Erase(k) => {
                    if m.get(&key(k)).is_some() {
                        m.erase(&key(k));
                    }
                }
            }
        });
        assert_eq!(n, (0..=5).map(|d| 12u64.pow(d)).sum::<u64>());
    }

    #[derive(Debug, Clone, Copy)]
    enum ChainOp {
        Alloc,
        Rejuv(usize),
        Expire(u64),
        Free(usize),
    }

    #[derive(Clone)]
    struct ChainState {
        chain: CheckedChain,
        now: Time,
    }

    #[test]
    fn dchain_all_sequences_depth5() {
        let universe = [
            ChainOp::Alloc,
            ChainOp::Rejuv(0),
            ChainOp::Rejuv(1),
            ChainOp::Expire(0),
            ChainOp::Expire(3),
            ChainOp::Free(0),
            ChainOp::Free(1),
        ];
        let init = ChainState {
            chain: CheckedChain::new(2),
            now: Time::ZERO,
        };
        let n = check_all_sequences(&init, &universe, 5, &|s, op| {
            s.now = s.now.plus(1);
            match *op {
                ChainOp::Alloc => {
                    let _ = s.chain.allocate(s.now);
                }
                ChainOp::Rejuv(i) => {
                    s.chain.rejuvenate(i, s.now);
                }
                ChainOp::Expire(back) => {
                    s.chain.expire_one(s.now.minus(back));
                }
                ChainOp::Free(i) => {
                    s.chain.free_index(i);
                }
            }
        });
        assert_eq!(n, (0..=5).map(|d| 7u64.pow(d)).sum::<u64>());
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Two {
        a: u8,
        b: u8,
    }

    impl DmapValue for Two {
        type KeyA = CKey;
        type KeyB = CKey;

        fn key_a(&self) -> CKey {
            CKey(self.a)
        }
        fn key_b(&self) -> CKey {
            CKey(self.b)
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum DmapOp {
        Put(usize, u8, u8),
        Erase(usize),
        Lookup(u8),
    }

    #[test]
    fn dmap_all_sequences_depth4() {
        let universe = [
            DmapOp::Put(0, 0, 1),
            DmapOp::Put(0, 2, 3),
            DmapOp::Put(1, 0, 3),
            DmapOp::Put(1, 2, 1),
            DmapOp::Erase(0),
            DmapOp::Erase(1),
            DmapOp::Lookup(0),
            DmapOp::Lookup(2),
        ];
        let init = CheckedDmap::<Two>::new(2);
        let n = check_all_sequences(&init, &universe, 4, &|d, op| match *op {
            DmapOp::Put(i, a, b) => {
                if d.get(i).is_none()
                    && d.get_by_a(&CKey(a)).is_none()
                    && d.get_by_b(&CKey(b)).is_none()
                {
                    d.put(i, Two { a, b }).unwrap();
                }
            }
            DmapOp::Erase(i) => {
                d.erase(i);
            }
            DmapOp::Lookup(k) => {
                d.get_by_a(&CKey(k));
                d.get_by_b(&CKey(k));
            }
        });
        assert_eq!(n, (0..=4).map(|d| 8u64.pow(d)).sum::<u64>());
    }

    #[test]
    fn ring_all_sequences_depth7() {
        // CheckedRing is not Clone, so enumerate over op *logs* and
        // replay each prefix against a fresh checked ring.
        #[derive(Clone)]
        struct Log(Vec<Option<u8>>);
        let universe = [Some(0u8), Some(1), None];
        let n = check_all_sequences(&Log(vec![]), &universe, 7, &|l, op| {
            l.0.push(*op);
            // replay the whole prefix against a fresh checked ring
            let mut r = CheckedRing::<u8>::new(2);
            for o in &l.0 {
                match o {
                    Some(v) => {
                        let _ = r.push_back(*v);
                    }
                    None => {
                        r.pop_front();
                    }
                }
            }
        });
        assert_eq!(n, (0..=7).map(|d| 3u64.pow(d)).sum::<u64>());
    }

    #[test]
    fn batcher_all_sequences_depth6() {
        let universe = [Some(0u8), Some(1), None];
        let init = CheckedBatcher::<u8>::new(2);
        let n = check_all_sequences(&init, &universe, 6, &|b, op| match op {
            Some(v) => {
                let _ = b.push(*v);
            }
            None => {
                b.take_all();
            }
        });
        assert_eq!(n, (0..=6).map(|d| 3u64.pow(d)).sum::<u64>());
    }

    #[test]
    fn driver_counts_sequences() {
        // depth 2 over 2 ops: 1 + 2 + 4 = 7
        let n = check_all_sequences(&0u32, &[1u32, 2], 2, &|s, o| *s += o);
        assert_eq!(n, 7);
    }
}
