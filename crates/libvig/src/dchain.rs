//! The "double chain": libVig's index allocator with timestamp-ordered
//! expiry (Vigor's `double-chain.c`).
//!
//! The NAT allocates one slot index per flow. The double chain hands out
//! indices from a preallocated pool, remembers the last-activity time of
//! each allocated index, and can **expire the oldest index in O(1)**
//! because the allocated list is kept in least-recently-refreshed order:
//! `allocate` and `rejuvenate` both append at the tail with the current
//! time, and time is monotonic, so the head is always the stalest entry.
//!
//! ## Contract summary
//!
//! Writing the abstract state as an ordered sequence
//! `[(index, timestamp)]` (oldest first) plus a free set
//! ([`AbstractChain`]):
//!
//! * `allocate(t)` — requires `t >= every allocated timestamp` (time
//!   monotonicity); ensures: if the free set is nonempty, some free index
//!   moves to the tail of the sequence with timestamp `t`; otherwise
//!   returns `None` and nothing changes.
//! * `rejuvenate(i, t)` — requires `i` allocated and `t >=` its current
//!   stamp (and every other stamp, by monotonicity); ensures `i` moves to
//!   the tail with timestamp `t`.
//! * `expire_one(threshold)` — ensures: if the head's timestamp
//!   `<= threshold`, the head index is freed and returned; otherwise
//!   `None` and nothing changes. (Paper Fig. 6 expires
//!   `G.timestamp + Texp <= t`; callers pass
//!   `threshold = now - Texp`, see [`crate::expirator`].)
//! * `is_allocated(i)`, `timestamp_of(i)` — pure queries.

use crate::time::Time;
use crate::Full;

const NIL: usize = usize::MAX;

/// The double chain. See module docs.
#[derive(Debug, Clone)]
pub struct DoubleChain {
    /// Doubly-linked allocated list in LRU order + singly-linked free list,
    /// sharing the `next`/`prev` arrays.
    next: Vec<usize>,
    prev: Vec<usize>,
    timestamps: Vec<Time>,
    allocated: Vec<bool>,
    /// Head/tail of the allocated list (oldest / freshest).
    al_head: usize,
    al_tail: usize,
    /// Head of the free list.
    free_head: usize,
    size: usize,
    capacity: usize,
}

impl DoubleChain {
    /// Preallocate a chain handing out indices `0..capacity`.
    pub fn new(capacity: usize) -> DoubleChain {
        assert!(capacity > 0, "dchain capacity must be non-zero");
        let mut next = vec![NIL; capacity];
        for (i, n) in next.iter_mut().enumerate().take(capacity - 1) {
            *n = i + 1;
        }
        DoubleChain {
            next,
            prev: vec![NIL; capacity],
            timestamps: vec![Time::ZERO; capacity],
            allocated: vec![false; capacity],
            al_head: NIL,
            al_tail: NIL,
            free_head: 0,
            size: 0,
            capacity,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of allocated indices.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when every index is allocated.
    pub fn is_full(&self) -> bool {
        self.size == self.capacity
    }

    /// True if `index` is currently allocated. Out-of-range is `false`.
    pub fn is_allocated(&self, index: usize) -> bool {
        index < self.capacity && self.allocated[index]
    }

    /// Last-refresh time of an allocated index.
    pub fn timestamp_of(&self, index: usize) -> Option<Time> {
        if self.is_allocated(index) {
            Some(self.timestamps[index])
        } else {
            None
        }
    }

    /// Timestamp of the oldest allocated index (the expiry candidate).
    pub fn oldest_timestamp(&self) -> Option<Time> {
        if self.al_head == NIL {
            None
        } else {
            Some(self.timestamps[self.al_head])
        }
    }

    /// Allocate a fresh index stamped `time`.
    ///
    /// Contract precondition (checked by [`CheckedChain`]): `time` is not
    /// older than any allocated timestamp. Returns [`Full`] when no index
    /// is free.
    pub fn allocate(&mut self, time: Time) -> Result<usize, Full> {
        if self.free_head == NIL {
            return Err(Full);
        }
        let idx = self.free_head;
        self.free_head = self.next[idx];
        self.append_allocated(idx, time);
        self.size += 1;
        Ok(idx)
    }

    /// Refresh an allocated index's timestamp to `time`, moving it to the
    /// freshest end of the expiry order.
    ///
    /// Contract preconditions: `index` allocated; `time` monotonic.
    /// Returns `false` (and changes nothing) if `index` is not allocated.
    pub fn rejuvenate(&mut self, index: usize, time: Time) -> bool {
        if !self.is_allocated(index) {
            return false;
        }
        self.unlink_allocated(index);
        self.append_allocated(index, time);
        true
    }

    /// If the oldest allocated index has `timestamp <= threshold`, free it
    /// and return it.
    pub fn expire_one(&mut self, threshold: Time) -> Option<usize> {
        if self.al_head == NIL {
            return None;
        }
        let idx = self.al_head;
        if self.timestamps[idx] > threshold {
            return None;
        }
        self.unlink_allocated(idx);
        self.allocated[idx] = false;
        self.next[idx] = self.free_head;
        self.free_head = idx;
        self.size -= 1;
        Some(idx)
    }

    /// Free an allocated index directly (used by NFs that tear down state
    /// eagerly, e.g. on TCP RST — VigNAT itself only expires by time).
    /// Returns `false` if the index was not allocated.
    pub fn free_index(&mut self, index: usize) -> bool {
        if !self.is_allocated(index) {
            return false;
        }
        self.unlink_allocated(index);
        self.allocated[index] = false;
        self.next[index] = self.free_head;
        self.free_head = index;
        self.size -= 1;
        true
    }

    /// Allocated indices oldest-first (the expiry order). For contracts
    /// and tests; the NF never iterates.
    pub fn iter_lru(&self) -> impl Iterator<Item = (usize, Time)> + '_ {
        LruIter {
            chain: self,
            cur: self.al_head,
        }
    }

    fn append_allocated(&mut self, idx: usize, time: Time) {
        self.allocated[idx] = true;
        self.timestamps[idx] = time;
        self.next[idx] = NIL;
        self.prev[idx] = self.al_tail;
        if self.al_tail != NIL {
            self.next[self.al_tail] = idx;
        } else {
            self.al_head = idx;
        }
        self.al_tail = idx;
    }

    fn unlink_allocated(&mut self, idx: usize) {
        let (p, n) = (self.prev[idx], self.next[idx]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.al_head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.al_tail = p;
        }
        self.prev[idx] = NIL;
        self.next[idx] = NIL;
    }
}

struct LruIter<'a> {
    chain: &'a DoubleChain,
    cur: usize,
}

impl Iterator for LruIter<'_> {
    type Item = (usize, Time);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let i = self.cur;
        self.cur = self.chain.next[i];
        Some((i, self.chain.timestamps[i]))
    }
}

// ---------------------------------------------------------------------------
// Abstract model and contracts
// ---------------------------------------------------------------------------

/// Abstract double chain: allocated indices in expiry order (oldest first)
/// plus the derived free set. Analog of Vigor's `dchainp` fixpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractChain {
    /// `(index, timestamp)` oldest-first; timestamps are non-decreasing.
    seq: Vec<(usize, Time)>,
    capacity: usize,
}

impl AbstractChain {
    /// Empty chain over `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        AbstractChain {
            seq: Vec::new(),
            capacity,
        }
    }

    /// Allocated count.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Is the index allocated?
    pub fn is_allocated(&self, index: usize) -> bool {
        self.seq.iter().any(|&(i, _)| i == index)
    }

    /// Timestamp of an allocated index.
    pub fn timestamp_of(&self, index: usize) -> Option<Time> {
        self.seq.iter().find(|&&(i, _)| i == index).map(|&(_, t)| t)
    }

    /// The allocation-order sequence.
    pub fn seq(&self) -> &[(usize, Time)] {
        &self.seq
    }

    /// Greatest timestamp currently allocated (for the monotonicity
    /// precondition).
    pub fn max_timestamp(&self) -> Option<Time> {
        self.seq.last().map(|&(_, t)| t)
    }

    /// Model `allocate`: nondeterministic in which free index is chosen,
    /// so it takes the implementation's answer and validates it.
    pub fn allocate_as(&mut self, index: usize, time: Time) {
        debug_assert!(index < self.capacity);
        debug_assert!(!self.is_allocated(index));
        self.seq.push((index, time));
    }

    /// Model `rejuvenate`.
    pub fn rejuvenate(&mut self, index: usize, time: Time) {
        let pos = self
            .seq
            .iter()
            .position(|&(i, _)| i == index)
            .expect("rejuvenate of unallocated index");
        self.seq.remove(pos);
        self.seq.push((index, time));
    }

    /// Model `expire_one`.
    pub fn expire_one(&mut self, threshold: Time) -> Option<usize> {
        match self.seq.first() {
            Some(&(i, t)) if t <= threshold => {
                self.seq.remove(0);
                Some(i)
            }
            _ => None,
        }
    }

    /// Model `free_index`.
    pub fn free_index(&mut self, index: usize) -> bool {
        match self.seq.iter().position(|&(i, _)| i == index) {
            Some(pos) => {
                self.seq.remove(pos);
                true
            }
            None => false,
        }
    }
}

/// Implementation + model in lockstep with contract assertions (P3).
#[derive(Debug, Clone)]
pub struct CheckedChain {
    imp: DoubleChain,
    model: AbstractChain,
}

impl CheckedChain {
    /// Preallocate, like [`DoubleChain::new`].
    pub fn new(capacity: usize) -> Self {
        CheckedChain {
            imp: DoubleChain::new(capacity),
            model: AbstractChain::new(capacity),
        }
    }

    /// Contract-checked `allocate`.
    pub fn allocate(&mut self, time: Time) -> Result<usize, Full> {
        if let Some(mx) = self.model.max_timestamp() {
            assert!(
                time >= mx,
                "dchain.allocate precondition: time monotonicity violated"
            );
        }
        let r = self.imp.allocate(time);
        match r {
            Ok(i) => {
                assert!(i < self.imp.capacity(), "allocated index out of range");
                assert!(
                    !self.model.is_allocated(i),
                    "impl allocated an in-use index"
                );
                self.model.allocate_as(i, time);
            }
            Err(Full) => {
                assert_eq!(self.model.len(), self.imp.capacity(), "Full below capacity");
            }
        }
        self.check_equiv();
        r
    }

    /// Contract-checked `rejuvenate`.
    pub fn rejuvenate(&mut self, index: usize, time: Time) -> bool {
        let was = self.model.is_allocated(index);
        if was {
            if let Some(mx) = self.model.max_timestamp() {
                assert!(
                    time >= mx,
                    "dchain.rejuvenate precondition: time monotonicity"
                );
            }
        }
        let r = self.imp.rejuvenate(index, time);
        assert_eq!(r, was, "rejuvenate result diverged from model");
        if was {
            self.model.rejuvenate(index, time);
        }
        self.check_equiv();
        r
    }

    /// Contract-checked `expire_one`.
    pub fn expire_one(&mut self, threshold: Time) -> Option<usize> {
        let got = self.imp.expire_one(threshold);
        let spec = self.model.expire_one(threshold);
        assert_eq!(got, spec, "expire_one diverged from model");
        self.check_equiv();
        got
    }

    /// Contract-checked `free_index`.
    pub fn free_index(&mut self, index: usize) -> bool {
        let got = self.imp.free_index(index);
        let spec = self.model.free_index(index);
        assert_eq!(got, spec, "free_index diverged from model");
        self.check_equiv();
        got
    }

    /// Contract-checked allocation query.
    pub fn is_allocated(&self, index: usize) -> bool {
        let got = self.imp.is_allocated(index);
        assert_eq!(got, self.model.is_allocated(index));
        got
    }

    /// Access the underlying implementation.
    pub fn raw(&self) -> &DoubleChain {
        &self.imp
    }

    /// Full refinement check: identical LRU sequences, and the model's
    /// timestamps are non-decreasing (the LRU invariant).
    pub fn check_equiv(&self) {
        let imp_seq: Vec<(usize, Time)> = self.imp.iter_lru().collect();
        assert_eq!(imp_seq.as_slice(), self.model.seq(), "LRU order diverged");
        assert_eq!(self.imp.size(), self.model.len());
        let mut prev = Time::ZERO;
        for &(_, t) in self.model.seq() {
            assert!(
                t >= prev,
                "LRU invariant broken: timestamps must be non-decreasing"
            );
            prev = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocate_all_then_full() {
        let mut c = CheckedChain::new(3);
        let mut got = vec![
            c.allocate(Time(1)).unwrap(),
            c.allocate(Time(2)).unwrap(),
            c.allocate(Time(3)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(c.allocate(Time(4)), Err(Full));
    }

    #[test]
    fn expire_follows_lru_order() {
        let mut c = CheckedChain::new(4);
        let a = c.allocate(Time::from_secs(1)).unwrap();
        let b = c.allocate(Time::from_secs(2)).unwrap();
        let d = c.allocate(Time::from_secs(3)).unwrap();
        // threshold covers a and b but not d
        assert_eq!(c.expire_one(Time::from_secs(2)), Some(a));
        assert_eq!(c.expire_one(Time::from_secs(2)), Some(b));
        assert_eq!(c.expire_one(Time::from_secs(2)), None);
        assert!(c.is_allocated(d));
    }

    #[test]
    fn rejuvenate_rescues_from_expiry() {
        let mut c = CheckedChain::new(4);
        let a = c.allocate(Time::from_secs(1)).unwrap();
        let b = c.allocate(Time::from_secs(2)).unwrap();
        assert!(c.rejuvenate(a, Time::from_secs(10)));
        // now b is the oldest
        assert_eq!(c.expire_one(Time::from_secs(5)), Some(b));
        assert_eq!(
            c.expire_one(Time::from_secs(5)),
            None,
            "a was rejuvenated past threshold"
        );
        assert!(c.is_allocated(a));
    }

    #[test]
    fn rejuvenate_unallocated_returns_false() {
        let mut c = CheckedChain::new(2);
        assert!(!c.rejuvenate(0, Time(1)));
        assert!(!c.rejuvenate(7, Time(1))); // out of range
    }

    #[test]
    fn freed_indices_are_reallocated() {
        let mut c = CheckedChain::new(2);
        let a = c.allocate(Time(1)).unwrap();
        let b = c.allocate(Time(2)).unwrap();
        assert!(c.free_index(a));
        let a2 = c.allocate(Time(3)).unwrap();
        assert_eq!(a2, a, "freed index must be reusable");
        assert!(c.is_allocated(b));
        assert_eq!(c.raw().size(), 2);
    }

    #[test]
    fn expire_exact_threshold_boundary() {
        // Fig. 6: expire iff timestamp + Texp <= now, i.e. ts <= threshold.
        let mut c = CheckedChain::new(2);
        c.allocate(Time(100)).unwrap();
        assert_eq!(c.expire_one(Time(99)), None, "ts > threshold survives");
        assert!(c.expire_one(Time(100)).is_some(), "ts == threshold expires");
    }

    #[test]
    fn timestamp_queries() {
        let mut c = CheckedChain::new(2);
        let a = c.allocate(Time(5)).unwrap();
        assert_eq!(c.raw().timestamp_of(a), Some(Time(5)));
        assert_eq!(c.raw().timestamp_of(1 - a), None);
        assert_eq!(c.raw().oldest_timestamp(), Some(Time(5)));
    }

    #[derive(Debug, Clone)]
    enum Op {
        Allocate,
        Rejuvenate(usize),
        ExpireOne(u64),
        Free(usize),
    }

    fn op_strategy(cap: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Allocate),
            (0..cap).prop_map(Op::Rejuvenate),
            (0u64..16).prop_map(Op::ExpireOne),
            (0..cap).prop_map(Op::Free),
        ]
    }

    proptest! {
        /// Random op sequences with a monotone clock refine the model.
        #[test]
        fn random_ops_refine_model(ops in proptest::collection::vec(op_strategy(5), 0..200)) {
            let mut c = CheckedChain::new(5);
            let mut now = Time::ZERO;
            for op in ops {
                now = now.plus(1); // strictly monotone clock
                match op {
                    Op::Allocate => { let _ = c.allocate(now); }
                    Op::Rejuvenate(i) => { c.rejuvenate(i, now); }
                    Op::ExpireOne(back) => { c.expire_one(now.minus(back)); }
                    Op::Free(i) => { c.free_index(i); }
                }
            }
        }

        /// After expiring exhaustively at threshold T, every surviving
        /// timestamp is > T (the paper's expire_flows postcondition).
        #[test]
        fn exhaustive_expiry_leaves_only_fresh(
            stamps in proptest::collection::vec(1u64..100, 1..20),
            thr in 0u64..100,
        ) {
            let mut c = DoubleChain::new(32);
            let mut now = Time::ZERO;
            for s in &stamps {
                now = Time(now.0.max(*s)); // keep monotone by sorting input
            }
            let mut sorted = stamps.clone();
            sorted.sort_unstable();
            for s in &sorted {
                c.allocate(Time(*s)).unwrap();
            }
            while c.expire_one(Time(thr)).is_some() {}
            for (_, t) in c.iter_lru() {
                prop_assert!(t > Time(thr));
            }
            let expected_survivors = sorted.iter().filter(|&&s| s > thr).count();
            prop_assert_eq!(c.size(), expected_survivors);
        }
    }
}
