//! The double-keyed map — libVig's flow table (`double-map.c`).
//!
//! A NAT must find the same flow record two ways: by the internal
//! 5-tuple for outbound packets and by the external key for return
//! packets. `DoubleMap` stores values in preallocated slots indexed
//! `0..capacity` and maintains two [`crate::map::Map`] directories, one
//! per key. The keys are **derived from the value** (via [`DmapValue`]),
//! never stored independently, so the two directories cannot disagree
//! about which value a key belongs to.
//!
//! Slot indices come from outside — VigNAT allocates them from a
//! [`crate::dchain::DoubleChain`] so that slot lifetime is tied to flow
//! expiry; index `i` also encodes the allocated external port
//! (`port = start_port + i`), which is how the real VigNAT guarantees
//! port uniqueness without a separate allocator.
//!
//! ## Contract summary
//!
//! With abstract state a partial map `slots: index -> value`
//! ([`AbstractDmap`]) where all stored values have pairwise-distinct
//! A-keys and pairwise-distinct B-keys:
//!
//! * `get_by_a(ka)` — ensures result is the unique `i` with
//!   `slots[i].key_a() == ka`, or `None`.
//! * `get_by_b(kb)` — symmetric.
//! * `put(i, v)` — requires slot `i` empty, `v.key_a()` fresh among
//!   A-keys, `v.key_b()` fresh among B-keys; ensures `slots[i] = v`.
//! * `erase(i)` — requires slot `i` occupied; ensures the slot is empty
//!   and both directory entries are gone; returns the old value.
//! * `get(i)` — pure query.

use crate::map::{AbstractMap, Map, MapKey};
use crate::Full;

/// A value storable in a [`DoubleMap`]: exposes its two keys.
///
/// The key-extraction functions must be pure: the same value always
/// yields the same keys. (In the C original this is the `vk1`/`vk2`
/// ghost-map argument pair; in Rust it is enforced by taking `&self`.)
pub trait DmapValue {
    /// First key type (VigNAT: the internal 5-tuple).
    type KeyA: MapKey + core::fmt::Debug;
    /// Second key type (VigNAT: the external key).
    type KeyB: MapKey + core::fmt::Debug;

    /// Extract the first key.
    fn key_a(&self) -> Self::KeyA;
    /// Extract the second key.
    fn key_b(&self) -> Self::KeyB;
}

/// The double-keyed map. See module docs.
#[derive(Debug, Clone)]
pub struct DoubleMap<V: DmapValue> {
    map_a: Map<V::KeyA>,
    map_b: Map<V::KeyB>,
    slots: Vec<Option<V>>,
    size: usize,
}

impl<V: DmapValue + Clone> DoubleMap<V> {
    /// Preallocate `capacity` value slots and both directories.
    ///
    /// The key directories get 1/16 headroom over the slot count, so
    /// even a full table keeps directory load at ~94%, bounding the
    /// open-addressing probe lengths. This costs 2×6.25% of the key
    /// storage and is why the full-table latency uptick (paper Fig. 12,
    /// last point) stays modest instead of exploding — preallocating a
    /// little extra is the standard trade, and the paper's own table
    /// stores "auxiliary metadata that speeds up lookup" for the same
    /// reason. Each directory additionally carries its tag-group
    /// control words (one byte of busy-bit + hash-tag metadata per
    /// slot — see the `map` module docs), so a directory probe scans
    /// eight positions per u64 load and only dereferences slots whose
    /// tag matches.
    pub fn new(capacity: usize) -> DoubleMap<V> {
        assert!(capacity > 0, "dmap capacity must be non-zero");
        let dir_capacity = capacity + (capacity / 16).max(1);
        DoubleMap {
            map_a: Map::new(dir_capacity),
            map_b: Map::new(dir_capacity),
            slots: (0..capacity).map(|_| None).collect(),
            size: 0,
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slot count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Find the slot holding the value with A-key `ka`.
    pub fn get_by_a(&self, ka: &V::KeyA) -> Option<usize> {
        self.map_a.get(ka)
    }

    /// [`DoubleMap::get_by_a`] with a caller-computed hash
    /// (`hash == ka.key_hash()`), for hash memoization across a
    /// lookup→insert pair.
    pub fn get_by_a_with_hash(&self, ka: &V::KeyA, hash: u64) -> Option<usize> {
        self.map_a.get_with_hash(ka, hash)
    }

    /// Find the slot holding the value with B-key `kb`.
    pub fn get_by_b(&self, kb: &V::KeyB) -> Option<usize> {
        self.map_b.get(kb)
    }

    /// [`DoubleMap::get_by_b`] with a caller-computed hash
    /// (`hash == kb.key_hash()`).
    pub fn get_by_b_with_hash(&self, kb: &V::KeyB, hash: u64) -> Option<usize> {
        self.map_b.get_with_hash(kb, hash)
    }

    /// Resolve a burst of A-key lookups at once, appending one slot
    /// result per query to `out` in query order. `hashes[i]` must equal
    /// `keys[i].key_hash()`. Results are exactly `get_by_a` per query;
    /// the batch form exists so the burst datapath gets the A-directory
    /// probes issued back to back (see
    /// [`crate::map::Map::get_batch_with_hash`] for the cache argument).
    pub fn lookup_batch(&self, keys: &[V::KeyA], hashes: &[u64], out: &mut Vec<Option<usize>>) {
        self.map_a.get_batch_with_hash(keys, hashes, out);
    }

    /// Read the value in slot `index`.
    pub fn get(&self, index: usize) -> Option<&V> {
        self.slots.get(index).and_then(|s| s.as_ref())
    }

    /// Store `value` in slot `index`.
    ///
    /// Contract preconditions (assumed here, asserted by
    /// [`CheckedDmap`]): the slot is empty and both keys are fresh.
    /// Returns [`Full`] if `index` is out of range or occupied — the
    /// defensive behaviour for the raw structure.
    pub fn put(&mut self, index: usize, value: V) -> Result<(), Full> {
        let ka_hash = value.key_a().key_hash();
        self.put_with_hash(index, value, ka_hash)
    }

    /// [`DoubleMap::put`] with a caller-computed A-key hash
    /// (`ka_hash == value.key_a().key_hash()`). VigNAT computes each
    /// `FlowId` hash once per packet: the miss that precedes an insert
    /// already hashed the A-key, and this entry point reuses it.
    pub fn put_with_hash(&mut self, index: usize, value: V, ka_hash: u64) -> Result<(), Full> {
        if index >= self.slots.len() || self.slots[index].is_some() {
            return Err(Full);
        }
        // Insert into both directories first; on failure, roll back so
        // the structure is never left torn.
        let ka = value.key_a();
        let kb = value.key_b();
        self.map_a.put_with_hash(ka.clone(), ka_hash, index)?;
        if self.map_b.put(kb, index).is_err() {
            self.map_a.erase(&ka);
            return Err(Full);
        }
        self.slots[index] = Some(value);
        self.size += 1;
        Ok(())
    }

    /// Empty slot `index`, removing both directory entries.
    ///
    /// Contract precondition: the slot is occupied. Returns `None` (no
    /// change) otherwise.
    pub fn erase(&mut self, index: usize) -> Option<V> {
        let value = self.slots.get_mut(index)?.take()?;
        self.map_a.erase(&value.key_a());
        self.map_b.erase(&value.key_b());
        self.size -= 1;
        Some(value)
    }

    /// Probe length of an A-key lookup in the A directory (the number
    /// of probe positions the internal-key path traverses). Diagnostic
    /// twin of [`crate::map::Map::probe_len`], surfaced per directory
    /// so the occupancy benchmarks and high-occupancy tests can observe
    /// directory pressure without reaching into the maps.
    pub fn probe_len_by_a(&self, ka: &V::KeyA) -> usize {
        self.map_a.probe_len(ka)
    }

    /// Probe length of a B-key lookup in the B directory.
    pub fn probe_len_by_b(&self, kb: &V::KeyB) -> usize {
        self.map_b.probe_len(kb)
    }

    /// Assert both directories' tag-group control words are coherent
    /// with their slots ([`crate::map::Map::check_tag_coherence`]).
    /// Test/diagnostic use; O(capacity).
    pub fn check_directory_coherence(&self) -> Result<(), String> {
        self.map_a
            .check_tag_coherence()
            .map_err(|e| format!("directory A: {e}"))?;
        self.map_b
            .check_tag_coherence()
            .map_err(|e| format!("directory B: {e}"))
    }

    /// Iterate over `(index, value)` pairs. For contracts/tests only.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }
}

// ---------------------------------------------------------------------------
// Abstract model and contracts
// ---------------------------------------------------------------------------

/// Abstract double map: the slot partial-map plus the two derived
/// directories, kept as association lists. Analog of Vigor's `dmappingp`.
#[derive(Debug, Clone)]
pub struct AbstractDmap<V: DmapValue + Clone> {
    slots: Vec<Option<V>>,
    dir_a: AbstractMap<V::KeyA>,
    dir_b: AbstractMap<V::KeyB>,
}

impl<V: DmapValue + Clone> AbstractDmap<V> {
    /// Empty model with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        AbstractDmap {
            slots: (0..capacity).map(|_| None).collect(),
            dir_a: AbstractMap::new(capacity),
            dir_b: AbstractMap::new(capacity),
        }
    }

    /// Lookup by A-key.
    pub fn get_by_a(&self, ka: &V::KeyA) -> Option<usize> {
        self.dir_a.get(ka)
    }

    /// Lookup by B-key.
    pub fn get_by_b(&self, kb: &V::KeyB) -> Option<usize> {
        self.dir_b.get(kb)
    }

    /// Slot read.
    pub fn get(&self, index: usize) -> Option<&V> {
        self.slots.get(index).and_then(|s| s.as_ref())
    }

    /// Occupied count.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Model `put` (preconditions already validated by caller).
    pub fn put(&mut self, index: usize, value: V) {
        self.dir_a.put(value.key_a(), index);
        self.dir_b.put(value.key_b(), index);
        self.slots[index] = Some(value);
    }

    /// Model `erase`.
    pub fn erase(&mut self, index: usize) -> Option<V> {
        let v = self.slots.get_mut(index)?.take()?;
        self.dir_a.erase(&v.key_a());
        self.dir_b.erase(&v.key_b());
        Some(v)
    }
}

/// Implementation + model in lockstep with contract assertions (P3).
#[derive(Debug, Clone)]
pub struct CheckedDmap<V: DmapValue + Clone + PartialEq + core::fmt::Debug> {
    imp: DoubleMap<V>,
    model: AbstractDmap<V>,
}

impl<V: DmapValue + Clone + PartialEq + core::fmt::Debug> CheckedDmap<V> {
    /// Preallocate, like [`DoubleMap::new`].
    pub fn new(capacity: usize) -> Self {
        CheckedDmap {
            imp: DoubleMap::new(capacity),
            model: AbstractDmap::new(capacity),
        }
    }

    /// Contract-checked `put`.
    pub fn put(&mut self, index: usize, value: V) -> Result<(), Full> {
        assert!(
            index < self.imp.capacity(),
            "dmap.put precondition: index in range"
        );
        assert!(
            self.model.get(index).is_none(),
            "dmap.put precondition: slot empty"
        );
        assert!(
            self.model.get_by_a(&value.key_a()).is_none(),
            "dmap.put precondition: A-key fresh"
        );
        assert!(
            self.model.get_by_b(&value.key_b()).is_none(),
            "dmap.put precondition: B-key fresh"
        );
        let r = self.imp.put(index, value.clone());
        assert!(r.is_ok(), "put with satisfied preconditions must succeed");
        self.model.put(index, value);
        self.check_equiv();
        r
    }

    /// Contract-checked `erase`.
    pub fn erase(&mut self, index: usize) -> Option<V> {
        let got = self.imp.erase(index);
        let spec = self.model.erase(index);
        assert_eq!(got, spec, "dmap.erase diverged from model");
        self.check_equiv();
        got
    }

    /// Contract-checked A-key lookup.
    pub fn get_by_a(&self, ka: &V::KeyA) -> Option<usize> {
        let got = self.imp.get_by_a(ka);
        assert_eq!(got, self.model.get_by_a(ka), "get_by_a diverged");
        got
    }

    /// Contract-checked hashed A-key lookup (adds the memoized-hash
    /// precondition `hash == ka.key_hash()`).
    pub fn get_by_a_with_hash(&self, ka: &V::KeyA, hash: u64) -> Option<usize> {
        assert_eq!(
            hash,
            ka.key_hash(),
            "get_by_a_with_hash precondition: stale hash"
        );
        let got = self.imp.get_by_a_with_hash(ka, hash);
        assert_eq!(got, self.model.get_by_a(ka), "get_by_a_with_hash diverged");
        got
    }

    /// Contract-checked B-key lookup.
    pub fn get_by_b(&self, kb: &V::KeyB) -> Option<usize> {
        let got = self.imp.get_by_b(kb);
        assert_eq!(got, self.model.get_by_b(kb), "get_by_b diverged");
        got
    }

    /// Contract-checked hashed B-key lookup.
    pub fn get_by_b_with_hash(&self, kb: &V::KeyB, hash: u64) -> Option<usize> {
        assert_eq!(
            hash,
            kb.key_hash(),
            "get_by_b_with_hash precondition: stale hash"
        );
        let got = self.imp.get_by_b_with_hash(kb, hash);
        assert_eq!(got, self.model.get_by_b(kb), "get_by_b_with_hash diverged");
        got
    }

    /// Contract-checked batch lookup: must equal element-wise
    /// `get_by_a` against the model (batching is a pure optimization).
    pub fn lookup_batch(&self, keys: &[V::KeyA], hashes: &[u64]) -> Vec<Option<usize>> {
        for (k, &h) in keys.iter().zip(hashes) {
            assert_eq!(h, k.key_hash(), "lookup_batch precondition: stale hash");
        }
        let mut got = Vec::new();
        self.imp.lookup_batch(keys, hashes, &mut got);
        assert_eq!(got.len(), keys.len(), "lookup_batch result count mismatch");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                got[i],
                self.model.get_by_a(k),
                "lookup_batch diverged from abstract model at query {i}"
            );
        }
        got
    }

    /// Contract-checked `put_with_hash` (the `put` contract plus the
    /// memoized-hash precondition on the A-key).
    pub fn put_with_hash(&mut self, index: usize, value: V, ka_hash: u64) -> Result<(), Full> {
        assert_eq!(
            ka_hash,
            value.key_a().key_hash(),
            "put_with_hash precondition: stale A-key hash"
        );
        self.put(index, value)
    }

    /// Contract-checked slot read.
    pub fn get(&self, index: usize) -> Option<&V> {
        let got = self.imp.get(index);
        assert_eq!(got, self.model.get(index), "get diverged");
        got
    }

    /// Access the underlying implementation.
    pub fn raw(&self) -> &DoubleMap<V> {
        &self.imp
    }

    /// Full refinement + coherence check: slots agree, directories are
    /// exactly the key→slot projections of the slots (Vigor's `vk1`/`vk2`
    /// coherence), and both directories' tag-group control words are
    /// coherent with their map slots.
    pub fn check_equiv(&self) {
        assert_eq!(self.imp.size(), self.model.len(), "size mismatch");
        self.imp
            .check_directory_coherence()
            .unwrap_or_else(|e| panic!("dmap directory incoherent: {e}"));
        for i in 0..self.imp.capacity() {
            assert_eq!(self.imp.get(i), self.model.get(i), "slot {i} mismatch");
            if let Some(v) = self.imp.get(i) {
                assert_eq!(
                    self.imp.get_by_a(&v.key_a()),
                    Some(i),
                    "dir A incoherent at {i}"
                );
                assert_eq!(
                    self.imp.get_by_b(&v.key_b()),
                    Some(i),
                    "dir B incoherent at {i}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A toy two-key value: `a` and `b` are the keys.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Pair {
        a: u64,
        b: u64,
        payload: u32,
    }

    impl DmapValue for Pair {
        type KeyA = u64;
        type KeyB = u64;

        fn key_a(&self) -> u64 {
            self.a
        }
        fn key_b(&self) -> u64 {
            self.b
        }
    }

    fn pair(a: u64, b: u64) -> Pair {
        Pair {
            a,
            b,
            payload: (a * 1000 + b) as u32,
        }
    }

    #[test]
    fn both_directions_find_the_same_slot() {
        let mut d = CheckedDmap::new(4);
        d.put(2, pair(10, 20)).unwrap();
        assert_eq!(d.get_by_a(&10), Some(2));
        assert_eq!(d.get_by_b(&20), Some(2));
        assert_eq!(d.get(2), Some(&pair(10, 20)));
        assert_eq!(d.get_by_a(&20), None, "keys are per-directory");
    }

    #[test]
    fn erase_clears_both_directories() {
        let mut d = CheckedDmap::new(4);
        d.put(0, pair(1, 2)).unwrap();
        assert_eq!(d.erase(0), Some(pair(1, 2)));
        assert_eq!(d.get_by_a(&1), None);
        assert_eq!(d.get_by_b(&2), None);
        assert_eq!(d.get(0), None);
    }

    #[test]
    fn slot_reuse_after_erase() {
        let mut d = CheckedDmap::new(2);
        d.put(1, pair(1, 2)).unwrap();
        d.erase(1);
        d.put(1, pair(3, 4)).unwrap();
        assert_eq!(d.get_by_a(&3), Some(1));
        assert_eq!(d.get_by_a(&1), None);
    }

    #[test]
    #[should_panic(expected = "slot empty")]
    fn double_put_same_slot_violates_contract() {
        let mut d = CheckedDmap::new(2);
        d.put(0, pair(1, 2)).unwrap();
        let _ = d.put(0, pair(3, 4));
    }

    #[test]
    #[should_panic(expected = "A-key fresh")]
    fn duplicate_a_key_violates_contract() {
        let mut d = CheckedDmap::new(2);
        d.put(0, pair(1, 2)).unwrap();
        let _ = d.put(1, pair(1, 9));
    }

    #[test]
    fn raw_put_occupied_slot_is_rejected() {
        let mut d: DoubleMap<Pair> = DoubleMap::new(2);
        d.put(0, pair(1, 2)).unwrap();
        assert_eq!(d.put(0, pair(3, 4)), Err(Full));
        assert_eq!(d.get_by_a(&1), Some(0), "failed put must not disturb state");
        assert_eq!(d.get_by_a(&3), None);
    }

    #[test]
    fn raw_erase_empty_slot_is_none() {
        let mut d: DoubleMap<Pair> = DoubleMap::new(2);
        assert_eq!(d.erase(0), None);
        assert_eq!(d.erase(99), None);
    }

    #[test]
    fn hashed_lookups_and_put_match_plain_ones() {
        use crate::map::MapKey;
        let mut d = CheckedDmap::new(8);
        for i in 0..6u64 {
            let v = pair(i, 100 + i);
            let h = v.key_a().key_hash();
            d.put_with_hash(i as usize, v, h).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(d.get_by_a_with_hash(&i, i.key_hash()), d.get_by_a(&i));
            let b = 100 + i;
            assert_eq!(d.get_by_b_with_hash(&b, b.key_hash()), d.get_by_b(&b));
        }
    }

    #[test]
    fn lookup_batch_equals_sequential() {
        use crate::map::MapKey;
        let mut d = CheckedDmap::new(8);
        for i in 0..5u64 {
            d.put(i as usize, pair(i * 2, 50 + i)).unwrap();
        }
        let queries: Vec<u64> = (0..12).collect();
        let hashes: Vec<u64> = queries.iter().map(|k| k.key_hash()).collect();
        let batch = d.lookup_batch(&queries, &hashes);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], d.get_by_a(q), "query {i} diverged");
        }
    }

    proptest! {
        /// Random legal op sequences keep impl == model and both
        /// directories coherent with the slots.
        #[test]
        fn random_ops_refine_model(
            ops in proptest::collection::vec((0u8..3, 0usize..4, 0u64..6, 0u64..6), 0..120),
        ) {
            let mut d = CheckedDmap::new(4);
            for (kind, idx, a, b) in ops {
                match kind {
                    0 => {
                        // legal put only
                        if d.get(idx).is_none()
                            && d.get_by_a(&a).is_none()
                            && d.get_by_b(&b).is_none()
                        {
                            d.put(idx, pair(a, b)).unwrap();
                        }
                    }
                    1 => { d.erase(idx); }
                    _ => {
                        d.get_by_a(&a);
                        d.get_by_b(&b);
                        d.get(idx);
                    }
                }
            }
        }
    }
}
