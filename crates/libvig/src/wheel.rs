//! Hierarchical timer wheel: O(1) expiry bucketed by deadline.
//!
//! The paper's expirator (Fig. 6) walks the [`crate::dchain`] LRU list,
//! which is O(1) per expired flow *only because* every flow shares one
//! timeout, so last-activity order equals deadline order. A production
//! NAT wants expiry decoupled from that coupling — heterogeneous
//! timeouts (TCP vs UDP lifetimes, RFC 4787 behaviors) break the
//! LRU-equals-deadline property, and a million-flow table cannot afford
//! a scan when it does. The classical fix is the hierarchical timer
//! wheel (Varghese & Lauck, SOSP '87): hash each deadline into a
//! bucket, expire by draining due buckets, pay O(1) amortized per
//! timer regardless of table size.
//!
//! This module supplies that wheel **with the same verification story
//! as every other libVig structure**: an executable abstract model
//! ([`AbstractWheel`] — the naive scan the wheel replaces), a lockstep
//! [`CheckedWheel`] asserting the contract on every call, and
//! property/boundary suites. The differential proof that matters — the
//! wheel drains in *exactly* the order the dchain scan expires, so a
//! wheel-driven NAT is byte-identical to the scan-driven one — lives in
//! `tests/wheel_equivalence.rs` and in the flow manager's dual-mode
//! tests.
//!
//! ## Geometry
//!
//! 11 levels × 64 slots (6 bits per level, 66 bits ≥ the full `u64`
//! nanosecond range), one `u64` occupancy bitmap per level, and a
//! cursor `C` = the wheel's notion of "now". An armed timestamp `t ≥ C`
//! lives at
//!
//! ```text
//! level(t) = msb(t XOR C) / 6      (level 0 when t == C)
//! slot(t)  = (t >> 6·level) & 63
//! ```
//!
//! i.e. the level of the *highest bit where `t` disagrees with the
//! cursor* — Linux's `timer_wheel` placement. Level-0 buckets hold a
//! single nanosecond each; a level-`l` bucket spans `2^(6l)` ns. When
//! the earliest due bucket sits at level ≥ 1, its entries *cascade*:
//! the cursor advances to the bucket's start and each entry is
//! re-placed relative to the new cursor, landing at a strictly lower
//! level. An entry cascades at most 10 times over its whole life, so
//! arm + disarm + expire stay amortized O(1).
//!
//! ## The monotone-insert precondition and the order theorem
//!
//! Every [`TimerWheel::insert`]/[`TimerWheel::refresh`] timestamp must
//! be ≥ every timestamp currently armed (contract precondition,
//! asserted by [`CheckedWheel`]). The NAT satisfies it for free: all
//! flows share one `Texp`, and deadlines are stamped by a monotone
//! clock. Under it:
//!
//! * every bucket's FIFO is nondecreasing in timestamp (a new insert
//!   is ≥ everything already armed, wherever it lands);
//! * buckets are disjoint, ordered intervals of time, and for two
//!   armed timestamps `a`, `b ≥ C`, `msb(a^C) < msb(b^C)` implies
//!   `a < b` — so "lowest nonempty level, then lowest set slot bit"
//!   *is* the global minimum bucket, and its head the global minimum
//!   entry;
//! * cascading walks the source FIFO in order and appends, so order is
//!   preserved exactly.
//!
//! Hence [`TimerWheel::pop_expired`] yields entries in ascending
//! `(timestamp, insertion order)` — precisely the order
//! [`crate::dchain::DoubleChain::expire_one`] frees them. That exact
//! (not just set-wise) agreement is what lets the flow manager swap
//! expiry engines without perturbing one byte of downstream state:
//! freed indices hit the dchain free list in the same sequence, so
//! port reuse, probe layout, and TX bytes all stay identical.
//!
//! ## The overdue lane
//!
//! A sharded NAT's expiry threshold can come from a *global* clock
//! ahead of the shard's local packet clock (`QueueFed` ticks idle
//! shards at the fleet-wide max). After such a tick fast-forwards the
//! cursor, a later local insert may carry `t < C`. Those entries are
//! already due-or-imminent; they go to a dedicated **overdue FIFO**
//! drained before the wheel. Monotonicity makes this exact too: an
//! overdue insert's `t` is ≥ all armed entries yet `< C`, and in-wheel
//! entries are ≥ `C` — so at that moment the wheel proper is empty,
//! and every in-wheel entry armed *later* is ≥ the overdue tail.
//! Overdue-first is therefore still globally ascending order.

use crate::time::Time;

/// Bits per wheel level (64 slots each).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels: 11 × 6 = 66 bits ≥ 64, so any `u64` nanosecond timestamp
/// places without overflow.
const LEVELS: usize = 11;
/// Total buckets.
const BUCKETS: usize = LEVELS * SLOTS;

/// Linked-list terminator for entry indices.
const NIL: u32 = u32::MAX;
/// `bucket[i]` value meaning "index `i` is not armed".
const B_NONE: u16 = u16::MAX;
/// `bucket[i]` value meaning "index `i` is in the overdue FIFO".
const B_OVERDUE: u16 = u16::MAX - 1;

/// A hierarchical timer wheel over a preallocated index space
/// `0..capacity` (the same dense index space the dchain and dmap
/// share). See the module docs for geometry and contracts.
#[derive(Debug, Clone)]
pub struct TimerWheel {
    /// Per-entry forward link within its bucket FIFO (or free: unused).
    next: Vec<u32>,
    /// Per-entry backward link within its bucket FIFO.
    prev: Vec<u32>,
    /// Per-entry armed deadline (valid only while armed).
    ts: Vec<u64>,
    /// Which bucket each entry sits in: `level·64 + slot`, or
    /// [`B_NONE`] / [`B_OVERDUE`].
    bucket: Vec<u16>,
    /// Per-bucket FIFO head.
    head: Vec<u32>,
    /// Per-bucket FIFO tail.
    tail: Vec<u32>,
    /// One occupancy bit per slot, per level.
    occupancy: [u64; LEVELS],
    /// Overdue FIFO head/tail (entries armed behind the cursor).
    overdue_head: u32,
    overdue_tail: u32,
    /// The wheel's "now": all in-wheel entries have `ts >= cursor`.
    cursor: u64,
    /// Armed entries (wheel + overdue).
    len: usize,
}

impl TimerWheel {
    /// A wheel for indices `0..capacity`, cursor at time zero, nothing
    /// armed. All memory is allocated here (§5.1.1: nothing allocates
    /// on the packet path).
    pub fn new(capacity: usize) -> TimerWheel {
        assert!(capacity < NIL as usize, "capacity must fit u32 links");
        TimerWheel {
            next: vec![NIL; capacity],
            prev: vec![NIL; capacity],
            ts: vec![0; capacity],
            bucket: vec![B_NONE; capacity],
            head: vec![NIL; BUCKETS],
            tail: vec![NIL; BUCKETS],
            occupancy: [0; LEVELS],
            overdue_head: NIL,
            overdue_tail: NIL,
            cursor: 0,
            len: 0,
        }
    }

    /// Number of indices the wheel covers.
    pub fn capacity(&self) -> usize {
        self.bucket.len()
    }

    /// Number of armed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is currently armed.
    pub fn contains(&self, index: usize) -> bool {
        self.bucket[index] != B_NONE
    }

    /// The armed deadline of `index`, if armed.
    pub fn deadline_of(&self, index: usize) -> Option<Time> {
        (self.bucket[index] != B_NONE).then(|| Time::ZERO.plus(self.ts[index]))
    }

    /// The wheel's current cursor (diagnostic; tests use it to pin the
    /// fast-forward behavior).
    pub fn cursor(&self) -> Time {
        Time::ZERO.plus(self.cursor)
    }

    /// Bucket for timestamp `t` relative to cursor `c`. Precondition:
    /// `t >= c`.
    fn place(c: u64, t: u64) -> u16 {
        debug_assert!(t >= c, "place: timestamp behind cursor");
        let diff = t ^ c;
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) / SLOT_BITS
        };
        let slot = (t >> (SLOT_BITS * level)) & (SLOTS as u64 - 1);
        (level as u16) * SLOTS as u16 + slot as u16
    }

    /// First (smallest) timestamp that maps to `bucket` under the
    /// current cursor: the cursor's bits above the bucket's level, the
    /// bucket's slot at the level, zeros below.
    fn bucket_start(&self, bucket: u16) -> u64 {
        let level = u32::from(bucket) / SLOTS as u32;
        let slot = u64::from(bucket) % SLOTS as u64;
        let above = SLOT_BITS * (level + 1);
        let high = if above >= 64 {
            0
        } else {
            (self.cursor >> above) << above
        };
        high | (slot << (SLOT_BITS * level))
    }

    /// Append `index` to `bucket`'s FIFO and set the occupancy bit.
    fn push_bucket(&mut self, index: usize, bucket: u16) {
        let b = bucket as usize;
        self.bucket[index] = bucket;
        self.next[index] = NIL;
        self.prev[index] = self.tail[b];
        if self.tail[b] == NIL {
            self.head[b] = index as u32;
            self.occupancy[b / SLOTS] |= 1u64 << (b % SLOTS);
        } else {
            self.next[self.tail[b] as usize] = index as u32;
        }
        self.tail[b] = index as u32;
    }

    /// Unlink `index` from the doubly linked list it is in (a bucket
    /// FIFO or the overdue FIFO), clearing the occupancy bit if a
    /// bucket empties.
    fn unlink(&mut self, index: usize) {
        let b = self.bucket[index];
        debug_assert_ne!(b, B_NONE, "unlink of an unarmed index");
        let (next, prev) = (self.next[index], self.prev[index]);
        if b == B_OVERDUE {
            if prev == NIL {
                self.overdue_head = next;
            } else {
                self.next[prev as usize] = next;
            }
            if next == NIL {
                self.overdue_tail = prev;
            } else {
                self.prev[next as usize] = prev;
            }
        } else {
            let bu = b as usize;
            if prev == NIL {
                self.head[bu] = next;
            } else {
                self.next[prev as usize] = next;
            }
            if next == NIL {
                self.tail[bu] = prev;
            } else {
                self.prev[next as usize] = prev;
            }
            if self.head[bu] == NIL {
                self.occupancy[bu / SLOTS] &= !(1u64 << (bu % SLOTS));
            }
        }
        self.bucket[index] = B_NONE;
        self.next[index] = NIL;
        self.prev[index] = NIL;
    }

    /// Arm `index` with deadline `time`.
    ///
    /// Contract: `index` is not armed, and `time` is ≥ every deadline
    /// currently armed (the monotone-insert precondition — see the
    /// module docs; a monotone clock plus a shared timeout guarantees
    /// it). Deadlines behind the cursor join the overdue FIFO.
    pub fn insert(&mut self, index: usize, time: Time) {
        debug_assert!(!self.contains(index), "insert of an armed index");
        let t = time.nanos();
        self.ts[index] = t;
        if t < self.cursor {
            // Overdue lane: already due relative to the fast-forwarded
            // cursor; drained FIFO-first (see module docs for why this
            // preserves exact global order).
            self.bucket[index] = B_OVERDUE;
            self.next[index] = NIL;
            self.prev[index] = self.overdue_tail;
            if self.overdue_tail == NIL {
                self.overdue_head = index as u32;
            } else {
                self.next[self.overdue_tail as usize] = index as u32;
            }
            self.overdue_tail = index as u32;
        } else {
            let bucket = Self::place(self.cursor, t);
            self.push_bucket(index, bucket);
        }
        self.len += 1;
    }

    /// Re-arm `index` with a fresh deadline (the rejuvenate path).
    /// Same contract as [`TimerWheel::insert`]; the entry moves to the
    /// tail of its (possibly new) bucket, exactly as dchain's
    /// rejuvenate moves it to the LRU tail.
    pub fn refresh(&mut self, index: usize, time: Time) {
        debug_assert!(self.contains(index), "refresh of an unarmed index");
        self.unlink(index);
        self.len -= 1;
        self.insert(index, time);
    }

    /// Disarm `index` (the free path — e.g. the flow was torn down by
    /// something other than expiry). No-op ordering-wise.
    pub fn remove(&mut self, index: usize) -> bool {
        if !self.contains(index) {
            return false;
        }
        self.unlink(index);
        self.len -= 1;
        true
    }

    /// Lowest nonempty bucket id, or `None` when the wheel proper is
    /// empty. By the placement invariants this bucket contains the
    /// global minimum armed deadline (overdue lane aside).
    fn min_bucket(&self) -> Option<u16> {
        for (level, &occ) in self.occupancy.iter().enumerate() {
            if occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                return Some((level * SLOTS + slot) as u16);
            }
        }
        None
    }

    /// Cascade every entry of `bucket` (level ≥ 1) down to finer
    /// levels after the cursor advanced to the bucket's start. Walks
    /// the FIFO head→tail and re-places each entry, so relative order
    /// is preserved exactly.
    fn cascade(&mut self, bucket: u16) {
        let b = bucket as usize;
        debug_assert!(b >= SLOTS, "cascade of a level-0 bucket");
        let mut at = self.head[b];
        self.head[b] = NIL;
        self.tail[b] = NIL;
        self.occupancy[b / SLOTS] &= !(1u64 << (b % SLOTS));
        while at != NIL {
            let idx = at as usize;
            at = self.next[idx];
            let target = Self::place(self.cursor, self.ts[idx]);
            debug_assert!(target < bucket, "cascade must strictly descend");
            self.push_bucket(idx, target);
        }
    }

    /// Pop the earliest-armed entry if its deadline is `<= threshold`,
    /// returning its index and deadline. `None` means nothing (more)
    /// is due — the paper's `expire_one` drain contract, so the flow
    /// manager can loop this exactly like the dchain scan.
    ///
    /// Entries come out in ascending `(deadline, insertion order)` —
    /// see the module docs' order theorem. Thresholds may regress
    /// between calls (per-shard skew); the check is against the
    /// entry's own deadline, so a regressed threshold simply pops
    /// nothing, same as the scan.
    pub fn pop_expired(&mut self, threshold: Time) -> Option<usize> {
        let thr = threshold.nanos();
        // Overdue lane first: always the globally earliest entries.
        if self.overdue_head != NIL {
            let idx = self.overdue_head as usize;
            if self.ts[idx] <= thr {
                self.unlink(idx);
                self.len -= 1;
                return Some(idx);
            }
            return None;
        }
        loop {
            let Some(bucket) = self.min_bucket() else {
                // Empty wheel: fast-forward so the cursor never lags
                // behind what the caller has already observed as "now".
                self.cursor = self.cursor.max(thr);
                return None;
            };
            if bucket < SLOTS as u16 {
                // Level 0: one nanosecond per bucket, head is the
                // global minimum entry.
                let idx = self.head[bucket as usize] as usize;
                if self.ts[idx] > thr {
                    return None;
                }
                self.unlink(idx);
                self.len -= 1;
                return Some(idx);
            }
            let start = self.bucket_start(bucket);
            if start > thr {
                // Everything armed is strictly later than the
                // threshold; don't move the cursor (a later insert may
                // still legitimately land between cursor and start).
                return None;
            }
            debug_assert!(start >= self.cursor, "cursor may only advance");
            self.cursor = start;
            self.cascade(bucket);
        }
    }

    /// Exhaustive internal consistency check (test-side): link/bucket
    /// agreement, occupancy bitmap exactness, bucket FIFOs sorted
    /// nondecreasing, every armed `ts` ≥ cursor (wheel) or the overdue
    /// lane ordered. O(capacity + buckets); used by `CheckedWheel` and
    /// the differential suites, never on the datapath.
    pub fn check_consistency(&self) {
        let mut armed = 0usize;
        for i in 0..self.capacity() {
            if self.bucket[i] == B_NONE {
                continue;
            }
            armed += 1;
            if self.bucket[i] != B_OVERDUE {
                assert_eq!(
                    self.bucket[i],
                    Self::place(self.cursor, self.ts[i]),
                    "entry {i} not exactly placed for the current cursor"
                );
            }
        }
        assert_eq!(armed, self.len, "len does not match armed entries");
        for b in 0..BUCKETS {
            let occupied = self.head[b] != NIL;
            assert_eq!(
                self.occupancy[b / SLOTS] >> (b % SLOTS) & 1 == 1,
                occupied,
                "occupancy bit mismatch at bucket {b}"
            );
            let mut at = self.head[b];
            let mut prev = NIL;
            let mut last_ts = 0u64;
            while at != NIL {
                let i = at as usize;
                assert_eq!(self.bucket[i] as usize, b, "entry in the wrong bucket");
                assert_eq!(self.prev[i], prev, "broken back link in bucket {b}");
                assert!(self.ts[i] >= last_ts, "bucket {b} FIFO not ts-sorted");
                assert!(self.ts[i] >= self.cursor, "in-wheel entry behind cursor");
                last_ts = self.ts[i];
                prev = at;
                at = self.next[i];
            }
            assert_eq!(self.tail[b], prev, "tail mismatch in bucket {b}");
        }
        let mut at = self.overdue_head;
        let mut prev = NIL;
        let mut last_ts = 0u64;
        while at != NIL {
            let i = at as usize;
            assert_eq!(self.bucket[i], B_OVERDUE, "stray entry in overdue lane");
            assert_eq!(self.prev[i], prev, "broken back link in overdue lane");
            assert!(self.ts[i] >= last_ts, "overdue lane not ts-sorted");
            assert!(self.ts[i] < self.cursor, "overdue entry not behind cursor");
            last_ts = self.ts[i];
            prev = at;
            at = self.next[i];
        }
        assert_eq!(self.overdue_tail, prev, "overdue tail mismatch");
    }
}

/// The abstract model: the naive scan the wheel replaces. Armed
/// entries live in one insertion-ordered sequence; `pop_expired`
/// *scans the whole sequence* for the minimum `(deadline, position)`
/// and pops it if due — the obviously-correct O(n) semantics, and
/// (under the monotone-insert precondition) exactly the dchain LRU
/// drain.
#[derive(Debug, Clone, Default)]
pub struct AbstractWheel {
    /// `(index, deadline)` in arm order.
    seq: Vec<(usize, u64)>,
}

impl AbstractWheel {
    /// Empty model.
    pub fn new() -> AbstractWheel {
        AbstractWheel::default()
    }

    /// Armed entries.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Whether `index` is armed.
    pub fn contains(&self, index: usize) -> bool {
        self.seq.iter().any(|&(i, _)| i == index)
    }

    /// The armed deadline of `index`, if armed.
    pub fn deadline_of(&self, index: usize) -> Option<Time> {
        self.seq
            .iter()
            .find(|&&(i, _)| i == index)
            .map(|&(_, t)| Time::ZERO.plus(t))
    }

    /// Arm `index` (must not be armed).
    pub fn insert(&mut self, index: usize, time: Time) {
        assert!(!self.contains(index), "model: insert of an armed index");
        self.seq.push((index, time.nanos()));
    }

    /// Re-arm `index` (must be armed): remove, append — the LRU-tail
    /// move.
    pub fn refresh(&mut self, index: usize, time: Time) {
        assert!(self.remove(index), "model: refresh of an unarmed index");
        self.seq.push((index, time.nanos()));
    }

    /// Disarm `index`.
    pub fn remove(&mut self, index: usize) -> bool {
        match self.seq.iter().position(|&(i, _)| i == index) {
            Some(p) => {
                self.seq.remove(p);
                true
            }
            None => false,
        }
    }

    /// Scan for the minimum `(deadline, position)`; pop it if due.
    pub fn pop_expired(&mut self, threshold: Time) -> Option<usize> {
        let best = self
            .seq
            .iter()
            .enumerate()
            .min_by_key(|&(p, &(_, t))| (t, p))
            .map(|(p, _)| p)?;
        if self.seq[best].1 <= threshold.nanos() {
            Some(self.seq.remove(best).0)
        } else {
            None
        }
    }
}

/// Lockstep wrapper: runs the real wheel and the scan model together,
/// asserting after every operation that they agree — membership,
/// deadlines, lengths, and (the theorem that matters) identical pop
/// order. Also asserts the monotone-insert precondition, so a caller
/// that would void the order theorem fails loudly here rather than
/// diverging silently in production.
#[derive(Debug, Clone)]
pub struct CheckedWheel {
    real: TimerWheel,
    model: AbstractWheel,
    /// Largest deadline ever armed (precondition tracking).
    high_water: u64,
}

impl CheckedWheel {
    /// A checked wheel over `0..capacity`.
    pub fn new(capacity: usize) -> CheckedWheel {
        CheckedWheel {
            real: TimerWheel::new(capacity),
            model: AbstractWheel::new(),
            high_water: 0,
        }
    }

    /// The real wheel (read-only).
    pub fn raw(&self) -> &TimerWheel {
        &self.real
    }

    fn check(&self) {
        self.real.check_consistency();
        assert_eq!(self.real.len(), self.model.len(), "length divergence");
        for &(i, t) in &self.model.seq {
            assert_eq!(
                self.real.deadline_of(i),
                Some(Time::ZERO.plus(t)),
                "deadline divergence at index {i}"
            );
        }
    }

    /// Checked [`TimerWheel::insert`].
    pub fn insert(&mut self, index: usize, time: Time) {
        assert!(
            time.nanos() >= self.high_water,
            "monotone-insert precondition violated: {} < {}",
            time.nanos(),
            self.high_water
        );
        self.high_water = time.nanos();
        self.real.insert(index, time);
        self.model.insert(index, time);
        self.check();
    }

    /// Checked [`TimerWheel::refresh`].
    pub fn refresh(&mut self, index: usize, time: Time) {
        assert!(
            time.nanos() >= self.high_water,
            "monotone-insert precondition violated: {} < {}",
            time.nanos(),
            self.high_water
        );
        self.high_water = time.nanos();
        self.real.refresh(index, time);
        self.model.refresh(index, time);
        self.check();
    }

    /// Checked [`TimerWheel::remove`].
    pub fn remove(&mut self, index: usize) -> bool {
        let r = self.real.remove(index);
        let m = self.model.remove(index);
        assert_eq!(r, m, "remove divergence at index {index}");
        self.check();
        r
    }

    /// Checked [`TimerWheel::pop_expired`]: the wheel must pop exactly
    /// the entry the scan model pops.
    pub fn pop_expired(&mut self, threshold: Time) -> Option<usize> {
        let r = self.real.pop_expired(threshold);
        let m = self.model.pop_expired(threshold);
        assert_eq!(r, m, "pop order divergence at threshold {threshold:?}");
        self.check();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ns: u64) -> Time {
        Time::ZERO.plus(ns)
    }

    #[test]
    fn placement_levels_match_msb() {
        // cursor 0: timestamps below 64 are level 0, then 6 bits/level.
        assert_eq!(TimerWheel::place(0, 0), 0);
        assert_eq!(TimerWheel::place(0, 63), 63);
        assert_eq!(TimerWheel::place(0, 64), 64 + 1); // level 1, slot 1
        assert_eq!(TimerWheel::place(0, 4095), 64 + 63); // level 1, slot 63
        assert_eq!(TimerWheel::place(0, 4096), 128 + 1); // level 2, slot 1
                                                         // Level 10 covers bits 60..64: slot is the top nibble (15).
        assert_eq!(TimerWheel::place(0, u64::MAX), (10 * 64 + 15) as u16);
        // Placement is relative: near cursor everything is level 0.
        let c = 0xDEAD_BEEF_0000u64;
        assert_eq!(TimerWheel::place(c, c), ((c & 63) as u16));
    }

    #[test]
    fn pop_order_is_deadline_then_insertion() {
        let mut w = CheckedWheel::new(16);
        w.insert(3, t(100));
        w.insert(7, t(100)); // same deadline: insertion order breaks the tie
        w.insert(1, t(5_000));
        w.insert(9, t(5_000_000));
        assert_eq!(w.pop_expired(t(99)), None);
        assert_eq!(w.pop_expired(t(100)), Some(3));
        assert_eq!(w.pop_expired(t(100)), Some(7));
        assert_eq!(w.pop_expired(t(100)), None);
        assert_eq!(w.pop_expired(t(u64::MAX)), Some(1));
        assert_eq!(w.pop_expired(t(u64::MAX)), Some(9));
        assert_eq!(w.pop_expired(t(u64::MAX)), None);
    }

    #[test]
    fn refresh_moves_to_tail_like_rejuvenate() {
        let mut w = CheckedWheel::new(8);
        w.insert(0, t(10));
        w.insert(1, t(10));
        w.refresh(0, t(10)); // same deadline, but now behind 1
        assert_eq!(w.pop_expired(t(10)), Some(1));
        assert_eq!(w.pop_expired(t(10)), Some(0));
    }

    #[test]
    fn boundary_exact_threshold_expires_inclusive() {
        // ts == threshold expires — the dchain `expire_one` boundary
        // (its `ts <= threshold` check), pinned here for the wheel.
        let mut w = CheckedWheel::new(4);
        w.insert(2, t(1_000));
        assert_eq!(w.pop_expired(t(999)), None);
        assert_eq!(w.pop_expired(t(1_000)), Some(2));
    }

    #[test]
    fn boundary_zero_duration_timeout() {
        // Zero-duration timeout: armed at `now`, due at `now`.
        let mut w = CheckedWheel::new(4);
        w.insert(0, t(777));
        assert_eq!(w.pop_expired(t(777)), Some(0));
        // And at time zero with deadline zero.
        let mut w0 = CheckedWheel::new(4);
        w0.insert(1, Time::ZERO);
        assert_eq!(w0.pop_expired(Time::ZERO), Some(1));
    }

    #[test]
    fn overdue_inserts_drain_first_in_order() {
        let mut w = CheckedWheel::new(8);
        // Fast-forward the cursor far ahead via an empty-wheel pop.
        assert_eq!(w.pop_expired(t(1 << 30)), None);
        assert_eq!(w.raw().cursor(), t(1 << 30));
        // Inserts behind the cursor take the overdue lane...
        w.insert(4, t(1_000));
        w.insert(5, t(2_000));
        // ...and one ahead of it takes the wheel.
        w.insert(6, t((1 << 30) + 7));
        assert_eq!(w.pop_expired(t(1_500)), Some(4));
        assert_eq!(w.pop_expired(t(1_500)), None, "5 not yet due");
        assert_eq!(w.pop_expired(t(u64::MAX)), Some(5));
        assert_eq!(w.pop_expired(t(u64::MAX)), Some(6));
    }

    #[test]
    fn overdue_refresh_rejoins_the_wheel() {
        let mut w = CheckedWheel::new(8);
        assert_eq!(w.pop_expired(t(1 << 20)), None);
        w.insert(0, t(100)); // overdue
        w.refresh(0, t(1 << 21)); // refreshed ahead: back into the wheel
        assert_eq!(w.pop_expired(t(1 << 20)), None);
        assert_eq!(w.pop_expired(t(1 << 21)), Some(0));
    }

    #[test]
    fn threshold_regression_pops_nothing_spurious() {
        let mut w = CheckedWheel::new(8);
        w.insert(0, t(5_000_000));
        assert_eq!(w.pop_expired(t(4_000_000)), None);
        // Regressed threshold (per-shard skew): still nothing due.
        assert_eq!(w.pop_expired(t(10)), None);
        assert_eq!(w.pop_expired(t(5_000_000)), Some(0));
        // Regression after a fast-forward is fine too.
        assert_eq!(w.pop_expired(t(1)), None);
    }

    #[test]
    fn remove_then_reinsert_round_trips() {
        let mut w = CheckedWheel::new(8);
        w.insert(0, t(50));
        w.insert(1, t(60));
        assert!(w.remove(0));
        assert!(!w.remove(0), "double remove is a no-op");
        w.insert(0, t(60));
        assert_eq!(w.pop_expired(t(100)), Some(1));
        assert_eq!(w.pop_expired(t(100)), Some(0));
    }

    #[test]
    fn deep_time_jumps_cascade_correctly() {
        // Deadlines spread across many levels; one huge threshold
        // drains them all in order through repeated cascades.
        let mut w = CheckedWheel::new(64);
        let mut deadlines: Vec<u64> = (0..40).map(|i| 1u64 << (i % 38)).collect();
        deadlines.sort_unstable();
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(i, t(d));
        }
        let mut drained = Vec::new();
        while let Some(i) = w.pop_expired(t(u64::MAX)) {
            drained.push(deadlines[i]);
        }
        assert_eq!(drained.len(), deadlines.len());
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(drained, sorted, "drain order must be ascending");
    }

    /// Bounded-exhaustive micro-suite in the depth-5 tag-probe style:
    /// every op sequence of depth 5 over a capacity-2 wheel — op
    /// alphabet of 12 (arm/refresh/remove/pop × 2 indices, with a
    /// per-op time drawn from a 4-magnitude table spanning level-0
    /// through level-4 placements so cascades, fast-forwards, and the
    /// overdue lane are all reached) — checked against the scan model
    /// at every step via `CheckedWheel`.
    #[test]
    fn exhaustive_depth5_small_capacity() {
        // Time alphabet: same-instant, +1 ns, a level-1 hop, a deep
        // multi-level hop. Chosen per op by mixing the op code so the
        // enumeration still covers every (kind, index) × time pairing
        // across positions.
        const TIMES: [u64; 4] = [0, 1, 100, 1 << 20];
        const KINDS: usize = 4; // arm, refresh, remove, pop
        const IDXS: usize = 2;
        const OPS: usize = KINDS * IDXS; // 8
        let depth = 5usize;
        let total = OPS.pow(depth as u32) * 2; // 8^5 · 2 = 65536 sequences
        let mut runs = 0u64;
        // Enumerate op codes in base OPS, plus one extra base-2 digit
        // steering the time-table phase, keeping the space ~500k ops.
        for code in 0..(OPS.pow(depth as u32) * 2) {
            let phase = code % 2;
            let mut c = code / 2;
            let mut w = CheckedWheel::new(IDXS);
            let mut clock = 0u64; // enforce the monotone precondition
            for step in 0..depth {
                let op = c % OPS;
                c /= OPS;
                let kind = op % KINDS;
                let index = op / KINDS;
                let time = TIMES[(step + phase + op) % TIMES.len()];
                match kind {
                    0 => {
                        if !w.raw().contains(index) {
                            clock = clock.max(clock + time);
                            w.insert(index, t(clock));
                        }
                    }
                    1 => {
                        if w.raw().contains(index) {
                            clock = clock.max(clock + time);
                            w.refresh(index, t(clock));
                        }
                    }
                    2 => {
                        w.remove(index);
                    }
                    _ => {
                        // Pop at a threshold both behind and ahead of
                        // the clock across the enumeration.
                        let thr = if phase == 0 { clock } else { clock + time };
                        w.pop_expired(t(thr));
                    }
                }
            }
            runs += 1;
        }
        assert_eq!(runs as usize, total);
    }

    proptest! {
        /// Adversarial schedules: bursty arrivals, refresh storms, time
        /// jumps (including far jumps that force deep cascades and
        /// fast-forwards creating overdue inserts), random removes —
        /// the wheel must agree with the scan model at every step.
        #[test]
        fn wheel_equals_scan_model(
            ops in proptest::collection::vec(
                (0u8..8, 0usize..24, 0u64..1 << 40), 1..300),
        ) {
            let mut w = CheckedWheel::new(24);
            let mut clock = 0u64;
            for (kind, index, raw_t) in ops {
                match kind {
                    // Bias toward arm/refresh so the wheel fills up.
                    0..=2 => {
                        clock = clock.max(raw_t % (1 << 30));
                        if w.raw().contains(index) {
                            w.refresh(index, t(clock));
                        } else {
                            w.insert(index, t(clock));
                        }
                    }
                    3 => {
                        // Refresh storm: touch several indices at one
                        // instant (ties stress the FIFO order).
                        clock = clock.max(raw_t % (1 << 30));
                        for i in index..(index + 4).min(24) {
                            if w.raw().contains(i) {
                                w.refresh(i, t(clock));
                            } else {
                                w.insert(i, t(clock));
                            }
                        }
                    }
                    4 => { w.remove(index); }
                    5 => {
                        // Drain at a nearby threshold.
                        let thr = raw_t % (1 << 31);
                        while w.pop_expired(t(thr)).is_some() {}
                    }
                    6 => {
                        // Far time jump: deep cascade / fast-forward.
                        let thr = raw_t;
                        while w.pop_expired(t(thr)).is_some() {}
                    }
                    _ => { w.pop_expired(t(raw_t % (1 << 31))); }
                }
            }
            // Final total drain agrees too.
            while w.pop_expired(t(u64::MAX)).is_some() {}
            prop_assert_eq!(w.raw().len(), 0);
        }

        /// Monotone random deadlines drain in exactly sorted order for
        /// any threshold schedule.
        #[test]
        fn drain_is_globally_sorted(
            gaps in proptest::collection::vec(0u64..1 << 22, 1..64),
        ) {
            let mut w = TimerWheel::new(64);
            let mut clock = 0u64;
            let mut armed = Vec::new();
            for (i, g) in gaps.iter().enumerate() {
                clock += g;
                w.insert(i, t(clock));
                armed.push(clock);
            }
            let mut out = Vec::new();
            while let Some(i) = w.pop_expired(t(u64::MAX)) {
                out.push(armed[i]);
            }
            let mut sorted = armed.clone();
            sorted.sort_unstable();
            prop_assert_eq!(out, sorted);
            w.check_consistency();
        }
    }
}
