//! The expirator (`expirator.c`): the glue that expires flows.
//!
//! `expire_items` walks the [`DoubleChain`]'s LRU order, freeing every
//! index whose last activity is at or before the threshold, and erasing
//! the corresponding [`DoubleMap`] slot. This implements line 2 of the
//! paper's Fig. 6 (`expire_flows(t)`), with
//! `threshold = now - Texp` ⟺ `G.timestamp + Texp <= now`.
//!
//! Contract: afterwards, (a) every surviving chain timestamp is
//! `> threshold`, (b) chain and map agree on exactly which indices are
//! live, and (c) the number of removed items is returned. The glue has
//! its own contract because it spans two structures — this is where a
//! coherence bug (expiring from one structure but not the other) would
//! live, precisely the class of stateful bug the paper says Dobrescu et
//! al. could not catch.

use crate::dchain::DoubleChain;
use crate::dmap::{DmapValue, DoubleMap};
use crate::time::Time;
use crate::wheel::TimerWheel;

/// Expire every index whose timestamp is `<= threshold`, erasing both
/// the chain entry and the map slot. Returns how many were expired.
pub fn expire_items<V: DmapValue + Clone>(
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    threshold: Time,
) -> usize {
    let mut count = 0;
    while let Some(index) = chain.expire_one(threshold) {
        let erased = map.erase(index);
        debug_assert!(
            erased.is_some(),
            "chain/map coherence: expired index {index} had no map slot"
        );
        count += 1;
    }
    count
}

/// Expire every index whose deadline is `<= threshold`, driven by the
/// [`TimerWheel`] instead of the chain's LRU walk: pop due indices off
/// the wheel, free each from the chain, erase its map slot.
///
/// Same contract as [`expire_items`], plus exact-order agreement: the
/// wheel's drain order equals the chain's LRU expiry order (the
/// module-level order theorem in [`crate::wheel`]), and
/// [`DoubleChain::free_index`] pushes a freed index onto the free list
/// exactly as [`DoubleChain::expire_one`] would — so the post-states
/// of the two drains are identical, free-list order included. The
/// `debug_assert`s here pin that agreement on every pop; the
/// differential suites prove it end to end.
pub fn expire_items_wheel<V: DmapValue + Clone>(
    wheel: &mut TimerWheel,
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    threshold: Time,
) -> usize {
    let mut count = 0;
    while let Some(index) = wheel.pop_expired(threshold) {
        debug_assert_eq!(
            chain.oldest_timestamp(),
            chain.timestamp_of(index),
            "wheel/chain coherence: popped index {index} is not the LRU head's stamp"
        );
        debug_assert!(
            chain.timestamp_of(index).is_some_and(|t| t <= threshold),
            "wheel/chain coherence: popped index {index} is not due on the chain"
        );
        let freed = chain.free_index(index);
        debug_assert!(freed, "wheel/chain coherence: index {index} not allocated");
        let erased = map.erase(index);
        debug_assert!(
            erased.is_some(),
            "wheel/map coherence: expired index {index} had no map slot"
        );
        count += 1;
    }
    count
}

/// Expire under **per-class lifetimes** by scanning the chain's LRU
/// list: a flow of class `classes[slot]` stamped `ts` is dead once
/// `ts + lifetimes[class] <= now`. Due flows are freed in the canonical
/// merge order — ascending `(deadline, class, LRU position)` — which
/// [`expire_items_wheels`] reproduces exactly, so the two engines leave
/// byte-identical chain state (free-list order, hence future slot and
/// port assignment, included), mirroring the single-lifetime
/// [`expire_items`]/[`expire_items_wheel`] pair.
///
/// Note that with all lifetimes equal this does **not** reduce to
/// [`expire_items`]: equal-deadline ties across classes break by class
/// rank here, by global LRU order there. Callers therefore keep the
/// single-lifetime engines for homogeneous configurations and use the
/// classed engines only when lifetimes actually differ (the flow
/// manager does exactly this).
pub fn expire_items_classed<V: DmapValue + Clone>(
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    classes: &[u8],
    lifetimes: &[u64],
    now: Time,
) -> usize {
    let mut due: Vec<(u64, u8, usize)> = Vec::new();
    for (slot, stamp) in chain.iter_lru() {
        let class = classes[slot];
        let lifetime = lifetimes[usize::from(class)];
        // checked_add: a deadline past u64::MAX can never be due.
        if let Some(deadline) = stamp.nanos().checked_add(lifetime) {
            if deadline <= now.nanos() {
                due.push((deadline, class, slot));
            }
        }
    }
    // Stable by (deadline, class): each class's subsequence keeps its
    // LRU order — exactly the per-class wheel pop order.
    due.sort_by_key(|&(deadline, class, _)| (deadline, class));
    for &(_, _, slot) in &due {
        let freed = chain.free_index(slot);
        debug_assert!(freed, "classed expiry: slot {slot} not allocated");
        let erased = map.erase(slot);
        debug_assert!(
            erased.is_some(),
            "chain/map coherence: expired slot {slot} had no map slot"
        );
    }
    due.len()
}

/// Per-class-lifetime expiry driven by **one [`TimerWheel`] per class**,
/// each keyed by last-activity stamp: class `c` is due once its stamp
/// is `<= now - lifetimes[c]`. Pops of all classes are merged in
/// ascending `(deadline, class, within-class pop order)` before any
/// slot is freed, which — because each wheel's pop order equals its
/// class's LRU subsequence — is byte-identical to
/// [`expire_items_classed`], free-list order included. `wheels[c]` must
/// be armed with exactly the allocated slots of class `c`.
pub fn expire_items_wheels<V: DmapValue + Clone>(
    wheels: &mut [TimerWheel],
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    lifetimes: &[u64],
    now: Time,
) -> usize {
    debug_assert_eq!(wheels.len(), lifetimes.len());
    let mut due: Vec<(u64, u8, usize)> = Vec::new();
    for (class, wheel) in wheels.iter_mut().enumerate() {
        let lifetime = lifetimes[class];
        // checked_sub: while now < lifetime nothing of this class can
        // have expired yet (the spec's expiry_threshold_for shape).
        let Some(threshold) = now.nanos().checked_sub(lifetime) else {
            continue;
        };
        while let Some(slot) = wheel.pop_expired(Time::ZERO.plus(threshold)) {
            let stamp = chain
                .timestamp_of(slot)
                .expect("wheel/chain coherence: popped slot not allocated");
            // No overflow: stamp <= threshold = now - lifetime.
            due.push((stamp.nanos() + lifetime, class as u8, slot));
        }
    }
    due.sort_by_key(|&(deadline, class, _)| (deadline, class));
    for &(_, _, slot) in &due {
        let freed = chain.free_index(slot);
        debug_assert!(freed, "classed expiry: slot {slot} not allocated");
        let erased = map.erase(slot);
        debug_assert!(
            erased.is_some(),
            "wheel/map coherence: expired slot {slot} had no map slot"
        );
    }
    due.len()
}

/// Expire at most `limit` items (some NFs bound per-packet expiry work to
/// keep worst-case latency flat; VigNAT expires exhaustively, which is
/// why its probe-flow latency stays flat only while expiry is cheap).
pub fn expire_items_bounded<V: DmapValue + Clone>(
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    threshold: Time,
    limit: usize,
) -> usize {
    let mut count = 0;
    while count < limit {
        match chain.expire_one(threshold) {
            Some(index) => {
                let erased = map.erase(index);
                debug_assert!(erased.is_some(), "chain/map coherence violated");
                count += 1;
            }
            None => break,
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Item {
        a: u64,
        b: u64,
    }

    impl DmapValue for Item {
        type KeyA = u64;
        type KeyB = u64;

        fn key_a(&self) -> u64 {
            self.a
        }
        fn key_b(&self) -> u64 {
            self.b
        }
    }

    fn insert(chain: &mut DoubleChain, map: &mut DoubleMap<Item>, a: u64, t: Time) -> usize {
        let idx = chain.allocate(t).unwrap();
        map.put(idx, Item { a, b: a + 1000 }).unwrap();
        idx
    }

    #[test]
    fn expires_only_stale_items() {
        let mut chain = DoubleChain::new(8);
        let mut map: DoubleMap<Item> = DoubleMap::new(8);
        insert(&mut chain, &mut map, 1, Time::from_secs(1));
        insert(&mut chain, &mut map, 2, Time::from_secs(2));
        let live = insert(&mut chain, &mut map, 3, Time::from_secs(10));

        let n = expire_items(&mut chain, &mut map, Time::from_secs(5));
        assert_eq!(n, 2);
        assert_eq!(map.size(), 1);
        assert_eq!(chain.size(), 1);
        assert!(chain.is_allocated(live));
        assert_eq!(map.get_by_a(&3), Some(live));
        assert_eq!(map.get_by_a(&1), None);
        assert_eq!(map.get_by_b(&1001), None);
    }

    #[test]
    fn expire_nothing_when_all_fresh() {
        let mut chain = DoubleChain::new(4);
        let mut map: DoubleMap<Item> = DoubleMap::new(4);
        insert(&mut chain, &mut map, 1, Time::from_secs(100));
        assert_eq!(expire_items(&mut chain, &mut map, Time::from_secs(99)), 0);
        assert_eq!(map.size(), 1);
    }

    #[test]
    fn bounded_expiry_stops_at_limit() {
        let mut chain = DoubleChain::new(8);
        let mut map: DoubleMap<Item> = DoubleMap::new(8);
        for i in 0..6 {
            insert(&mut chain, &mut map, i, Time::from_secs(i));
        }
        let n = expire_items_bounded(&mut chain, &mut map, Time::from_secs(100), 4);
        assert_eq!(n, 4);
        assert_eq!(map.size(), 2);
        // and the survivors are the freshest two (LRU order respected)
        assert!(map.get_by_a(&4).is_some());
        assert!(map.get_by_a(&5).is_some());
    }

    #[test]
    fn expired_slots_are_immediately_reusable() {
        let mut chain = DoubleChain::new(2);
        let mut map: DoubleMap<Item> = DoubleMap::new(2);
        insert(&mut chain, &mut map, 1, Time::from_secs(1));
        insert(&mut chain, &mut map, 2, Time::from_secs(1));
        assert!(chain.is_full());
        expire_items(&mut chain, &mut map, Time::from_secs(1));
        assert_eq!(map.size(), 0);
        // full capacity available again
        insert(&mut chain, &mut map, 10, Time::from_secs(2));
        insert(&mut chain, &mut map, 11, Time::from_secs(2));
        assert!(chain.is_full());
    }

    proptest! {
        /// The wheel-driven drain is byte-identical to the scan drain:
        /// same expired count, same surviving LRU sequence, same map
        /// contents — and the same *free-list order*, observed by
        /// draining both chains through fresh allocations afterwards
        /// (this is what makes wheel mode reuse ports in the exact
        /// sequence scan mode would).
        #[test]
        fn wheel_drain_equals_scan_drain(
            stamps in proptest::collection::vec(0u64..60, 1..28),
            rejuv in proptest::collection::vec((0usize..28, 0u64..60), 0..16),
            thr in 0u64..80,
        ) {
            let cap = 32;
            let mut chain_s = DoubleChain::new(cap);
            let mut map_s: DoubleMap<Item> = DoubleMap::new(cap);
            let mut chain_w = DoubleChain::new(cap);
            let mut map_w: DoubleMap<Item> = DoubleMap::new(cap);
            let mut wheel = crate::wheel::TimerWheel::new(cap);

            let mut sorted = stamps;
            sorted.sort_unstable();
            let mut clock = 0u64;
            for (i, s) in sorted.iter().enumerate() {
                clock = clock.max(*s);
                let t = Time::from_secs(clock);
                let a = insert(&mut chain_s, &mut map_s, i as u64, t);
                let b = insert(&mut chain_w, &mut map_w, i as u64, t);
                prop_assert_eq!(a, b);
                wheel.insert(b, t);
            }
            // A monotone rejuvenation storm (the refresh path).
            for (pick, bump) in rejuv {
                if pick < sorted.len() && chain_s.is_allocated(pick) {
                    clock += bump;
                    let t = Time::from_secs(clock);
                    chain_s.rejuvenate(pick, t);
                    chain_w.rejuvenate(pick, t);
                    wheel.refresh(pick, t);
                }
            }

            let thr_t = Time::from_secs(thr);
            let n_scan = expire_items(&mut chain_s, &mut map_s, thr_t);
            let n_wheel = expire_items_wheel(&mut wheel, &mut chain_w, &mut map_w, thr_t);
            prop_assert_eq!(n_scan, n_wheel);
            let lru_s: Vec<_> = chain_s.iter_lru().collect();
            let lru_w: Vec<_> = chain_w.iter_lru().collect();
            prop_assert_eq!(lru_s, lru_w);
            prop_assert_eq!(map_s.size(), map_w.size());
            wheel.check_consistency();
            // Free-list order: drain both chains dry and compare the
            // allocation sequences.
            let t_next = Time::from_secs(clock + 1);
            loop {
                let a = chain_s.allocate(t_next);
                let b = chain_w.allocate(t_next);
                prop_assert_eq!(&a, &b, "free-list order diverged");
                if a.is_err() { break; }
            }
        }

        /// The per-class engines agree byte for byte: same expired
        /// count, same surviving LRU sequence, same map contents, and
        /// the same free-list order — for arbitrary class assignments,
        /// lifetime triples, rejuvenation storms, and thresholds.
        #[test]
        fn classed_wheels_equal_classed_scan(
            arrivals in proptest::collection::vec((0u64..60, 0u8..3), 1..28),
            rejuv in proptest::collection::vec((0usize..28, 0u64..60), 0..16),
            lifetimes in (1u64..40, 1u64..40, 1u64..40),
            now in 0u64..120,
        ) {
            let cap = 32;
            let mut chain_s = DoubleChain::new(cap);
            let mut map_s: DoubleMap<Item> = DoubleMap::new(cap);
            let mut chain_w = DoubleChain::new(cap);
            let mut map_w: DoubleMap<Item> = DoubleMap::new(cap);
            let mut wheels: Vec<crate::wheel::TimerWheel> =
                (0..3).map(|_| crate::wheel::TimerWheel::new(cap)).collect();
            let mut classes = vec![0u8; cap];

            let mut sorted = arrivals;
            sorted.sort_unstable_by_key(|&(s, _)| s);
            let mut clock = 0u64;
            for (i, &(s, class)) in sorted.iter().enumerate() {
                clock = clock.max(s);
                let t = Time::from_secs(clock);
                let a = insert(&mut chain_s, &mut map_s, i as u64, t);
                let b = insert(&mut chain_w, &mut map_w, i as u64, t);
                prop_assert_eq!(a, b);
                classes[b] = class;
                wheels[class as usize].insert(b, t);
            }
            for (pick, bump) in rejuv {
                if pick < sorted.len() && chain_s.is_allocated(pick) {
                    clock += bump;
                    let t = Time::from_secs(clock);
                    chain_s.rejuvenate(pick, t);
                    chain_w.rejuvenate(pick, t);
                    wheels[classes[pick] as usize].refresh(pick, t);
                }
            }

            let lifetimes_ns: Vec<u64> = [lifetimes.0, lifetimes.1, lifetimes.2]
                .iter().map(|l| Time::from_secs(*l).nanos()).collect();
            let now_t = Time::from_secs(now);
            let n_scan = expire_items_classed(
                &mut chain_s, &mut map_s, &classes, &lifetimes_ns, now_t);
            let n_wheel = expire_items_wheels(
                &mut wheels, &mut chain_w, &mut map_w, &lifetimes_ns, now_t);
            prop_assert_eq!(n_scan, n_wheel);
            let lru_s: Vec<_> = chain_s.iter_lru().collect();
            let lru_w: Vec<_> = chain_w.iter_lru().collect();
            prop_assert_eq!(lru_s, lru_w);
            prop_assert_eq!(map_s.size(), map_w.size());
            for w in &wheels {
                w.check_consistency();
            }
            // Free-list order: drain both chains dry and compare the
            // allocation sequences (this is what pins port-reuse order).
            let t_next = Time::from_secs(clock + 1);
            loop {
                let a = chain_s.allocate(t_next);
                let b = chain_w.allocate(t_next);
                prop_assert_eq!(&a, &b, "free-list order diverged");
                if a.is_err() { break; }
            }
        }

        /// Post-state properties for arbitrary histories: survivors are
        /// exactly the items stamped after the threshold, and chain/map
        /// stay coherent.
        #[test]
        fn expiry_postcondition(
            stamps in proptest::collection::vec(0u64..50, 1..24),
            thr in 0u64..50,
        ) {
            let mut sorted = stamps;
            sorted.sort_unstable();
            let mut chain = DoubleChain::new(32);
            let mut map: DoubleMap<Item> = DoubleMap::new(32);
            for (i, s) in sorted.iter().enumerate() {
                insert(&mut chain, &mut map, i as u64, Time::from_secs(*s));
            }
            let expired = expire_items(&mut chain, &mut map, Time::from_secs(thr));
            let expected = sorted.iter().filter(|&&s| s <= thr).count();
            prop_assert_eq!(expired, expected);
            prop_assert_eq!(chain.size(), map.size());
            for (idx, t) in chain.iter_lru() {
                prop_assert!(t > Time::from_secs(thr));
                prop_assert!(map.get(idx).is_some(), "chain/map coherence");
            }
        }
    }
}
