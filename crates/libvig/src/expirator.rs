//! The expirator (`expirator.c`): the glue that expires flows.
//!
//! `expire_items` walks the [`DoubleChain`]'s LRU order, freeing every
//! index whose last activity is at or before the threshold, and erasing
//! the corresponding [`DoubleMap`] slot. This implements line 2 of the
//! paper's Fig. 6 (`expire_flows(t)`), with
//! `threshold = now - Texp` ⟺ `G.timestamp + Texp <= now`.
//!
//! Contract: afterwards, (a) every surviving chain timestamp is
//! `> threshold`, (b) chain and map agree on exactly which indices are
//! live, and (c) the number of removed items is returned. The glue has
//! its own contract because it spans two structures — this is where a
//! coherence bug (expiring from one structure but not the other) would
//! live, precisely the class of stateful bug the paper says Dobrescu et
//! al. could not catch.

use crate::dchain::DoubleChain;
use crate::dmap::{DmapValue, DoubleMap};
use crate::time::Time;

/// Expire every index whose timestamp is `<= threshold`, erasing both
/// the chain entry and the map slot. Returns how many were expired.
pub fn expire_items<V: DmapValue + Clone>(
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    threshold: Time,
) -> usize {
    let mut count = 0;
    while let Some(index) = chain.expire_one(threshold) {
        let erased = map.erase(index);
        debug_assert!(
            erased.is_some(),
            "chain/map coherence: expired index {index} had no map slot"
        );
        count += 1;
    }
    count
}

/// Expire at most `limit` items (some NFs bound per-packet expiry work to
/// keep worst-case latency flat; VigNAT expires exhaustively, which is
/// why its probe-flow latency stays flat only while expiry is cheap).
pub fn expire_items_bounded<V: DmapValue + Clone>(
    chain: &mut DoubleChain,
    map: &mut DoubleMap<V>,
    threshold: Time,
    limit: usize,
) -> usize {
    let mut count = 0;
    while count < limit {
        match chain.expire_one(threshold) {
            Some(index) => {
                let erased = map.erase(index);
                debug_assert!(erased.is_some(), "chain/map coherence violated");
                count += 1;
            }
            None => break,
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Item {
        a: u64,
        b: u64,
    }

    impl DmapValue for Item {
        type KeyA = u64;
        type KeyB = u64;

        fn key_a(&self) -> u64 {
            self.a
        }
        fn key_b(&self) -> u64 {
            self.b
        }
    }

    fn insert(chain: &mut DoubleChain, map: &mut DoubleMap<Item>, a: u64, t: Time) -> usize {
        let idx = chain.allocate(t).unwrap();
        map.put(idx, Item { a, b: a + 1000 }).unwrap();
        idx
    }

    #[test]
    fn expires_only_stale_items() {
        let mut chain = DoubleChain::new(8);
        let mut map: DoubleMap<Item> = DoubleMap::new(8);
        insert(&mut chain, &mut map, 1, Time::from_secs(1));
        insert(&mut chain, &mut map, 2, Time::from_secs(2));
        let live = insert(&mut chain, &mut map, 3, Time::from_secs(10));

        let n = expire_items(&mut chain, &mut map, Time::from_secs(5));
        assert_eq!(n, 2);
        assert_eq!(map.size(), 1);
        assert_eq!(chain.size(), 1);
        assert!(chain.is_allocated(live));
        assert_eq!(map.get_by_a(&3), Some(live));
        assert_eq!(map.get_by_a(&1), None);
        assert_eq!(map.get_by_b(&1001), None);
    }

    #[test]
    fn expire_nothing_when_all_fresh() {
        let mut chain = DoubleChain::new(4);
        let mut map: DoubleMap<Item> = DoubleMap::new(4);
        insert(&mut chain, &mut map, 1, Time::from_secs(100));
        assert_eq!(expire_items(&mut chain, &mut map, Time::from_secs(99)), 0);
        assert_eq!(map.size(), 1);
    }

    #[test]
    fn bounded_expiry_stops_at_limit() {
        let mut chain = DoubleChain::new(8);
        let mut map: DoubleMap<Item> = DoubleMap::new(8);
        for i in 0..6 {
            insert(&mut chain, &mut map, i, Time::from_secs(i));
        }
        let n = expire_items_bounded(&mut chain, &mut map, Time::from_secs(100), 4);
        assert_eq!(n, 4);
        assert_eq!(map.size(), 2);
        // and the survivors are the freshest two (LRU order respected)
        assert!(map.get_by_a(&4).is_some());
        assert!(map.get_by_a(&5).is_some());
    }

    #[test]
    fn expired_slots_are_immediately_reusable() {
        let mut chain = DoubleChain::new(2);
        let mut map: DoubleMap<Item> = DoubleMap::new(2);
        insert(&mut chain, &mut map, 1, Time::from_secs(1));
        insert(&mut chain, &mut map, 2, Time::from_secs(1));
        assert!(chain.is_full());
        expire_items(&mut chain, &mut map, Time::from_secs(1));
        assert_eq!(map.size(), 0);
        // full capacity available again
        insert(&mut chain, &mut map, 10, Time::from_secs(2));
        insert(&mut chain, &mut map, 11, Time::from_secs(2));
        assert!(chain.is_full());
    }

    proptest! {
        /// Post-state properties for arbitrary histories: survivors are
        /// exactly the items stamped after the threshold, and chain/map
        /// stay coherent.
        #[test]
        fn expiry_postcondition(
            stamps in proptest::collection::vec(0u64..50, 1..24),
            thr in 0u64..50,
        ) {
            let mut sorted = stamps;
            sorted.sort_unstable();
            let mut chain = DoubleChain::new(32);
            let mut map: DoubleMap<Item> = DoubleMap::new(32);
            for (i, s) in sorted.iter().enumerate() {
                insert(&mut chain, &mut map, i as u64, Time::from_secs(*s));
            }
            let expired = expire_items(&mut chain, &mut map, Time::from_secs(thr));
            let expected = sorted.iter().filter(|&&s| s <= thr).count();
            prop_assert_eq!(expired, expected);
            prop_assert_eq!(chain.size(), map.size());
            for (idx, t) in chain.iter_lru() {
                prop_assert!(t > Time::from_secs(thr));
                prop_assert!(map.get(idx).is_some(), "chain/map coherence");
            }
        }
    }
}
