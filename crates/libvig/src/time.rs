//! The `nf_time` abstraction.
//!
//! libVig exposes time to NFs through an interface rather than a syscall
//! so that (a) the symbolic models can return symbolic time, and (b) the
//! simulator can drive NFs with a virtual clock. Time is a monotonic
//! nanosecond counter; the NAT only ever compares times and adds
//! constants, so a plain `u64` with checked arithmetic suffices.

use std::cell::Cell;
use std::rc::Rc;

/// A point in time, in nanoseconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The epoch.
    pub const ZERO: Time = Time(0);

    /// Build from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Build from milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Build from microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Nanosecond value.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in nanoseconds.
    #[must_use]
    pub const fn plus(self, nanos: u64) -> Time {
        Time(self.0.saturating_add(nanos))
    }

    /// Saturating subtraction of a duration in nanoseconds. The NAT uses
    /// this to compute the expiry threshold `now - Texp`; saturating at
    /// zero means "nothing can be expired yet", which is the correct
    /// semantics right after boot.
    #[must_use]
    pub const fn minus(self, nanos: u64) -> Time {
        Time(self.0.saturating_sub(nanos))
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}.{:09}s",
            self.0 / 1_000_000_000,
            self.0 % 1_000_000_000
        )
    }
}

/// Source of current time for an NF.
pub trait Clock {
    /// The current time. Implementations must be monotonic: successive
    /// calls never go backwards. (The dchain contracts rely on this.)
    fn now(&self) -> Time;
}

/// A hand-driven clock for simulation and tests.
///
/// Cloning shares the underlying cell, so a testbed can hold one handle
/// while the NF under test holds another.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    t: Rc<Cell<u64>>,
}

impl VirtualClock {
    /// A clock starting at `t`.
    pub fn starting_at(t: Time) -> VirtualClock {
        VirtualClock {
            t: Rc::new(Cell::new(t.0)),
        }
    }

    /// Advance by `nanos`. Advancing is the only mutation — the clock can
    /// never go backwards, preserving the `Clock` monotonicity contract.
    pub fn advance(&self, nanos: u64) {
        self.t.set(self.t.get().saturating_add(nanos));
    }

    /// Advance to an absolute time; ignored if `t` is in the past.
    pub fn advance_to(&self, t: Time) {
        if t.0 > self.t.get() {
            self.t.set(t.0);
        }
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Time {
        Time(self.t.get())
    }
}

/// Wall-clock time from a monotonic OS source.
#[derive(Debug)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Time {
        Time(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Time::from_secs(2), Time(2_000_000_000));
        assert_eq!(Time::from_millis(3), Time(3_000_000));
        assert_eq!(Time::from_micros(5), Time(5_000));
    }

    #[test]
    fn minus_saturates_at_zero() {
        assert_eq!(Time::from_secs(1).minus(2_000_000_000), Time::ZERO);
    }

    #[test]
    fn plus_saturates_at_max() {
        assert_eq!(Time(u64::MAX).plus(10), Time(u64::MAX));
    }

    #[test]
    fn virtual_clock_advances_monotonically() {
        let c = VirtualClock::default();
        assert_eq!(c.now(), Time::ZERO);
        c.advance(100);
        assert_eq!(c.now(), Time(100));
        c.advance_to(Time(50)); // in the past: ignored
        assert_eq!(c.now(), Time(100));
        c.advance_to(Time(500));
        assert_eq!(c.now(), Time(500));
    }

    #[test]
    fn virtual_clock_handles_share_state() {
        let a = VirtualClock::default();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), Time(42));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let t1 = c.now();
        let t2 = c.now();
        assert!(t2 >= t1);
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_secs(1).plus(5).to_string(), "1.000000005s");
    }
}
