//! The batcher (`batcher.c`): collects homogeneous items until the
//! caller drains them all at once.
//!
//! VigNAT's TX path groups outgoing packets into bursts before handing
//! them to DPDK; the batcher is the structure that holds a burst in
//! flight. Contract: items come back in insertion order, exactly once,
//! and `take_all` leaves the batcher empty.

use crate::Full;
use core::fmt::Debug;

/// Preallocated item batcher.
#[derive(Debug, Clone)]
pub struct Batcher<T> {
    items: Vec<Option<T>>,
    len: usize,
}

impl<T> Batcher<T> {
    /// Preallocate space for `capacity` items per batch.
    pub fn new(capacity: usize) -> Batcher<T> {
        assert!(capacity > 0, "batcher capacity must be non-zero");
        Batcher {
            items: (0..capacity).map(|_| None).collect(),
            len: 0,
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Items currently batched.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is batched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the batch is complete and must be drained.
    pub fn is_full(&self) -> bool {
        self.len == self.items.len()
    }

    /// Add an item to the batch.
    pub fn push(&mut self, item: T) -> Result<(), Full> {
        if self.is_full() {
            return Err(Full);
        }
        self.items[self.len] = Some(item);
        self.len += 1;
        Ok(())
    }

    /// Drain the whole batch in insertion order, leaving it empty.
    pub fn take_all(&mut self) -> impl Iterator<Item = T> + '_ {
        let n = self.len;
        self.len = 0;
        self.items[..n]
            .iter_mut()
            .map(|slot| slot.take().expect("batched slot holds a value"))
    }
}

/// Implementation + `Vec` model in lockstep (P3).
#[derive(Debug, Clone)]
pub struct CheckedBatcher<T: Clone + PartialEq + Debug> {
    imp: Batcher<T>,
    model: Vec<T>,
}

impl<T: Clone + PartialEq + Debug> CheckedBatcher<T> {
    /// Preallocate, like [`Batcher::new`].
    pub fn new(capacity: usize) -> Self {
        CheckedBatcher {
            imp: Batcher::new(capacity),
            model: Vec::new(),
        }
    }

    /// Contract-checked push.
    pub fn push(&mut self, item: T) -> Result<(), Full> {
        let r = self.imp.push(item.clone());
        match r {
            Ok(()) => {
                assert!(
                    self.model.len() < self.imp.capacity(),
                    "impl accepted push when full"
                );
                self.model.push(item);
            }
            Err(Full) => assert_eq!(self.model.len(), self.imp.capacity(), "Full below capacity"),
        }
        assert_eq!(self.imp.len(), self.model.len());
        r
    }

    /// Contract-checked drain: insertion order, exactly once, empties the
    /// batcher.
    pub fn take_all(&mut self) -> Vec<T> {
        let got: Vec<T> = self.imp.take_all().collect();
        let spec = core::mem::take(&mut self.model);
        assert_eq!(got, spec, "take_all diverged from model");
        assert!(self.imp.is_empty(), "take_all must leave the batcher empty");
        got
    }

    /// Contract-checked fullness.
    pub fn is_full(&self) -> bool {
        let got = self.imp.is_full();
        assert_eq!(got, self.model.len() == self.imp.capacity());
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batch_and_drain() {
        let mut b = CheckedBatcher::new(3);
        b.push(1).unwrap();
        b.push(2).unwrap();
        assert_eq!(b.take_all(), vec![1, 2]);
        assert_eq!(b.take_all(), Vec::<i32>::new());
    }

    #[test]
    fn full_batch_rejects_then_drains() {
        let mut b = CheckedBatcher::new(2);
        b.push(10).unwrap();
        b.push(20).unwrap();
        assert!(b.is_full());
        assert_eq!(b.push(30), Err(Full));
        assert_eq!(b.take_all(), vec![10, 20]);
        b.push(30).unwrap();
        assert_eq!(b.take_all(), vec![30]);
    }

    #[test]
    fn reuse_after_drain_many_rounds() {
        let mut b = CheckedBatcher::new(4);
        for round in 0..8 {
            for i in 0..3 {
                b.push(round * 10 + i).unwrap();
            }
            assert_eq!(
                b.take_all(),
                vec![round * 10, round * 10 + 1, round * 10 + 2]
            );
        }
    }

    proptest! {
        #[test]
        fn random_ops_refine_model(ops in proptest::collection::vec(any::<Option<u8>>(), 0..150)) {
            let mut b = CheckedBatcher::new(6);
            for op in ops {
                match op {
                    Some(v) => { let _ = b.push(v); }
                    None => { b.take_all(); }
                }
            }
        }
    }
}
