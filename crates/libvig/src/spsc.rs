//! Lock-free bounded single-producer/single-consumer ring of `u64`
//! words — the queue that connects the shard runtime's RSS dispatcher
//! to its pinned workers (`netsim::runtime`).
//!
//! ## Design
//!
//! A power-of-two array of [`AtomicU64`] slots with monotonically
//! increasing producer/consumer cursors, each on its own cache line
//! (`#[repr(align(64))]` padding) so the two sides never false-share.
//! [`Producer::push_slice`] and [`Consumer::pop_into`] move batches
//! with one cursor publication per call, which is what makes the
//! word-at-a-time framing of whole packet bursts cheap.
//!
//! The crate-wide `#![forbid(unsafe_code)]` applies here too: unlike
//! the usual `UnsafeCell` SPSC ring, every slot is itself an atomic, so
//! even a protocol bug could only ever produce a stale *value*, never
//! undefined behaviour. The protocol is the classic two-cursor one:
//!
//! * the producer owns `tail`: it writes slots `[head, head+cap)` only,
//!   checking the consumer's published `head` (Acquire) before reusing
//!   a slot, and publishes new items with a Release store of `tail`;
//! * the consumer owns `head`: it reads slots below the producer's
//!   published `tail` (Acquire) and frees them with a Release store of
//!   `head`.
//!
//! Each side caches the other's cursor and refreshes it only when the
//! cached value would block progress, so the steady-state fast path
//! touches one shared cache line per batch, not per word.
//!
//! Both endpoints are `Send` (move each to its thread); neither is
//! `Sync` nor `Clone`, so single-producer/single-consumer holds by
//! construction. Correctness is covered three ways below: proptest
//! op sequences against a `VecDeque` oracle (wraparound, full/empty
//! boundaries, batched ops), a bounded-exhaustive enumeration of every
//! producer/consumer interleaving at small sizes against the same
//! oracle, and a two-thread stress transfer that must deliver every
//! word in order.

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A value alone on its cache line, so the producer's and consumer's
/// cursors never share one (the classic SPSC false-sharing fix).
#[repr(align(64))]
struct CachePadded<T>(T);

/// The shared ring storage. Users never hold this directly; see
/// [`channel`] for the producer/consumer pair.
struct Shared {
    /// Power-of-two slot array; a cursor's slot is `cursor & mask`.
    slots: Box<[AtomicU64]>,
    mask: usize,
    /// Consumer cursor: everything below it has been popped.
    head: CachePadded<AtomicUsize>,
    /// Producer cursor: everything below it has been pushed.
    tail: CachePadded<AtomicUsize>,
}

/// Create a bounded SPSC ring holding at least `capacity` words
/// (rounded up to a power of two, minimum 2). Returns the two
/// endpoints; move each to its thread.
pub fn channel(capacity: usize) -> (Producer, Consumer) {
    let cap = capacity.max(2).next_power_of_two();
    let shared = Arc::new(Shared {
        slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

/// The producing endpoint of an SPSC [`channel`]. `Send` but not
/// `Clone`: exactly one producer exists.
pub struct Producer {
    shared: Arc<Shared>,
    /// Local mirror of the published tail (we are its only writer).
    tail: usize,
    /// Last observed consumer cursor; refreshed only when it blocks.
    head_cache: usize,
}

impl Producer {
    /// Slot count of the ring (the capacity pushes block against).
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Words currently in flight (pushed, not yet popped), as visible
    /// from this side.
    pub fn len(&self) -> usize {
        self.tail
            .wrapping_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// True when nothing is in flight, as visible from this side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one word. Returns `false` (ring full) without blocking.
    pub fn try_push(&mut self, word: u64) -> bool {
        self.push_slice(core::slice::from_ref(&word)) == 1
    }

    /// Push as many words of `words` as fit, in order, with a single
    /// cursor publication. Returns how many were pushed (0 when full).
    pub fn push_slice(&mut self, words: &[u64]) -> usize {
        let cap = self.capacity();
        let mut free = cap - self.tail.wrapping_sub(self.head_cache);
        if free < words.len() {
            // The cached consumer cursor would block us; refresh once.
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            free = cap - self.tail.wrapping_sub(self.head_cache);
        }
        let n = words.len().min(free);
        if n == 0 {
            return 0;
        }
        for (i, &w) in words[..n].iter().enumerate() {
            // Relaxed is enough: the Release store of `tail` below
            // publishes these writes to the consumer's Acquire load.
            self.shared.slots[self.tail.wrapping_add(i) & self.shared.mask]
                .store(w, Ordering::Relaxed);
        }
        self.tail = self.tail.wrapping_add(n);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        n
    }
}

/// The consuming endpoint of an SPSC [`channel`]. `Send` but not
/// `Clone`: exactly one consumer exists.
pub struct Consumer {
    shared: Arc<Shared>,
    /// Local mirror of the published head (we are its only writer).
    head: usize,
    /// Last observed producer cursor; refreshed only when empty.
    tail_cache: usize,
}

impl Consumer {
    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// Words available to pop after refreshing the producer cursor
    /// only if the cached view cannot satisfy `want` — the mirror of
    /// the producer's head-cache policy.
    fn available(&mut self, want: usize) -> usize {
        let mut avail = self.tail_cache.wrapping_sub(self.head);
        if avail < want {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            avail = self.tail_cache.wrapping_sub(self.head);
        }
        avail
    }

    /// Words available to pop right now.
    pub fn len(&mut self) -> usize {
        self.available(usize::MAX)
    }

    /// True when nothing is available right now.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pop one word, `None` (ring empty) without blocking.
    pub fn try_pop(&mut self) -> Option<u64> {
        let mut out = [0u64; 1];
        (self.pop_into(&mut out) == 1).then_some(out[0])
    }

    /// Pop up to `out.len()` words into `out`, in order, with a single
    /// cursor publication. Returns how many were popped (0 when empty).
    pub fn pop_into(&mut self, out: &mut [u64]) -> usize {
        let n = out.len().min(self.available(out.len()));
        if n == 0 {
            return 0;
        }
        for (i, slot) in out[..n].iter_mut().enumerate() {
            // Relaxed read: ordered after the producer's writes by the
            // Acquire load of `tail` in `len`, and the slot cannot be
            // overwritten until we publish `head` below.
            *slot = self.shared.slots[self.head.wrapping_add(i) & self.shared.mask]
                .load(Ordering::Relaxed);
        }
        self.head = self.head.wrapping_add(n);
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Append up to `max` available words to `out` (convenience over
    /// [`Consumer::pop_into`] for accumulating decoders). Returns how
    /// many were appended.
    pub fn pop_extend(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
        let avail = self.available(max).min(max);
        if avail == 0 {
            return 0;
        }
        let start = out.len();
        out.resize(start + avail, 0);
        let n = self.pop_into(&mut out[start..]);
        out.truncate(start + n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Reference semantics: a capacity-bounded FIFO.
    struct Oracle {
        q: VecDeque<u64>,
        cap: usize,
    }

    impl Oracle {
        fn push(&mut self, w: u64) -> bool {
            if self.q.len() == self.cap {
                return false;
            }
            self.q.push_back(w);
            true
        }

        fn pop(&mut self) -> Option<u64> {
            self.q.pop_front()
        }
    }

    #[test]
    fn fills_to_capacity_then_rejects() {
        let (mut tx, mut rx) = channel(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            assert!(tx.try_push(i), "push {i} within capacity");
        }
        assert!(!tx.try_push(99), "full ring must reject");
        assert_eq!(rx.try_pop(), Some(0));
        assert!(tx.try_push(99), "freed slot is reusable");
        assert_eq!(
            (1..4).chain([99]).collect::<Vec<_>>(),
            std::iter::from_fn(|| rx.try_pop()).collect::<Vec<_>>(),
            "FIFO order across the wrap"
        );
        assert_eq!(rx.try_pop(), None, "empty ring must reject");
    }

    #[test]
    fn batched_ops_split_at_boundaries() {
        let (mut tx, mut rx) = channel(8);
        let words: Vec<u64> = (0..13).collect();
        assert_eq!(tx.push_slice(&words), 8, "batch clamps at capacity");
        let mut out = [0u64; 16];
        assert_eq!(rx.pop_into(&mut out[..5]), 5, "batch pop clamps at ask");
        assert_eq!(&out[..5], &[0, 1, 2, 3, 4]);
        assert_eq!(tx.push_slice(&words[8..]), 5, "freed space, rest fits");
        let n = rx.pop_into(&mut out);
        assert_eq!(n, 8);
        assert_eq!(&out[..n], &[5, 6, 7, 8, 9, 10, 11, 12]);
        assert_eq!(rx.pop_into(&mut out), 0);
        assert_eq!(tx.push_slice(&[]), 0, "empty slice is a no-op");
    }

    #[test]
    fn many_wraps_preserve_order() {
        // Cursor arithmetic must survive thousands of wraps of a tiny
        // ring (the wrapping_sub length math is what's under test).
        let (mut tx, mut rx) = channel(2);
        for i in 0..10_000u64 {
            assert!(tx.try_push(i));
            if i % 2 == 1 {
                assert_eq!(rx.try_pop(), Some(i - 1));
                assert_eq!(rx.try_pop(), Some(i));
            }
        }
    }

    /// Every interleaving of `pushes` pushes and `pops` pops (at small
    /// bounded sizes) behaves exactly like the FIFO oracle — the
    /// loom-style exhaustive schedule exploration, at operation
    /// granularity, that a vendored-deps workspace can afford.
    #[test]
    fn exhaustive_interleavings_match_oracle() {
        for cap in [2usize, 4] {
            let (pushes, pops) = (5u32, 5u32);
            let total = pushes + pops;
            // Each bitmask with `pushes` set bits is one interleaving:
            // bit i set => operation i is a push.
            for mask in 0u32..(1 << total) {
                if mask.count_ones() != pushes {
                    continue;
                }
                let (mut tx, mut rx) = channel(cap);
                let mut oracle = Oracle {
                    q: VecDeque::new(),
                    cap: tx.capacity(),
                };
                let mut next = 0u64;
                for i in 0..total {
                    if mask & (1 << i) != 0 {
                        assert_eq!(
                            tx.try_push(next),
                            oracle.push(next),
                            "push diverged (cap {cap}, mask {mask:#b}, op {i})"
                        );
                        next += 1;
                    } else {
                        assert_eq!(
                            rx.try_pop(),
                            oracle.pop(),
                            "pop diverged (cap {cap}, mask {mask:#b}, op {i})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_threads_deliver_every_word_in_order() {
        // A tiny ring forces constant wraparound and full/empty
        // collisions between the two threads.
        for cap in [2usize, 8, 64] {
            const N: u64 = 100_000;
            let (mut tx, mut rx) = channel(cap);
            let producer = std::thread::spawn(move || {
                let words: Vec<u64> = (0..N).collect();
                let mut sent = 0usize;
                while sent < words.len() {
                    let n = tx.push_slice(&words[sent..]);
                    sent += n;
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut got = Vec::with_capacity(N as usize);
            let mut buf = [0u64; 128];
            while got.len() < N as usize {
                let n = rx.pop_into(&mut buf);
                got.extend_from_slice(&buf[..n]);
                if n == 0 {
                    std::thread::yield_now();
                }
            }
            producer.join().expect("producer thread");
            assert_eq!(rx.try_pop(), None);
            assert!(
                got.iter().copied().eq(0..N),
                "cap {cap}: words lost or reordered"
            );
        }
    }

    /// One randomized batched op: push a chunk or pop a chunk.
    #[derive(Debug, Clone)]
    enum Op {
        Push(Vec<u64>),
        Pop(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u64>(), 0..12).prop_map(Op::Push),
            (0usize..12).prop_map(Op::Pop),
        ]
    }

    proptest! {
        /// Random batched op sequences over random (rounded) capacities
        /// never diverge from the FIFO oracle — wraparound, partial
        /// batches and full/empty boundaries included.
        #[test]
        fn random_batched_ops_match_oracle(
            cap in 1usize..40,
            ops in proptest::collection::vec(op_strategy(), 0..80),
        ) {
            let (mut tx, mut rx) = channel(cap);
            let mut oracle = Oracle { q: VecDeque::new(), cap: tx.capacity() };
            for op in ops {
                match op {
                    Op::Push(words) => {
                        let pushed = tx.push_slice(&words);
                        // The ring pushes the longest prefix that fits;
                        // mirror it in the oracle and require equality.
                        let fit = words.len().min(oracle.cap - oracle.q.len());
                        prop_assert_eq!(pushed, fit);
                        for w in &words[..fit] {
                            prop_assert!(oracle.push(*w));
                        }
                    }
                    Op::Pop(max) => {
                        let mut out = vec![0u64; max];
                        let n = rx.pop_into(&mut out);
                        for got in out[..n].iter() {
                            prop_assert_eq!(Some(*got), oracle.pop());
                        }
                        // A short pop is only legal when the oracle is
                        // now empty (SPSC: no concurrent producer here).
                        if n < max {
                            prop_assert!(oracle.q.is_empty());
                        }
                    }
                }
            }
            // Drain and compare the tails.
            let mut rest = Vec::new();
            rx.pop_extend(&mut rest, usize::MAX >> 1);
            prop_assert_eq!(rest, oracle.q.into_iter().collect::<Vec<_>>());
        }
    }
}
