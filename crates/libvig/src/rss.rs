//! RSS-style shard routing: the hash→shard reduction NIC receive-side
//! scaling performs in hardware, reproduced for partitioning libVig
//! flow tables across cores.
//!
//! A sharded flow table keeps N completely independent sub-tables
//! ("shards") and routes every key to exactly one of them by a function
//! of the key's hash. Because libVig keys already carry a
//! well-distributed 64-bit hash ([`crate::map::MapKey::key_hash`]) that
//! the datapath memoizes per packet, the shard selector can reuse that
//! same hash — routing costs one multiply-shift, no extra hash.
//!
//! Two pieces live here:
//!
//! * [`shard_of`] — the reduction itself. It consumes the *upper* 32
//!   bits of the hash, deliberately disjoint from the low bits the
//!   open-addressing directory consumes (`hash % capacity` in
//!   [`crate::map::Map`]), so shard choice and in-shard probe position
//!   stay uncorrelated even for adversarially aligned keys.
//! * [`BatchSplit`] — a reusable gather/scatter scratch that partitions
//!   one batched probe ([`crate::dmap::DoubleMap::lookup_batch`]) into
//!   per-shard sub-batches and maps results back to query order. All
//!   buffers are retained across calls, so a steady-state burst path
//!   performs no allocation here (§5.1.1's preallocation rule extended
//!   to the sharded fast path).

/// Map a key hash to a shard index in `0..shards`.
///
/// Multiply-shift range reduction over the hash's upper 32 bits:
/// `(hi32(hash) * shards) >> 32`. For a uniformly distributed hash the
/// result is uniform over `0..shards` for *any* shard count (no
/// power-of-two requirement), and it never touches the low bits the
/// in-shard directory probe uses.
///
/// `shards` must be non-zero (callers size it at construction; a zero
/// here is a configuration bug, caught by the sharded table's
/// constructor).
#[inline(always)]
pub fn shard_of(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of with zero shards");
    (((hash >> 32) * shards as u64) >> 32) as usize
}

/// Map an external (return-traffic) port to the shard owning that
/// slice of the NAT's port range: shard `s` owns ports
/// `start_port + s·ports_per_shard .. start_port + (s+1)·ports_per_shard`.
/// `None` when the port lies outside the partitioned range (below
/// `start_port`, or past the last full slice — capacity remainders are
/// dropped by the sharded table, so they route nowhere).
///
/// This is the *one* definition of the port partition: the sharded
/// flow table's routing, the multi-queue NIC model's RSS classifier,
/// and the core queue-fed driver all call it, so hardware steering,
/// software dispatch, and table lookup agree by construction.
#[inline(always)]
pub fn shard_of_port(
    port: u16,
    start_port: u16,
    ports_per_shard: usize,
    shards: usize,
) -> Option<usize> {
    debug_assert!(ports_per_shard > 0, "shard_of_port with empty slices");
    let off = usize::from(port.checked_sub(start_port)?);
    let s = off / ports_per_shard;
    (s < shards).then_some(s)
}

/// One shard's slice of a split batch: the gathered keys and hashes,
/// plus each query's position in the original batch.
#[derive(Debug, Clone)]
struct SubBatch<K> {
    keys: Vec<K>,
    hashes: Vec<u64>,
    origins: Vec<u32>,
}

impl<K> Default for SubBatch<K> {
    fn default() -> SubBatch<K> {
        SubBatch {
            keys: Vec::new(),
            hashes: Vec::new(),
            origins: Vec::new(),
        }
    }
}

/// Reusable gather/scatter scratch for routing one batched lookup
/// across shards. See the module docs.
///
/// Usage per burst: [`BatchSplit::split`] once, then for each shard run
/// its directory probe over [`BatchSplit::keys`]/[`BatchSplit::hashes`]
/// and write each result back at [`BatchSplit::origins`]`[j]` of the
/// caller's query-ordered output.
#[derive(Debug, Clone)]
pub struct BatchSplit<K> {
    subs: Vec<SubBatch<K>>,
}

impl<K: Clone> BatchSplit<K> {
    /// Scratch for `shards` sub-batches.
    pub fn new(shards: usize) -> BatchSplit<K> {
        assert!(shards > 0, "BatchSplit needs at least one shard");
        BatchSplit {
            subs: (0..shards).map(|_| SubBatch::default()).collect(),
        }
    }

    /// Number of shards this scratch routes to.
    pub fn shards(&self) -> usize {
        self.subs.len()
    }

    /// Partition `(keys, hashes)` into per-shard sub-batches by
    /// [`shard_of`] on each hash. `hashes[i]` must be `keys[i]`'s hash
    /// (the same memoized-hash precondition every `*_with_hash`
    /// operation carries). Previous contents are cleared; buffers are
    /// reused.
    pub fn split(&mut self, keys: &[K], hashes: &[u64]) {
        assert_eq!(keys.len(), hashes.len(), "split: keys/hashes mismatch");
        assert!(
            keys.len() <= u32::MAX as usize,
            "batch too large for u32 origins"
        );
        for sub in &mut self.subs {
            sub.keys.clear();
            sub.hashes.clear();
            sub.origins.clear();
        }
        let n = self.subs.len();
        for (i, (k, &h)) in keys.iter().zip(hashes).enumerate() {
            let sub = &mut self.subs[shard_of(h, n)];
            sub.keys.push(k.clone());
            sub.hashes.push(h);
            sub.origins.push(i as u32);
        }
    }

    /// The keys routed to shard `s` by the last [`BatchSplit::split`].
    pub fn keys(&self, s: usize) -> &[K] {
        &self.subs[s].keys
    }

    /// The hashes routed to shard `s`, parallel to [`BatchSplit::keys`].
    pub fn hashes(&self, s: usize) -> &[u64] {
        &self.subs[s].hashes
    }

    /// Original batch positions of shard `s`'s queries, parallel to
    /// [`BatchSplit::keys`]: query `j` of shard `s` came from position
    /// `origins(s)[j]` of the split input.
    pub fn origins(&self, s: usize) -> &[u32] {
        &self.subs[s].origins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapKey;

    #[test]
    fn shard_of_is_in_range_and_deterministic() {
        for shards in 1..=7usize {
            for k in 0..4_000u64 {
                let h = k.key_hash();
                let s = shard_of(h, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(h, shards), "pure function of the hash");
            }
        }
    }

    #[test]
    fn shard_of_distributes_roughly_uniformly() {
        let shards = 4;
        let mut counts = [0usize; 4];
        let n = 40_000u64;
        for k in 0..n {
            counts[shard_of(k.key_hash(), shards)] += 1;
        }
        let expect = n as usize / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "shard {s} got {c} of {n} keys, expected ~{expect}"
            );
        }
    }

    #[test]
    fn shard_of_port_partitions_the_range() {
        // 4 shards of 2 ports each, starting at 1000.
        assert_eq!(shard_of_port(999, 1000, 2, 4), None);
        assert_eq!(shard_of_port(1000, 1000, 2, 4), Some(0));
        assert_eq!(shard_of_port(1003, 1000, 2, 4), Some(1));
        assert_eq!(shard_of_port(1007, 1000, 2, 4), Some(3));
        assert_eq!(shard_of_port(1008, 1000, 2, 4), None);
        assert_eq!(shard_of_port(0, 1000, 2, 4), None, "underflow is a miss");
    }

    #[test]
    fn shard_of_one_shard_is_always_zero() {
        for k in 0..1000u64 {
            assert_eq!(shard_of(k.key_hash(), 1), 0);
        }
    }

    #[test]
    fn split_partitions_and_scatter_reconstructs() {
        let shards = 3;
        let keys: Vec<u64> = (0..257).collect();
        let hashes: Vec<u64> = keys.iter().map(|k| k.key_hash()).collect();
        let mut split = BatchSplit::new(shards);
        split.split(&keys, &hashes);

        // Every query lands in exactly one shard, at the shard its hash
        // routes to, and scattering by origins reconstructs the batch.
        let mut reconstructed = vec![None; keys.len()];
        let mut total = 0;
        for s in 0..shards {
            assert_eq!(split.keys(s).len(), split.hashes(s).len());
            assert_eq!(split.keys(s).len(), split.origins(s).len());
            total += split.keys(s).len();
            for (j, &orig) in split.origins(s).iter().enumerate() {
                assert_eq!(shard_of(split.hashes(s)[j], shards), s);
                assert!(reconstructed[orig as usize].is_none(), "duplicate origin");
                reconstructed[orig as usize] = Some(split.keys(s)[j]);
            }
        }
        assert_eq!(total, keys.len());
        let got: Vec<u64> = reconstructed.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn split_reuses_buffers_across_calls() {
        let keys: Vec<u64> = (0..64).collect();
        let hashes: Vec<u64> = keys.iter().map(|k| k.key_hash()).collect();
        let mut split = BatchSplit::new(2);
        split.split(&keys, &hashes);
        let first: usize = (0..2).map(|s| split.keys(s).len()).sum();
        assert_eq!(first, 64);
        // A smaller second batch must fully replace the first.
        split.split(&keys[..8], &hashes[..8]);
        let second: usize = (0..2).map(|s| split.keys(s).len()).sum();
        assert_eq!(second, 8);
    }
}
