//! The standalone port allocator.
//!
//! The paper lists "a port allocator to keep track of allocated ports"
//! among libVig's structures. VigNAT itself derives ports from flow-table
//! slot indices (`port = start_port + index`), but other NFs — and our
//! unverified-NAT baseline — want a free-standing allocator. Contract:
//! every allocated port is in `[start, start+count)`, no port is handed
//! out twice without an intervening release, and allocation fails exactly
//! when all ports are taken.

use crate::Full;

/// Fixed-range port allocator backed by a free list + occupancy bitmap.
#[derive(Debug, Clone)]
pub struct PortAllocator {
    start: u16,
    taken: Vec<bool>,
    free: Vec<u16>, // stack of free offsets
}

impl PortAllocator {
    /// Manage the range `[start, start + count)`. The range must fit in
    /// `u16` and be non-empty.
    pub fn new(start: u16, count: u16) -> PortAllocator {
        assert!(count > 0, "port range must be non-empty");
        assert!(
            u32::from(start) + u32::from(count) <= 0x1_0000,
            "port range must fit in u16"
        );
        PortAllocator {
            start,
            taken: vec![false; count as usize],
            // Pop from the back: allocate in ascending order for
            // determinism (nice for tests and traces).
            free: (0..count).rev().collect(),
        }
    }

    /// First port of the managed range.
    pub fn range_start(&self) -> u16 {
        self.start
    }

    /// Number of managed ports.
    pub fn range_len(&self) -> usize {
        self.taken.len()
    }

    /// Number of currently allocated ports.
    pub fn allocated_count(&self) -> usize {
        self.taken.len() - self.free.len()
    }

    /// Is `port` currently allocated?
    pub fn is_allocated(&self, port: u16) -> bool {
        self.offset_of(port).map(|o| self.taken[o]).unwrap_or(false)
    }

    /// Allocate a free port.
    pub fn allocate(&mut self) -> Result<u16, Full> {
        let off = self.free.pop().ok_or(Full)?;
        self.taken[off as usize] = true;
        Ok(self.start + off)
    }

    /// Release an allocated port. Returns `false` (no change) if the port
    /// is outside the range or not allocated — contract misuse surfaced
    /// to the caller rather than panicking on the datapath.
    pub fn release(&mut self, port: u16) -> bool {
        let Some(off) = self.offset_of(port) else {
            return false;
        };
        if !self.taken[off] {
            return false;
        }
        self.taken[off] = false;
        self.free.push(off as u16);
        true
    }

    fn offset_of(&self, port: u16) -> Option<usize> {
        let off = usize::from(port).checked_sub(usize::from(self.start))?;
        (off < self.taken.len()).then_some(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn allocates_unique_ports_in_range() {
        let mut pa = PortAllocator::new(1000, 10);
        let mut seen = HashSet::new();
        for _ in 0..10 {
            let p = pa.allocate().unwrap();
            assert!((1000..1010).contains(&p));
            assert!(seen.insert(p), "port {p} handed out twice");
        }
        assert_eq!(pa.allocate(), Err(Full));
    }

    #[test]
    fn release_enables_reuse() {
        let mut pa = PortAllocator::new(50000, 2);
        let a = pa.allocate().unwrap();
        let b = pa.allocate().unwrap();
        assert_eq!(pa.allocate(), Err(Full));
        assert!(pa.release(a));
        let c = pa.allocate().unwrap();
        assert_eq!(c, a);
        assert!(pa.is_allocated(b));
    }

    #[test]
    fn release_out_of_range_or_free_is_false() {
        let mut pa = PortAllocator::new(100, 5);
        assert!(!pa.release(99));
        assert!(!pa.release(105));
        assert!(!pa.release(102), "not allocated yet");
        let p = pa.allocate().unwrap();
        assert!(pa.release(p));
        assert!(!pa.release(p), "double release rejected");
    }

    #[test]
    fn full_u16_top_range() {
        let mut pa = PortAllocator::new(65534, 2);
        assert_eq!(pa.allocate().unwrap(), 65534);
        assert_eq!(pa.allocate().unwrap(), 65535);
        assert_eq!(pa.allocate(), Err(Full));
    }

    #[test]
    #[should_panic(expected = "fit in u16")]
    fn overflowing_range_rejected() {
        let _ = PortAllocator::new(65535, 2);
    }

    proptest! {
        /// Invariant: allocated set and free list always partition the
        /// range; counts agree.
        #[test]
        fn alloc_release_partition(ops in proptest::collection::vec(any::<Option<u16>>(), 0..200)) {
            let mut pa = PortAllocator::new(40000, 16);
            let mut held: HashSet<u16> = HashSet::new();
            for op in ops {
                match op {
                    None => {
                        if let Ok(p) = pa.allocate() {
                            prop_assert!((40000..40016).contains(&p));
                            prop_assert!(held.insert(p), "duplicate allocation");
                        } else {
                            prop_assert_eq!(held.len(), 16);
                        }
                    }
                    Some(raw) => {
                        let p = 40000 + raw % 16;
                        let was_held = held.remove(&p);
                        prop_assert_eq!(pa.release(p), was_held);
                    }
                }
                prop_assert_eq!(pa.allocated_count(), held.len());
            }
        }
    }
}
