//! The preallocated vector (`vector.c`).
//!
//! A fixed-size array of values with checked indexed access. In libVig
//! the vector's interesting property is its *borrow discipline*: the C
//! code hands out a pointer with `vector_borrow` and requires it back
//! with `vector_return` before the next libVig call, enforced by the
//! Validator. In Rust the borrow checker enforces exactly this — a
//! `&mut` borrow of a cell cannot coexist with another use of the vector
//! — so the discipline needs no runtime machinery. The contract that
//! remains is index validity and value persistence, checked by
//! [`CheckedVector`].

use core::fmt::Debug;

/// Fixed-capacity vector of `T`, fully initialized at construction.
#[derive(Debug, Clone)]
pub struct Vector<T> {
    cells: Vec<T>,
}

impl<T: Clone> Vector<T> {
    /// Allocate `capacity` cells, each initialized to `init`.
    pub fn new(capacity: usize, init: T) -> Vector<T> {
        assert!(capacity > 0, "vector capacity must be non-zero");
        Vector {
            cells: vec![init; capacity],
        }
    }
}

impl<T> Vector<T> {
    /// Allocate from an initializer function (for non-`Clone` cells).
    pub fn from_fn(capacity: usize, mut f: impl FnMut(usize) -> T) -> Vector<T> {
        assert!(capacity > 0, "vector capacity must be non-zero");
        Vector {
            cells: (0..capacity).map(&mut f).collect(),
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Borrow cell `index` immutably (`vector_borrow` in the C code).
    pub fn borrow(&self, index: usize) -> Option<&T> {
        self.cells.get(index)
    }

    /// Borrow cell `index` mutably. The Rust borrow checker enforces the
    /// "return before next call" discipline at compile time.
    pub fn borrow_mut(&mut self, index: usize) -> Option<&mut T> {
        self.cells.get_mut(index)
    }

    /// Overwrite cell `index`, returning the old value; `None` (no
    /// change) if out of range.
    pub fn replace(&mut self, index: usize, value: T) -> Option<T> {
        let cell = self.cells.get_mut(index)?;
        Some(core::mem::replace(cell, value))
    }

    /// Iterate over the cells.
    pub fn iter(&self) -> core::slice::Iter<'_, T> {
        self.cells.iter()
    }
}

/// Contract-checked vector: shadows a plain `Vec` model and asserts each
/// operation's result matches (trivially for this structure, but it keeps
/// the P3 methodology uniform and exercises the bounds contract).
#[derive(Debug, Clone)]
pub struct CheckedVector<T: Clone + PartialEq + Debug> {
    imp: Vector<T>,
    model: Vec<T>,
}

impl<T: Clone + PartialEq + Debug> CheckedVector<T> {
    /// Allocate like [`Vector::new`].
    pub fn new(capacity: usize, init: T) -> Self {
        CheckedVector {
            imp: Vector::new(capacity, init.clone()),
            model: vec![init; capacity],
        }
    }

    /// Contract-checked read.
    pub fn borrow(&self, index: usize) -> Option<&T> {
        let got = self.imp.borrow(index);
        assert_eq!(got, self.model.get(index), "vector.borrow diverged");
        got
    }

    /// Contract-checked write.
    pub fn replace(&mut self, index: usize, value: T) -> Option<T> {
        let got = self.imp.replace(index, value.clone());
        let spec = if index < self.model.len() {
            Some(core::mem::replace(&mut self.model[index], value))
        } else {
            None
        };
        assert_eq!(got, spec, "vector.replace diverged");
        got
    }

    /// Full refinement check.
    pub fn check_equiv(&self) {
        assert_eq!(self.imp.capacity(), self.model.len());
        for (i, m) in self.model.iter().enumerate() {
            assert_eq!(self.imp.borrow(i), Some(m), "cell {i} diverged");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn init_and_replace() {
        let mut v = CheckedVector::new(3, 0u32);
        assert_eq!(v.borrow(0), Some(&0));
        assert_eq!(v.replace(1, 42), Some(0));
        assert_eq!(v.borrow(1), Some(&42));
        v.check_equiv();
    }

    #[test]
    fn out_of_range_is_none() {
        let mut v = CheckedVector::new(2, 0u32);
        assert_eq!(v.borrow(2), None);
        assert_eq!(v.replace(5, 1), None);
        v.check_equiv();
    }

    #[test]
    fn borrow_mut_updates_in_place() {
        let mut v = Vector::new(2, String::from("a"));
        v.borrow_mut(0).unwrap().push('b');
        assert_eq!(v.borrow(0).unwrap(), "ab");
    }

    #[test]
    fn from_fn_initializer() {
        let v = Vector::from_fn(4, |i| i * i);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 4, 9]);
    }

    proptest! {
        #[test]
        fn random_ops_refine_model(
            ops in proptest::collection::vec((any::<bool>(), 0usize..6, any::<u16>()), 0..100),
        ) {
            let mut v = CheckedVector::new(4, 0u16);
            for (write, idx, val) in ops {
                if write {
                    v.replace(idx, val);
                } else {
                    v.borrow(idx);
                }
            }
            v.check_equiv();
        }
    }
}
