//! A separate-chaining hash table in the style of DPDK's `rte_hash`.
//!
//! The paper (§6) explains why VigNAT could not just reuse this design:
//! "it resolves hash conflicts through separate chaining — items that
//! hash to the same array position are added to the same linked list —
//! a behavior that is hard to specify in a formal contract." This module
//! *is* that design, implemented at the quality level of the DPDK
//! library it stands in for (the paper's Unverified NAT is *faster* than
//! the Verified one, so the chaining table must be a serious
//! implementation, not a strawman):
//!
//! * entries live in one preallocated **arena**; chains are `next`
//!   indices within it, so walking a chain is array hops, not pointer
//!   chasing through the allocator;
//! * the bucket array stores the head index plus a short **hash
//!   signature**, so most misses resolve without touching the arena at
//!   all (`rte_hash` uses the same trick);
//! * freed entries go on a free list and are reused.
//!
//! What makes it hard to verify formally — the unbounded linked-list
//! heap shape — is exactly what keeps its lookups flat at any load
//! factor: no open-addressing probe blowup near fullness, which is why
//! the Unverified NAT's Fig. 12 curve stays flat at the last point
//! while the Verified NAT's ticks up.

use libvig::map::MapKey;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    sig: u16,
    next: u32,
}

/// Separate-chaining hash map from `K` to `V`. See module docs.
#[derive(Debug, Clone)]
pub struct ChainedMap<K: MapKey, V> {
    heads: Vec<u32>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<u32>,
    mask: u64,
    len: usize,
}

impl<K: MapKey, V> ChainedMap<K, V> {
    /// Table sized for about `capacity_hint` entries (bucket count is
    /// the next power of two, like `rte_hash`); the arena grows on
    /// demand beyond the hint.
    pub fn with_capacity(capacity_hint: usize) -> Self {
        let buckets = capacity_hint.next_power_of_two().max(8);
        ChainedMap {
            heads: vec![NIL; buckets],
            slots: Vec::with_capacity(capacity_hint),
            free: Vec::new(),
            mask: (buckets - 1) as u64,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn index_of(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    #[inline]
    fn sig_of(hash: u64) -> u16 {
        (hash >> 48) as u16
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let hash = key.key_hash();
        let sig = Self::sig_of(hash);
        let mut cur = self.heads[self.index_of(hash)];
        while cur != NIL {
            let slot = self.slots[cur as usize]
                .as_ref()
                .expect("chained slot is live");
            if slot.sig == sig && slot.key == *key {
                return Some(&slot.value);
            }
            cur = slot.next;
        }
        None
    }

    /// Insert or replace; returns the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let hash = key.key_hash();
        let sig = Self::sig_of(hash);
        let bucket = self.index_of(hash);
        // Replace in place if present.
        let mut cur = self.heads[bucket];
        while cur != NIL {
            let slot = self.slots[cur as usize]
                .as_mut()
                .expect("chained slot is live");
            if slot.sig == sig && slot.key == key {
                return Some(core::mem::replace(&mut slot.value, value));
            }
            cur = slot.next;
        }
        // Allocate an arena slot and push at the chain head.
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[idx as usize] = Some(Slot {
            key,
            value,
            sig,
            next: self.heads[bucket],
        });
        self.heads[bucket] = idx;
        self.len += 1;
        None
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let hash = key.key_hash();
        let sig = Self::sig_of(hash);
        let bucket = self.index_of(hash);
        let mut prev = NIL;
        let mut cur = self.heads[bucket];
        while cur != NIL {
            let slot = self.slots[cur as usize]
                .as_ref()
                .expect("chained slot is live");
            if slot.sig == sig && slot.key == *key {
                let next = slot.next;
                if prev == NIL {
                    self.heads[bucket] = next;
                } else {
                    let p = self.slots[prev as usize]
                        .as_mut()
                        .expect("prev slot is live");
                    p.next = next;
                }
                let taken = self.slots[cur as usize].take().expect("slot was live");
                self.free.push(cur);
                self.len -= 1;
                return Some(taken.value);
            }
            prev = cur;
            cur = slot.next;
        }
        None
    }

    /// Average chain length over non-empty buckets (diagnostics for the
    /// microbenchmarks).
    pub fn avg_chain_len(&self) -> f64 {
        let mut chains = 0usize;
        let mut total = 0usize;
        for &head in &self.heads {
            if head == NIL {
                continue;
            }
            chains += 1;
            let mut cur = head;
            while cur != NIL {
                total += 1;
                cur = self.slots[cur as usize].as_ref().expect("live").next;
            }
        }
        if chains == 0 {
            0.0
        } else {
            total as f64 / chains as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut m: ChainedMap<u64, u32> = ChainedMap::with_capacity(16);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.insert(1, 11), Some(10), "replace returns old");
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.get(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn survives_overload_beyond_bucket_count() {
        // Chaining has no capacity limit: 8x the buckets still works.
        let mut m: ChainedMap<u64, u64> = ChainedMap::with_capacity(8);
        for k in 0..64 {
            m.insert(k, k * 2);
        }
        for k in 0..64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        assert!(m.avg_chain_len() >= 1.0);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut m: ChainedMap<u64, u64> = ChainedMap::with_capacity(8);
        for k in 0..100 {
            m.insert(k, k);
            m.remove(&k);
        }
        assert!(m.slots.len() <= 2, "free list must recycle arena slots");
    }

    #[test]
    fn removal_from_middle_of_chain() {
        // Keys engineered into one bucket via a constant-hash key type.
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct C(u32);
        impl MapKey for C {
            fn key_hash(&self) -> u64 {
                // same bucket AND same signature: worst case
                3
            }
        }
        let mut m: ChainedMap<C, u32> = ChainedMap::with_capacity(8);
        for i in 0..5 {
            m.insert(C(i), i);
        }
        assert_eq!(m.remove(&C(2)), Some(2));
        for i in [0u32, 1, 3, 4] {
            assert_eq!(m.get(&C(i)), Some(&i), "chain intact after middle removal");
        }
        assert_eq!(m.remove(&C(0)), Some(0), "head removal");
        assert_eq!(m.get(&C(4)), Some(&4));
    }

    proptest! {
        /// Differential vs std::HashMap over random op sequences.
        #[test]
        fn matches_std_hashmap(ops in proptest::collection::vec((0u8..3, 0u64..32, any::<u32>()), 0..300)) {
            let mut ours: ChainedMap<u64, u32> = ChainedMap::with_capacity(8);
            let mut reference: HashMap<u64, u32> = HashMap::new();
            for (kind, k, v) in ops {
                match kind {
                    0 => { prop_assert_eq!(ours.insert(k, v), reference.insert(k, v)); }
                    1 => { prop_assert_eq!(ours.remove(&k), reference.remove(&k)); }
                    _ => { prop_assert_eq!(ours.get(&k), reference.get(&k)); }
                }
                prop_assert_eq!(ours.len(), reference.len());
            }
        }
    }
}
