//! # vig-baselines — the paper's comparison NFs (§6)
//!
//! Three middleboxes the evaluation pits against the Verified NAT:
//!
//! * **No-op forwarding** — lives in `netsim` (it is part of the
//!   testbed definition); re-exported here for convenience.
//! * [`unverified::UnverifiedNat`] — "implemented on top of DPDK; it
//!   implements the same RFC as VigNAT and supports the same number of
//!   flows, but uses the hash table that comes with the DPDK
//!   distribution" — i.e. **separate chaining**
//!   ([`chained_map::ChainedMap`]), written in ordinary idiomatic style
//!   by a developer "with little verification expertise": dynamic
//!   allocation, `std` containers, no contracts.
//! * [`netfilter::NetfilterNat`] — the Linux NAT analog: a conntrack
//!   tuple table over `std::collections::HashMap` (SipHash — the
//!   general-purpose-hash cost), an iptables-style rule-list walk, skb
//!   allocation + copy on the kernel path, TTL decrement, and
//!   timer-tree expiry. Each of these costs is real executed code, and
//!   together they are why this NF lands well below the DPDK NFs, just
//!   as NetFilter does in the paper's Fig. 14.
//!
//! All three are *functionally correct* NATs (the differential tests
//! check them against the same RFC 3022 spec as VigNAT) — the paper's
//! comparison is about performance and assurance, not about the
//! baselines being broken.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chained_map;
pub mod netfilter;
pub mod unverified;

pub use chained_map::ChainedMap;
pub use netfilter::NetfilterNat;
pub use netsim::NoopForwarder;
pub use unverified::UnverifiedNat;
