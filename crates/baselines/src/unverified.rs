//! The Unverified NAT (paper §6, NF "b").
//!
//! Same RFC 3022 semantics as VigNAT, same flow capacity, but written
//! the way "an experienced software developer with little verification
//! expertise" writes a DPDK NF:
//!
//! * flow state in a **separate-chaining** hash table
//!   ([`crate::chained_map::ChainedMap`]) — the DPDK `rte_hash` design
//!   the paper's authors could not formally specify;
//! * a slab of entries with an intrusive LRU list for expiry;
//! * an ad-hoc free-list port allocator (no slot⇄port bijection trick);
//! * direct, idiomatic parsing and rewriting (reusing `vig-packet`'s
//!   views the way a normal dev reuses DPDK's header structs);
//! * dynamic allocation wherever convenient.
//!
//! It is deliberately *not* built from the verified loop body or libVig
//! — the whole point is to have an independent implementation to
//! compare against, both for performance (Fig. 12–14) and in the
//! differential tests (both NATs must satisfy the same spec).

use libvig::time::Time;
use netsim::middlebox::{Middlebox, Verdict};
use vig_packet::ipv4::Ipv4Packet;
use vig_packet::tcp::TcpSegment;
use vig_packet::udp::UdpDatagram;
use vig_packet::{parse_l3l4, Direction, ExtKey, FlowId, Ip4, Proto};
use vig_spec::NatConfig;

use crate::chained_map::ChainedMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry {
    fid: FlowId,
    ext_port: u16,
    last: Time,
    prev: usize,
    next: usize,
}

/// The unverified DPDK-style NAT. See module docs.
pub struct UnverifiedNat {
    cfg: NatConfig,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    by_int: ChainedMap<FlowId, usize>,
    by_ext: ChainedMap<ExtKey, usize>,
    // ad-hoc port pool
    free_ports: Vec<u16>,
    port_used: Vec<bool>,
    // LRU list, oldest at head
    head: usize,
    tail: usize,
    len: usize,
    expired_total: u64,
}

impl UnverifiedNat {
    /// Build with the same configuration surface as VigNAT.
    pub fn new(cfg: NatConfig) -> UnverifiedNat {
        vignat::loop_body::check_config(&cfg).expect("invalid NAT configuration");
        UnverifiedNat {
            slab: (0..cfg.capacity).map(|_| None).collect(),
            free: (0..cfg.capacity).rev().collect(),
            by_int: ChainedMap::with_capacity(cfg.capacity),
            by_ext: ChainedMap::with_capacity(cfg.capacity),
            free_ports: (0..cfg.capacity as u16)
                .rev()
                .map(|o| cfg.start_port + o)
                .collect(),
            port_used: vec![false; cfg.capacity],
            head: NIL,
            tail: NIL,
            len: 0,
            cfg,
            expired_total: 0,
        }
    }

    /// Live flow count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total expired flows.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    fn lru_unlink(&mut self, idx: usize) {
        let (p, n) = {
            let e = self.slab[idx].as_ref().expect("linked entry exists");
            (e.prev, e.next)
        };
        if p != NIL {
            self.slab[p].as_mut().unwrap().next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slab[n].as_mut().unwrap().prev = p;
        } else {
            self.tail = p;
        }
    }

    fn lru_append(&mut self, idx: usize) {
        {
            let e = self.slab[idx].as_mut().unwrap();
            e.prev = self.tail;
            e.next = NIL;
        }
        if self.tail != NIL {
            self.slab[self.tail].as_mut().unwrap().next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn expire(&mut self, now: Time) {
        while self.head != NIL {
            let idx = self.head;
            let (last, fid, ext_port) = {
                let e = self.slab[idx].as_ref().unwrap();
                (e.last, e.fid, e.ext_port)
            };
            if last.nanos().saturating_add(self.cfg.expiry_ns) > now.nanos() {
                break;
            }
            self.lru_unlink(idx);
            self.by_int.remove(&fid);
            self.by_ext
                .remove(&ext_key_of(&fid, self.cfg.external_ip, ext_port));
            self.release_port(ext_port);
            self.slab[idx] = None;
            self.free.push(idx);
            self.len -= 1;
            self.expired_total += 1;
        }
    }

    fn touch(&mut self, idx: usize, now: Time) {
        self.lru_unlink(idx);
        self.slab[idx].as_mut().unwrap().last = now;
        self.lru_append(idx);
    }

    fn take_port(&mut self) -> Option<u16> {
        let p = self.free_ports.pop()?;
        self.port_used[(p - self.cfg.start_port) as usize] = true;
        Some(p)
    }

    fn release_port(&mut self, p: u16) {
        let off = (p - self.cfg.start_port) as usize;
        debug_assert!(self.port_used[off], "releasing a free port");
        self.port_used[off] = false;
        self.free_ports.push(p);
    }

    fn create_flow(&mut self, fid: FlowId, now: Time) -> Option<u16> {
        let idx = self.free.pop()?;
        let Some(port) = self.take_port() else {
            self.free.push(idx);
            return None;
        };
        self.slab[idx] = Some(Entry {
            fid,
            ext_port: port,
            last: now,
            prev: NIL,
            next: NIL,
        });
        self.lru_append(idx);
        self.by_int.insert(fid, idx);
        self.by_ext
            .insert(ext_key_of(&fid, self.cfg.external_ip, port), idx);
        self.len += 1;
        Some(port)
    }
}

fn ext_key_of(fid: &FlowId, ext_ip: Ip4, ext_port: u16) -> ExtKey {
    ExtKey {
        ext_ip,
        ext_port,
        dst_ip: fid.dst_ip,
        dst_port: fid.dst_port,
        proto: fid.proto,
    }
}

/// Rewrite the frame's source to `(new_ip, new_port)` with incremental
/// checksum updates — the standard hand-written DPDK NAT fast path.
fn rewrite_src(frame: &mut [u8], proto: Proto, new_ip: Ip4, new_port: u16) {
    let old_ip;
    {
        let mut ip = Ipv4Packet::parse_mut(&mut frame[14..]).expect("validated frame");
        old_ip = ip.src();
        ip.rewrite_src(new_ip);
    }
    let l4_off = 14 + usize::from(frame[14] & 0x0f) * 4;
    match proto {
        Proto::Tcp => {
            let mut t = TcpSegment::parse_mut(&mut frame[l4_off..]).expect("validated tcp");
            t.update_checksum_for_ip(old_ip.raw(), new_ip.raw());
            t.rewrite_src_port(new_port);
        }
        Proto::Udp => {
            let mut u = UdpDatagram::parse_mut(&mut frame[l4_off..]).expect("validated udp");
            u.update_checksum_for_ip(old_ip.raw(), new_ip.raw());
            u.rewrite_src_port(new_port);
        }
    }
}

/// Rewrite the frame's destination to `(new_ip, new_port)`.
fn rewrite_dst(frame: &mut [u8], proto: Proto, new_ip: Ip4, new_port: u16) {
    let old_ip;
    {
        let mut ip = Ipv4Packet::parse_mut(&mut frame[14..]).expect("validated frame");
        old_ip = ip.dst();
        ip.rewrite_dst(new_ip);
    }
    let l4_off = 14 + usize::from(frame[14] & 0x0f) * 4;
    match proto {
        Proto::Tcp => {
            let mut t = TcpSegment::parse_mut(&mut frame[l4_off..]).expect("validated tcp");
            t.update_checksum_for_ip(old_ip.raw(), new_ip.raw());
            t.rewrite_dst_port(new_port);
        }
        Proto::Udp => {
            let mut u = UdpDatagram::parse_mut(&mut frame[l4_off..]).expect("validated udp");
            u.update_checksum_for_ip(old_ip.raw(), new_ip.raw());
            u.rewrite_dst_port(new_port);
        }
    }
}

impl Middlebox for UnverifiedNat {
    fn name(&self) -> &'static str {
        "Unverified NAT"
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict {
        self.expire(now);
        let Ok((_off, ff)) = parse_l3l4(frame) else {
            return Verdict::Drop;
        };
        match dir {
            Direction::Internal => {
                let fid = FlowId {
                    src_ip: ff.src_ip,
                    src_port: ff.src_port,
                    dst_ip: ff.dst_ip,
                    dst_port: ff.dst_port,
                    proto: ff.proto,
                };
                let port = if let Some(&idx) = self.by_int.get(&fid) {
                    let port = self.slab[idx].as_ref().unwrap().ext_port;
                    self.touch(idx, now);
                    port
                } else {
                    match self.create_flow(fid, now) {
                        Some(p) => p,
                        None => return Verdict::Drop,
                    }
                };
                rewrite_src(frame, ff.proto, self.cfg.external_ip, port);
                Verdict::Forward(Direction::External)
            }
            Direction::External => {
                let ek = ExtKey {
                    // Single-address baseline: like the verified loop
                    // body, return traffic matches without consulting
                    // the destination address.
                    ext_ip: self.cfg.external_ip,
                    ext_port: ff.dst_port,
                    dst_ip: ff.src_ip,
                    dst_port: ff.src_port,
                    proto: ff.proto,
                };
                let Some(&idx) = self.by_ext.get(&ek) else {
                    return Verdict::Drop;
                };
                let (int_ip, int_port) = {
                    let e = self.slab[idx].as_ref().unwrap();
                    (e.fid.src_ip, e.fid.src_port)
                };
                self.touch(idx, now);
                rewrite_dst(frame, ff.proto, int_ip, int_port);
                Verdict::Forward(Direction::Internal)
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::builder::PacketBuilder;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 3000,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn translates_and_reverses() {
        let mut nat = UnverifiedNat::new(cfg());
        let mut out =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 3), Ip4::new(9, 9, 9, 9), 1234, 53).build();
        assert_eq!(
            nat.process(Direction::Internal, &mut out, Time::from_secs(1)),
            Verdict::Forward(Direction::External)
        );
        let (_, f) = parse_l3l4(&out).unwrap();
        assert_eq!(f.src_ip, Ip4::new(10, 1, 0, 1));
        let ext_port = f.src_port;
        assert!((3000..3008).contains(&ext_port));

        let mut back =
            PacketBuilder::udp(Ip4::new(9, 9, 9, 9), Ip4::new(10, 1, 0, 1), 53, ext_port).build();
        assert_eq!(
            nat.process(Direction::External, &mut back, Time::from_secs(1)),
            Verdict::Forward(Direction::Internal)
        );
        let (_, b) = parse_l3l4(&back).unwrap();
        assert_eq!(b.dst_ip, Ip4::new(192, 168, 0, 3));
        assert_eq!(b.dst_port, 1234);
    }

    #[test]
    fn capacity_and_expiry() {
        let mut nat = UnverifiedNat::new(cfg());
        for h in 0..8u8 {
            let mut f =
                PacketBuilder::udp(Ip4::new(192, 168, 1, h), Ip4::new(9, 9, 9, 9), 1, 2).build();
            assert_eq!(
                nat.process(Direction::Internal, &mut f, Time::from_secs(1)),
                Verdict::Forward(Direction::External)
            );
        }
        assert_eq!(nat.occupancy(), 8);
        // full: new flow dropped
        let mut f9 =
            PacketBuilder::udp(Ip4::new(192, 168, 2, 1), Ip4::new(9, 9, 9, 9), 1, 2).build();
        assert_eq!(
            nat.process(Direction::Internal, &mut f9, Time::from_secs(1)),
            Verdict::Drop
        );
        // after expiry all 8 go and the new one fits
        let mut f9b =
            PacketBuilder::udp(Ip4::new(192, 168, 2, 1), Ip4::new(9, 9, 9, 9), 1, 2).build();
        assert_eq!(
            nat.process(Direction::Internal, &mut f9b, Time::from_secs(4)),
            Verdict::Forward(Direction::External)
        );
        assert_eq!(nat.expired_total(), 8);
        assert_eq!(nat.occupancy(), 1);
    }

    #[test]
    fn ports_are_recycled() {
        let mut nat = UnverifiedNat::new(cfg());
        let mut f =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(9, 9, 9, 9), 1, 2).build();
        nat.process(Direction::Internal, &mut f, Time::from_secs(1));
        let (_, out1) = parse_l3l4(&f).unwrap();
        // expire, then a different flow can get the same port back
        let mut g =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(9, 9, 9, 9), 3, 4).build();
        nat.process(Direction::Internal, &mut g, Time::from_secs(4));
        let (_, out2) = parse_l3l4(&g).unwrap();
        assert_eq!(out1.src_port, out2.src_port, "LIFO port pool recycles");
    }

    #[test]
    fn malformed_frames_drop() {
        let mut nat = UnverifiedNat::new(cfg());
        let mut junk = vec![0u8; 10];
        assert_eq!(
            nat.process(Direction::Internal, &mut junk, Time::from_secs(1)),
            Verdict::Drop
        );
        let mut short = vec![0u8; 40];
        assert_eq!(
            nat.process(Direction::External, &mut short, Time::from_secs(1)),
            Verdict::Drop
        );
    }
}
