//! The Linux NetFilter NAT analog (paper §6, NF "c").
//!
//! The paper's third comparison point is the kernel's NAT: NetFilter
//! with masquerade rules, which lands at 0.6 Mpps against the DPDK NATs'
//! ~2 Mpps. The slowdown is structural, not incidental, and this analog
//! reproduces its structural sources as *real executed code*:
//!
//! * **skb handling** — the kernel allocates an skb and copies the frame
//!   out of the DMA ring (DPDK NFs process in place). We allocate and
//!   copy per packet, then copy back.
//! * **generic conntrack** — connection lookup by 5-tuple through
//!   `std::collections::HashMap` with SipHash (the kernel's jhash +
//!   generic tuple machinery vs. the NATs' specialized tables), with
//!   **two** tuple entries per connection (original + reply direction),
//!   as conntrack keeps.
//! * **rule-list walk** — an iptables-style chain is evaluated per
//!   packet that needs a NAT decision; we walk a representative chain of
//!   non-matching rules before the masquerade rule matches.
//! * **timer bookkeeping** — conntrack re-arms a timeout on every packet;
//!   we maintain a `BTreeMap` timer tree with remove+insert per packet.
//!   The re-armed duration is **per-class**, as the kernel's
//!   `nf_conntrack_tcp_timeout_*` sysctls make it: each TCP connection
//!   carries a state-machine state (`vig_spec::tcp`), every segment
//!   steps it *before* the timer is re-armed, and the deadline is
//!   `now + lifetime(class(state))` — established connections get the
//!   long timeout, half-open/closing ones the short transitory timeout,
//!   UDP its own. With a homogeneous config all classes collapse to
//!   `Texp` and the pre-TCP behaviour is preserved bit for bit.
//! * **router duties** — TTL decrement + checksum fixup (a NAT box in
//!   the kernel is a router; DPDK NATs in the paper do not route).
//!
//! Masquerade port selection follows the kernel: keep the original
//! source port when free, otherwise scan the configured range. The
//! observable behaviour still satisfies RFC 3022 (the differential
//! tests check this NAT against the same spec as VigNAT).

use libvig::time::Time;
use netsim::middlebox::{Middlebox, Verdict};
use std::collections::{BTreeMap, HashMap, HashSet};
use vig_packet::ipv4::Ipv4Packet;
use vig_packet::{parse_l3l4, Direction, FlowId, Ip4, Proto};
use vig_spec::tcp::{class_of, initial_state, transition, TcpState};
use vig_spec::NatConfig;

/// A normalized conntrack tuple (as-seen packet 5-tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Tuple {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    proto: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hand {
    Orig,
    Reply,
}

#[derive(Debug, Clone)]
struct Conn {
    fid: FlowId,
    ext_port: u16,
    deadline: u64,
    /// TCP tracker state (`None` for non-TCP connections); selects the
    /// timeout class the next re-arm uses.
    tcp: Option<TcpState>,
}

/// An iptables-style rule: match fields, then a target. Only the last
/// rule (masquerade) matters semantically; the others model chain-walk
/// cost and never match the evaluation traffic.
#[derive(Debug, Clone)]
struct Rule {
    match_proto: Option<u8>,
    match_dst_port: Option<u16>,
    match_src_prefix: Option<(u32, u32)>, // (value, mask)
    is_masquerade: bool,
}

impl Rule {
    fn matches(&self, t: &Tuple) -> bool {
        if let Some(p) = self.match_proto {
            if p != t.proto {
                return false;
            }
        }
        if let Some(dp) = self.match_dst_port {
            if dp != t.dst_port {
                return false;
            }
        }
        if let Some((v, m)) = self.match_src_prefix {
            if t.src_ip & m != v {
                return false;
            }
        }
        true
    }
}

/// A FIB entry: destination prefix, mask, egress ifindex.
#[derive(Debug, Clone, Copy)]
struct FibRoute {
    prefix: u32,
    mask: u32,
    ifindex: u8,
}

/// The NetFilter-analog NAT. See module docs.
pub struct NetfilterNat {
    cfg: NatConfig,
    conns: HashMap<Tuple, (usize, Hand)>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    timers: BTreeMap<(u64, usize), ()>,
    used_ports: HashSet<u16>,
    next_port_hint: u16,
    rules: Vec<Rule>,
    /// filter-table FORWARD chain, walked for every forwarded packet
    /// (the kernel evaluates it even for ESTABLISHED traffic).
    forward_chain: Vec<Rule>,
    /// Routing table, longest-prefix matched per packet (the kernel's
    /// fib_lookup on the forwarding path).
    fib: Vec<FibRoute>,
    skb: Vec<u8>,
    expired_total: u64,
    len: usize,
}

impl NetfilterNat {
    /// Build with the shared configuration surface. The conntrack size
    /// and timeout come from `cfg` so all NATs play by identical rules.
    pub fn new(cfg: NatConfig) -> NetfilterNat {
        vignat::loop_body::check_config(&cfg).expect("invalid NAT configuration");
        // A representative filter/nat chain: several specific rules that
        // the evaluation traffic never matches, then MASQUERADE.
        let rules = vec![
            Rule {
                match_proto: Some(6),
                match_dst_port: Some(22),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: Some(6),
                match_dst_port: Some(25),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: Some(17),
                match_dst_port: Some(69),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: None,
                match_dst_port: None,
                match_src_prefix: Some((0xc0a8_6400, 0xffff_ff00)), // 192.168.100.0/24
                is_masquerade: false,
            },
            Rule {
                match_proto: Some(6),
                match_dst_port: Some(445),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: None,
                match_dst_port: None,
                match_src_prefix: None,
                is_masquerade: true,
            },
        ];
        // filter FORWARD chain: conntrack-state shortcuts aside, the
        // kernel walks this for every forwarded packet. Representative
        // small-router chain: a few drops that never match, then ACCEPT.
        let forward_chain = vec![
            Rule {
                match_proto: Some(6),
                match_dst_port: Some(23),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: Some(17),
                match_dst_port: Some(161),
                match_src_prefix: None,
                is_masquerade: false,
            },
            Rule {
                match_proto: None,
                match_dst_port: None,
                match_src_prefix: Some((0xe000_0000, 0xf000_0000)), // multicast
                is_masquerade: false,
            },
            Rule {
                match_proto: None,
                match_dst_port: None,
                match_src_prefix: None,
                is_masquerade: true, // stands in for ACCEPT
            },
        ];
        // A small-office routing table: connected nets, a few static
        // routes, default route last (matched by longest prefix).
        let mut fib = Vec::new();
        for i in 0..12u32 {
            fib.push(FibRoute {
                prefix: 0x0a00_0000 | (i << 16), // 10.i.0.0/16
                mask: 0xffff_0000,
                ifindex: (i % 4) as u8,
            });
        }
        fib.push(FibRoute {
            prefix: 0xc0a8_0000,
            mask: 0xffff_0000,
            ifindex: 1,
        }); // 192.168/16
        fib.push(FibRoute {
            prefix: 0,
            mask: 0,
            ifindex: 2,
        }); // default
        NetfilterNat {
            conns: HashMap::new(),
            slab: (0..cfg.capacity).map(|_| None).collect(),
            free: (0..cfg.capacity).rev().collect(),
            timers: BTreeMap::new(),
            used_ports: HashSet::new(),
            next_port_hint: cfg.start_port,
            rules,
            forward_chain,
            fib,
            skb: Vec::new(),
            expired_total: 0,
            len: 0,
            cfg,
        }
    }

    /// Longest-prefix-match route lookup (linear scan, as small-router
    /// tries degenerate to). Returns the egress ifindex.
    fn fib_lookup(&self, dst: u32) -> u8 {
        let mut best_len: i32 = -1;
        let mut best_if = 0u8;
        for r in &self.fib {
            if dst & r.mask == r.prefix && (r.mask.count_ones() as i32) > best_len {
                best_len = r.mask.count_ones() as i32;
                best_if = r.ifindex;
            }
        }
        best_if
    }

    /// Walk the filter FORWARD chain; `true` = accepted.
    fn forward_allowed(&self, t: &Tuple) -> bool {
        for rule in &self.forward_chain {
            if rule.matches(t) {
                return rule.is_masquerade; // ACCEPT sentinel
            }
        }
        false
    }

    /// Live connection count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the conntrack table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total expired connections.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    fn orig_tuple(fid: &FlowId) -> Tuple {
        Tuple {
            src_ip: fid.src_ip.raw(),
            dst_ip: fid.dst_ip.raw(),
            src_port: fid.src_port,
            dst_port: fid.dst_port,
            proto: fid.proto.number(),
        }
    }

    fn reply_tuple(&self, fid: &FlowId, ext_port: u16) -> Tuple {
        Tuple {
            src_ip: fid.dst_ip.raw(),
            dst_ip: self.cfg.external_ip.raw(),
            src_port: fid.dst_port,
            dst_port: ext_port,
            proto: fid.proto.number(),
        }
    }

    fn expire(&mut self, now: Time) {
        while let Some((&(deadline, idx), ())) = self.timers.iter().next() {
            if deadline > now.nanos() {
                break;
            }
            self.timers.remove(&(deadline, idx));
            let conn = self.slab[idx].take().expect("timer points at live conn");
            self.conns.remove(&Self::orig_tuple(&conn.fid));
            self.conns
                .remove(&self.reply_tuple(&conn.fid, conn.ext_port));
            self.used_ports.remove(&conn.ext_port);
            self.free.push(idx);
            self.len -= 1;
            self.expired_total += 1;
        }
    }

    /// Step the TCP tracker for a segment seen from `dir` carrying
    /// `tcp_flags`, then re-arm the timer with the (possibly new)
    /// class's lifetime — conntrack's per-state timeout re-arm.
    fn rearm(&mut self, idx: usize, now: Time, dir: Direction, tcp_flags: u8) {
        let old = self.slab[idx].as_ref().unwrap().deadline;
        self.timers.remove(&(old, idx));
        let conn = self.slab[idx].as_mut().unwrap();
        if let Some(st) = conn.tcp {
            conn.tcp = Some(transition(st, dir, tcp_flags));
        }
        let lifetime = self.cfg.lifetime_ns(class_of(conn.fid.proto, conn.tcp));
        let new = now.nanos().saturating_add(lifetime);
        self.slab[idx].as_mut().unwrap().deadline = new;
        self.timers.insert((new, idx), ());
    }

    fn pick_port(&mut self, preferred: u16) -> Option<u16> {
        let in_range = |p: u16| {
            p >= self.cfg.start_port
                && (p as usize) < self.cfg.start_port as usize + self.cfg.capacity
        };
        // Kernel behaviour: keep the original source port when possible.
        if preferred != 0 && !self.used_ports.contains(&preferred) {
            return Some(preferred);
        }
        // Otherwise scan the range from a rotating hint.
        let span = self.cfg.capacity as u32;
        let mut p = self.next_port_hint;
        for _ in 0..span {
            if !in_range(p) {
                p = self.cfg.start_port;
            }
            if !self.used_ports.contains(&p) {
                self.next_port_hint = if in_range(p + 1) {
                    p + 1
                } else {
                    self.cfg.start_port
                };
                return Some(p);
            }
            p = p.wrapping_add(1);
        }
        None
    }

    fn new_conn(&mut self, fid: FlowId, now: Time, tcp_flags: u8) -> Option<u16> {
        let idx = self.free.pop()?;
        let Some(port) = self.pick_port(fid.src_port) else {
            self.free.push(idx);
            return None;
        };
        self.used_ports.insert(port);
        let tcp = (fid.proto == Proto::Tcp).then(|| initial_state(tcp_flags));
        let deadline = now
            .nanos()
            .saturating_add(self.cfg.lifetime_ns(class_of(fid.proto, tcp)));
        self.slab[idx] = Some(Conn {
            fid,
            ext_port: port,
            deadline,
            tcp,
        });
        self.timers.insert((deadline, idx), ());
        self.conns.insert(Self::orig_tuple(&fid), (idx, Hand::Orig));
        self.conns
            .insert(self.reply_tuple(&fid, port), (idx, Hand::Reply));
        self.len += 1;
        Some(port)
    }
}

impl Middlebox for NetfilterNat {
    fn name(&self) -> &'static str {
        "Linux NAT"
    }

    fn process(&mut self, dir: Direction, frame: &mut [u8], now: Time) -> Verdict {
        // --- kernel path: allocate an skb and copy the frame in -------
        let mut skb = core::mem::take(&mut self.skb);
        skb.clear();
        skb.extend_from_slice(frame);

        self.expire(now);

        let verdict = (|skb: &mut Vec<u8>, this: &mut Self| -> Verdict {
            let Ok((off, ff)) = parse_l3l4(skb) else {
                return Verdict::Drop;
            };
            // The TCP flag byte steers conntrack's per-state timeout.
            let tcp_flags = if ff.proto == Proto::Tcp {
                skb[off.l4 + 13]
            } else {
                0
            };
            let tuple = Tuple {
                src_ip: ff.src_ip.raw(),
                dst_ip: ff.dst_ip.raw(),
                src_port: ff.src_port,
                dst_port: ff.dst_port,
                proto: ff.proto.number(),
            };
            // Routing decision + filter FORWARD chain: the kernel pays
            // both for every forwarded packet, ESTABLISHED or NEW.
            let ifindex = std::hint::black_box(this.fib_lookup(tuple.dst_ip));
            let _ = ifindex;
            if !this.forward_allowed(&tuple) {
                return Verdict::Drop;
            }
            // conntrack lookup (established connections bypass the NAT chain)
            let hit = this.conns.get(&tuple).copied();
            match (dir, hit) {
                (Direction::Internal, Some((idx, Hand::Orig))) => {
                    this.rearm(idx, now, Direction::Internal, tcp_flags);
                    let port = this.slab[idx].as_ref().unwrap().ext_port;
                    let ext_ip = this.cfg.external_ip;
                    kernel_forward(skb, ff.proto, Some((ext_ip, port)), None);
                    Verdict::Forward(Direction::External)
                }
                (Direction::External, Some((idx, Hand::Reply))) => {
                    this.rearm(idx, now, Direction::External, tcp_flags);
                    let (int_ip, int_port) = {
                        let c = this.slab[idx].as_ref().unwrap();
                        (c.fid.src_ip, c.fid.src_port)
                    };
                    kernel_forward(skb, ff.proto, None, Some((int_ip, int_port)));
                    Verdict::Forward(Direction::Internal)
                }
                (Direction::Internal, None) => {
                    // NEW connection: walk the NAT chain.
                    let mut masq = false;
                    for rule in &this.rules {
                        if rule.matches(&tuple) {
                            masq = rule.is_masquerade;
                            break;
                        }
                    }
                    if !masq {
                        return Verdict::Drop;
                    }
                    let fid = FlowId {
                        src_ip: ff.src_ip,
                        src_port: ff.src_port,
                        dst_ip: ff.dst_ip,
                        dst_port: ff.dst_port,
                        proto: ff.proto,
                    };
                    match this.new_conn(fid, now, tcp_flags) {
                        Some(port) => {
                            let ext_ip = this.cfg.external_ip;
                            kernel_forward(skb, ff.proto, Some((ext_ip, port)), None);
                            Verdict::Forward(Direction::External)
                        }
                        None => Verdict::Drop, // conntrack table full
                    }
                }
                (Direction::External, None) => Verdict::Drop,
                // Tuple matched the wrong direction (e.g. a spoofed
                // packet replaying the orig tuple from outside): drop.
                _ => Verdict::Drop,
            }
        })(&mut skb, self);

        // --- kernel path: copy the skb back out ------------------------
        if matches!(verdict, Verdict::Forward(_)) {
            frame[..skb.len()].copy_from_slice(&skb);
        }
        self.skb = skb;
        verdict
    }

    fn occupancy(&self) -> usize {
        self.len
    }
}

/// The kernel forwarding path: NAT rewrite + TTL decrement, all with
/// incremental checksum updates.
fn kernel_forward(
    skb: &mut [u8],
    proto: Proto,
    snat: Option<(Ip4, u16)>,
    dnat: Option<(Ip4, u16)>,
) {
    let (old_src, old_dst);
    {
        let mut ip = Ipv4Packet::parse_mut(&mut skb[14..]).expect("validated skb");
        old_src = ip.src();
        old_dst = ip.dst();
        if let Some((ip4, _)) = snat {
            ip.rewrite_src(ip4);
        }
        if let Some((ip4, _)) = dnat {
            ip.rewrite_dst(ip4);
        }
        ip.decrement_ttl();
    }
    let l4_off = 14 + usize::from(skb[14] & 0x0f) * 4;
    match proto {
        Proto::Tcp => {
            let mut t =
                vig_packet::tcp::TcpSegment::parse_mut(&mut skb[l4_off..]).expect("tcp skb");
            if let Some((ip4, port)) = snat {
                t.update_checksum_for_ip(old_src.raw(), ip4.raw());
                t.rewrite_src_port(port);
            }
            if let Some((ip4, port)) = dnat {
                t.update_checksum_for_ip(old_dst.raw(), ip4.raw());
                t.rewrite_dst_port(port);
            }
        }
        Proto::Udp => {
            let mut u =
                vig_packet::udp::UdpDatagram::parse_mut(&mut skb[l4_off..]).expect("udp skb");
            if let Some((ip4, port)) = snat {
                u.update_checksum_for_ip(old_src.raw(), ip4.raw());
                u.rewrite_src_port(port);
            }
            if let Some((ip4, port)) = dnat {
                u.update_checksum_for_ip(old_dst.raw(), ip4.raw());
                u.rewrite_dst_port(port);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vig_packet::builder::PacketBuilder;

    fn cfg() -> NatConfig {
        NatConfig {
            capacity: 8,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(10, 1, 0, 1),
            start_port: 3000,
            ..NatConfig::paper_default()
        }
    }

    #[test]
    fn masquerade_keeps_original_port_when_free() {
        let mut nat = NetfilterNat::new(cfg());
        let mut f =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(9, 9, 9, 9), 5555, 53).build();
        assert_eq!(
            nat.process(Direction::Internal, &mut f, Time::from_secs(1)),
            Verdict::Forward(Direction::External)
        );
        let (_, out) = parse_l3l4(&f).unwrap();
        assert_eq!(
            out.src_port, 5555,
            "kernel masquerade keeps the source port"
        );
        assert_eq!(out.src_ip, Ip4::new(10, 1, 0, 1));
    }

    #[test]
    fn port_conflict_falls_back_to_range() {
        let mut nat = NetfilterNat::new(cfg());
        let mut a =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(9, 9, 9, 9), 5555, 53).build();
        nat.process(Direction::Internal, &mut a, Time::from_secs(1));
        // second host, same source port: must get a different port
        let mut b =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(9, 9, 9, 9), 5555, 53).build();
        nat.process(Direction::Internal, &mut b, Time::from_secs(1));
        let (_, outb) = parse_l3l4(&b).unwrap();
        assert_ne!(outb.src_port, 5555);
        assert!((3000..3008).contains(&outb.src_port));
    }

    #[test]
    fn reply_path_and_ttl() {
        let mut nat = NetfilterNat::new(cfg());
        let mut out = PacketBuilder::tcp(Ip4::new(192, 168, 0, 1), Ip4::new(9, 9, 9, 9), 4000, 80)
            .ttl(64)
            .build();
        nat.process(Direction::Internal, &mut out, Time::from_secs(1));
        let ip = Ipv4Packet::parse(&out[14..]).unwrap();
        assert_eq!(ip.ttl(), 63, "router decrements TTL");
        assert!(ip.verify_checksum());
        let (_, of) = parse_l3l4(&out).unwrap();

        let mut back =
            PacketBuilder::tcp(Ip4::new(9, 9, 9, 9), Ip4::new(10, 1, 0, 1), 80, of.src_port)
                .build();
        assert_eq!(
            nat.process(Direction::External, &mut back, Time::from_secs(1)),
            Verdict::Forward(Direction::Internal)
        );
        let (_, bf) = parse_l3l4(&back).unwrap();
        assert_eq!(bf.dst_ip, Ip4::new(192, 168, 0, 1));
        assert_eq!(bf.dst_port, 4000);
    }

    #[test]
    fn unsolicited_external_dropped_and_table_full_drops() {
        let mut nat = NetfilterNat::new(cfg());
        let mut stray =
            PacketBuilder::udp(Ip4::new(9, 9, 9, 9), Ip4::new(10, 1, 0, 1), 53, 3000).build();
        assert_eq!(
            nat.process(Direction::External, &mut stray, Time::from_secs(1)),
            Verdict::Drop
        );

        for h in 0..8u8 {
            let mut f =
                PacketBuilder::udp(Ip4::new(192, 168, 1, h), Ip4::new(9, 9, 9, 9), 100, 53).build();
            assert_eq!(
                nat.process(Direction::Internal, &mut f, Time::from_secs(1)),
                Verdict::Forward(Direction::External)
            );
        }
        let mut f9 =
            PacketBuilder::udp(Ip4::new(192, 168, 2, 1), Ip4::new(9, 9, 9, 9), 100, 53).build();
        assert_eq!(
            nat.process(Direction::Internal, &mut f9, Time::from_secs(1)),
            Verdict::Drop,
            "conntrack table full"
        );
    }

    #[test]
    fn tcp_lifetimes_per_state() {
        use vig_packet::tcp::flags;
        let c = NatConfig {
            tcp_transitory_ns: Time::from_secs(2).nanos(),
            tcp_established_ns: Time::from_secs(60).nanos(),
            ..cfg()
        };
        let mut nat = NetfilterNat::new(c);
        let lan = |h: u8| Ip4::new(192, 168, 0, h);
        let wan = Ip4::new(9, 9, 9, 9);

        // Conn A: half-open (SYN only) — transitory, dies at t+2.
        let mut syn = PacketBuilder::tcp(lan(1), wan, 4000, 80)
            .tcp_flags(flags::SYN)
            .build();
        nat.process(Direction::Internal, &mut syn, Time::from_secs(1));

        // Conn B: full handshake — established, lives until t+60.
        let mut syn2 = PacketBuilder::tcp(lan(2), wan, 4000, 80)
            .tcp_flags(flags::SYN)
            .build();
        nat.process(Direction::Internal, &mut syn2, Time::from_secs(1));
        let (_, of) = parse_l3l4(&syn2).unwrap();
        let mut synack = PacketBuilder::tcp(wan, Ip4::new(10, 1, 0, 1), 80, of.src_port)
            .tcp_flags(flags::SYN | flags::ACK)
            .build();
        nat.process(Direction::External, &mut synack, Time::from_secs(1));
        let mut ack = PacketBuilder::tcp(lan(2), wan, 4000, 80)
            .tcp_flags(flags::ACK)
            .build();
        nat.process(Direction::Internal, &mut ack, Time::from_secs(1));
        assert_eq!(nat.len(), 2);

        // t=5: past transitory, inside established. Only A dies.
        let mut tick = PacketBuilder::udp(lan(9), wan, 100, 53).build();
        nat.process(Direction::Internal, &mut tick, Time::from_secs(5));
        assert_eq!(
            nat.expired_total(),
            1,
            "half-open dies at the transitory timeout; established survives"
        );

        // Mid-stream RST demotes B to transitory: dead two seconds on.
        let mut rst = PacketBuilder::tcp(lan(2), wan, 4000, 80)
            .tcp_flags(flags::RST)
            .build();
        nat.process(Direction::Internal, &mut rst, Time::from_secs(5));
        let mut tick2 = PacketBuilder::udp(lan(10), wan, 100, 53).build();
        nat.process(Direction::Internal, &mut tick2, Time::from_secs(9));
        // B (rst'd, deadline 7) and the t=5 UDP tick (deadline 7) died.
        assert_eq!(nat.expired_total(), 3, "RST cuts the established timer");
    }

    #[test]
    fn expiry_frees_conns_and_ports() {
        let mut nat = NetfilterNat::new(cfg());
        let mut f =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 1), Ip4::new(9, 9, 9, 9), 5555, 53).build();
        nat.process(Direction::Internal, &mut f, Time::from_secs(1));
        assert_eq!(nat.len(), 1);
        // trigger expiry with another packet after Texp
        let mut g =
            PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(9, 9, 9, 9), 5555, 53).build();
        nat.process(Direction::Internal, &mut g, Time::from_secs(4));
        assert_eq!(nat.expired_total(), 1);
        assert_eq!(nat.len(), 1);
        let (_, gf) = parse_l3l4(&g).unwrap();
        assert_eq!(gf.src_port, 5555, "port freed by expiry is reusable");
    }
}
