//! Workspace-level differential test: every NAT implementation in the
//! repo (Verified, Unverified, NetFilter-analog) is run over the same
//! randomized frame workload through the full testbed path, and every
//! observable decision is checked against the executable RFC 3022
//! specification. Byte-level properties (checksum validity, payload
//! preservation — the spec's `S.data = P.data`) are checked on the
//! actual output frames.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::baselines::{NetfilterNat, UnverifiedNat};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, FlowFields, Ip4, Proto};
use vignat_repro::sim::harness::Testbed;
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};
use vignat_repro::spec::{Output, PacketInput, SpecChecker};

const EXT_IP: Ip4 = Ip4::new(203, 0, 113, 1);

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 32,
        expiry_ns: Time::from_secs(5).nanos(),
        external_ip: EXT_IP,
        start_port: 60_000,
    }
}

/// Drive `nf` with `steps` randomized packets, checking every decision
/// against the spec and every forwarded frame at byte level.
fn differential_run(nf: &mut dyn Middlebox, steps: usize, seed: u64) {
    let mut tb = Testbed::new(64);
    let mut spec = SpecChecker::new(cfg());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = Time::from_secs(1);
    let payload = b"payload-under-test";

    for step in 0..steps {
        now = now.plus(rng.gen_range(1_000_000..2_000_000_000));
        let proto = if rng.gen_bool(0.5) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        let (dir, fields) = if rng.gen_bool(0.6) {
            // internal traffic from a small pool of hosts/ports
            (
                Direction::Internal,
                FlowFields {
                    src_ip: Ip4::new(192, 168, 0, rng.gen_range(1..6)),
                    src_port: 40_000 + rng.gen_range(0..4u16),
                    dst_ip: Ip4::new(9, 9, 9, 9),
                    dst_port: 53,
                    proto,
                },
            )
        } else {
            // external traffic at a port that may or may not be mapped
            (
                Direction::External,
                FlowFields {
                    src_ip: Ip4::new(9, 9, 9, 9),
                    src_port: 53,
                    dst_ip: EXT_IP,
                    dst_port: 60_000 + rng.gen_range(0..40u16),
                    proto,
                },
            )
        };

        let mut out_frame: Option<(Vec<u8>, Direction)> = None;
        let mut capture = |frame: &[u8], d: Direction| {
            out_frame = Some((frame.to_vec(), d));
        };
        let (verdict, _ns) = tb.shoot(
            nf,
            dir,
            |buf| {
                let b = match proto {
                    Proto::Tcp => PacketBuilder::tcp(
                        fields.src_ip,
                        fields.dst_ip,
                        fields.src_port,
                        fields.dst_port,
                    ),
                    Proto::Udp => PacketBuilder::udp(
                        fields.src_ip,
                        fields.dst_ip,
                        fields.src_port,
                        fields.dst_port,
                    ),
                };
                b.payload(payload).build_into(buf).unwrap()
            },
            now,
            Some(&mut capture),
        );

        let output = match verdict {
            Verdict::Drop => Output::Drop,
            Verdict::Forward(_) => {
                let (frame, out_dir) = out_frame.expect("forwarded frame captured");
                let (off, ff) = parse_l3l4(&frame)
                    .unwrap_or_else(|e| panic!("{}: forwarded frame must parse ({e})", nf.name()));
                // Byte-level: IPv4 checksum verifies.
                let ip = vignat_repro::packet::ipv4::Ipv4Packet::parse(&frame[14..]).unwrap();
                assert!(
                    ip.verify_checksum(),
                    "{}: bad IPv4 checksum at step {step}",
                    nf.name()
                );
                // Byte-level: payload untouched (S.data = P.data).
                let l4_hdr = match ff.proto {
                    Proto::Tcp => 20,
                    Proto::Udp => 8,
                };
                assert_eq!(
                    &frame[off.l4 + l4_hdr..off.l4 + l4_hdr + payload.len()],
                    payload,
                    "{}: payload altered at step {step}",
                    nf.name()
                );
                Output::Forward {
                    iface: out_dir,
                    fields: ff,
                }
            }
        };
        let input = PacketInput { dir, fields };
        if let Err(v) = spec.observe(&input, now, &output) {
            panic!("{}: RFC 3022 violation at step {step}: {v}", nf.name());
        }
    }
    assert!(spec.steps() as usize == steps);
}

#[test]
fn verified_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = VigNatMb::new(cfg());
        differential_run(&mut nf, 500, seed);
    }
}

#[test]
fn unverified_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = UnverifiedNat::new(cfg());
        differential_run(&mut nf, 500, seed);
    }
}

#[test]
fn netfilter_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = NetfilterNat::new(cfg());
        differential_run(&mut nf, 500, seed);
    }
}

/// The three NATs agree on *whether* each internal packet is forwarded
/// (they may pick different external ports, which the spec allows; but
/// admit/drop is fully determined by the RFC given identical capacity
/// and expiry). A divergence here would mean two implementations read
/// the RFC differently.
#[test]
fn all_nats_agree_on_forwarding_decisions() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut vig = VigNatMb::new(cfg());
    let mut unv = UnverifiedNat::new(cfg());
    let mut netf = NetfilterNat::new(cfg());
    let mut now = Time::from_secs(1);

    for step in 0..600 {
        now = now.plus(rng.gen_range(1_000_000..3_000_000_000));
        let host = rng.gen_range(1..40u8);
        let port = 30_000 + rng.gen_range(0..3u16);

        let decide = |nf: &mut dyn Middlebox| -> bool {
            let mut frame =
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(9, 9, 9, 9), port, 53)
                    .build();
            matches!(
                nf.process(Direction::Internal, &mut frame, now),
                Verdict::Forward(_)
            )
        };

        let f1 = decide(&mut vig);
        let f2 = decide(&mut unv);
        let f3 = decide(&mut netf);
        assert_eq!(f1, f2, "verified vs unverified diverged at step {step}");
        assert_eq!(f1, f3, "verified vs netfilter diverged at step {step}");
        assert_eq!(
            vig.occupancy(),
            unv.occupancy(),
            "occupancy diverged at step {step}"
        );
        assert_eq!(
            vig.occupancy(),
            netf.occupancy(),
            "occupancy diverged at step {step}"
        );
    }
}
