//! Workspace-level differential test: every NAT implementation in the
//! repo (Verified, Unverified, NetFilter-analog) is run over the same
//! randomized frame workload through the full testbed path, and every
//! observable decision is checked against the executable RFC 3022
//! specification. Byte-level properties (checksum validity, payload
//! preservation — the spec's `S.data = P.data`) are checked on the
//! actual output frames.
//!
//! The TCP-aware configurations run the same machinery with per-class
//! lifetimes (RFC 5382 transitory vs established timers): random TCP
//! flag mixes — handshakes, mid-stream RSTs, SYN+FIN oddities,
//! simultaneous closes — must drive the verified NAT and the
//! NetFilter analog through *identical* tracker transitions, proven
//! both against the spec (every decision) and against each other
//! (verdict + occupancy lockstep, which pins the per-class expiry
//! schedules to be equal).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::baselines::{NetfilterNat, UnverifiedNat};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::tcp::flags;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, FlowFields, Ip4, Proto};
use vignat_repro::sim::harness::Testbed;
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};
use vignat_repro::spec::{Output, PacketInput, SpecChecker};

const EXT_IP: Ip4 = Ip4::new(203, 0, 113, 1);

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 32,
        expiry_ns: Time::from_secs(5).nanos(),
        external_ip: EXT_IP,
        start_port: 60_000,
        ..NatConfig::paper_default()
    }
}

/// The TCP-aware configuration: short transitory, long established,
/// UDP in between — every class boundary is exercised by the random
/// 1 ms..2 s time steps.
fn tcp_cfg() -> NatConfig {
    NatConfig {
        tcp_transitory_ns: Time::from_secs(1).nanos(),
        tcp_established_ns: Time::from_secs(30).nanos(),
        ..cfg()
    }
}

/// Drive `nf` with `steps` randomized packets, checking every decision
/// against the spec and every forwarded frame at byte level. TCP
/// segments carry random flag mixes (any subset of FIN|SYN|RST|ACK —
/// including adversarial combinations like SYN+FIN), so under a
/// per-class `c` the whole tracker state space is walked.
fn differential_run(nf: &mut dyn Middlebox, steps: usize, seed: u64, c: NatConfig) {
    let mut tb = Testbed::new(64);
    let mut spec = SpecChecker::new(c);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = Time::from_secs(1);
    let payload = b"payload-under-test";

    for step in 0..steps {
        now = now.plus(rng.gen_range(1_000_000..2_000_000_000));
        let proto = if rng.gen_bool(0.5) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        let tcp_flags = if proto == Proto::Tcp {
            rng.gen::<u8>() & (flags::FIN | flags::SYN | flags::RST | flags::ACK)
        } else {
            0
        };
        let (dir, fields) = if rng.gen_bool(0.6) {
            // internal traffic from a small pool of hosts/ports
            (
                Direction::Internal,
                FlowFields {
                    src_ip: Ip4::new(192, 168, 0, rng.gen_range(1..6)),
                    src_port: 40_000 + rng.gen_range(0..4u16),
                    dst_ip: Ip4::new(9, 9, 9, 9),
                    dst_port: 53,
                    proto,
                },
            )
        } else {
            // external traffic at a port that may or may not be mapped
            (
                Direction::External,
                FlowFields {
                    src_ip: Ip4::new(9, 9, 9, 9),
                    src_port: 53,
                    dst_ip: EXT_IP,
                    dst_port: 60_000 + rng.gen_range(0..40u16),
                    proto,
                },
            )
        };

        let mut out_frame: Option<(Vec<u8>, Direction)> = None;
        let mut capture = |frame: &[u8], d: Direction| {
            out_frame = Some((frame.to_vec(), d));
        };
        let (verdict, _ns) = tb.shoot(
            nf,
            dir,
            |buf| {
                let b = match proto {
                    Proto::Tcp => PacketBuilder::tcp(
                        fields.src_ip,
                        fields.dst_ip,
                        fields.src_port,
                        fields.dst_port,
                    )
                    .tcp_flags(tcp_flags),
                    Proto::Udp => PacketBuilder::udp(
                        fields.src_ip,
                        fields.dst_ip,
                        fields.src_port,
                        fields.dst_port,
                    ),
                };
                b.payload(payload).build_into(buf).unwrap()
            },
            now,
            Some(&mut capture),
        );

        let output = match verdict {
            Verdict::Drop => Output::Drop,
            Verdict::Forward(_) => {
                let (frame, out_dir) = out_frame.expect("forwarded frame captured");
                let (off, ff) = parse_l3l4(&frame)
                    .unwrap_or_else(|e| panic!("{}: forwarded frame must parse ({e})", nf.name()));
                // Byte-level: IPv4 checksum verifies.
                let ip = vignat_repro::packet::ipv4::Ipv4Packet::parse(&frame[14..]).unwrap();
                assert!(
                    ip.verify_checksum(),
                    "{}: bad IPv4 checksum at step {step}",
                    nf.name()
                );
                // Byte-level: payload untouched (S.data = P.data).
                let l4_hdr = match ff.proto {
                    Proto::Tcp => 20,
                    Proto::Udp => 8,
                };
                assert_eq!(
                    &frame[off.l4 + l4_hdr..off.l4 + l4_hdr + payload.len()],
                    payload,
                    "{}: payload altered at step {step}",
                    nf.name()
                );
                Output::Forward {
                    iface: out_dir,
                    fields: ff,
                }
            }
        };
        let input = PacketInput {
            dir,
            fields,
            tcp_flags,
        };
        if let Err(v) = spec.observe(&input, now, &output) {
            panic!("{}: RFC 3022 violation at step {step}: {v}", nf.name());
        }
    }
    assert!(spec.steps() as usize == steps);
}

#[test]
fn verified_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = VigNatMb::new(cfg());
        differential_run(&mut nf, 500, seed, cfg());
    }
}

#[test]
fn unverified_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = UnverifiedNat::new(cfg());
        differential_run(&mut nf, 500, seed, cfg());
    }
}

#[test]
fn netfilter_nat_meets_the_spec_on_random_workloads() {
    for seed in 0..4 {
        let mut nf = NetfilterNat::new(cfg());
        differential_run(&mut nf, 500, seed, cfg());
    }
}

/// The tentpole differential: the verified NAT under per-class TCP
/// lifetimes, checked decision-by-decision against the spec over mixed
/// TCP/UDP schedules with random flag combinations.
#[test]
fn verified_nat_meets_the_spec_with_tcp_lifetimes() {
    for seed in 0..4 {
        let mut nf = VigNatMb::new(tcp_cfg());
        differential_run(&mut nf, 500, 0x7c9 + seed, tcp_cfg());
    }
}

/// The extended NetFilter analog models the same per-class timers, so
/// the same spec run must hold for it too.
#[test]
fn netfilter_nat_meets_the_spec_with_tcp_lifetimes() {
    for seed in 0..4 {
        let mut nf = NetfilterNat::new(tcp_cfg());
        differential_run(&mut nf, 500, 0x43f + seed, tcp_cfg());
    }
}

/// Verified ≡ NetFilter under per-class TCP lifetimes: internal-only
/// traffic (so port-selection differences can't skew external hits)
/// with random flag mixes, verdicts and occupancy compared in
/// lockstep after every packet. Occupancy equality is the sharp claim:
/// it holds only if both NATs put every connection in the same timeout
/// class at every instant — i.e. their TCP trackers and per-class
/// expiry schedules are identical.
#[test]
fn verified_and_netfilter_agree_under_tcp_lifetimes() {
    let mut rng = StdRng::seed_from_u64(0x7cb1);
    let mut vig = VigNatMb::new(tcp_cfg());
    let mut netf = NetfilterNat::new(tcp_cfg());
    let mut now = Time::from_secs(1);

    for step in 0..1_500 {
        now = now.plus(rng.gen_range(1_000_000..2_500_000_000));
        let host = rng.gen_range(1..48u8);
        let port = 30_000 + rng.gen_range(0..2u16);
        let proto = if rng.gen_bool(0.7) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        let fl = rng.gen::<u8>() & (flags::FIN | flags::SYN | flags::RST | flags::ACK);

        let decide = |nf: &mut dyn Middlebox| -> bool {
            let src = Ip4::new(10, 0, 0, host);
            let dst = Ip4::new(9, 9, 9, 9);
            let mut frame = match proto {
                Proto::Tcp => PacketBuilder::tcp(src, dst, port, 443)
                    .tcp_flags(fl)
                    .build(),
                Proto::Udp => PacketBuilder::udp(src, dst, port, 53).build(),
            };
            matches!(
                nf.process(Direction::Internal, &mut frame, now),
                Verdict::Forward(_)
            )
        };

        let f1 = decide(&mut vig);
        let f2 = decide(&mut netf);
        assert_eq!(f1, f2, "verified vs netfilter diverged at step {step}");
        assert_eq!(
            vig.occupancy(),
            netf.occupancy(),
            "per-class expiry schedules diverged at step {step}"
        );
    }
}

/// Directed TCP races, each NAT driven through its own mapping and the
/// pair compared through occupancy: a mid-stream RST must demote an
/// established connection to the transitory timer, and a simultaneous
/// close (FIN from both sides in the same instant) must do the same —
/// in both the verified NAT and the NetFilter analog.
#[test]
fn tcp_races_rst_and_simultaneous_close() {
    for race_rst in [true, false] {
        let run = |nf: &mut dyn Middlebox| -> (usize, usize, usize) {
            let lan = Ip4::new(10, 0, 0, 1);
            let wan = Ip4::new(9, 9, 9, 9);
            let t = Time::from_secs(1);
            // Full handshake -> Established (30 s timer).
            let mut syn = PacketBuilder::tcp(lan, wan, 40_000, 443)
                .tcp_flags(flags::SYN)
                .build();
            assert!(matches!(
                nf.process(Direction::Internal, &mut syn, t),
                Verdict::Forward(_)
            ));
            let (_, of) = parse_l3l4(&syn).unwrap();
            let mut synack = PacketBuilder::tcp(wan, EXT_IP, 443, of.src_port)
                .tcp_flags(flags::SYN | flags::ACK)
                .build();
            assert!(matches!(
                nf.process(Direction::External, &mut synack, t),
                Verdict::Forward(_)
            ));
            let mut ack = PacketBuilder::tcp(lan, wan, 40_000, 443)
                .tcp_flags(flags::ACK)
                .build();
            nf.process(Direction::Internal, &mut ack, t);
            let established = nf.occupancy();

            // The race at t+2: RST from inside, or FINs crossing.
            let t2 = t.plus(Time::from_secs(2).nanos());
            if race_rst {
                let mut rst = PacketBuilder::tcp(lan, wan, 40_000, 443)
                    .tcp_flags(flags::RST)
                    .build();
                nf.process(Direction::Internal, &mut rst, t2);
            } else {
                let mut fin_in = PacketBuilder::tcp(lan, wan, 40_000, 443)
                    .tcp_flags(flags::FIN | flags::ACK)
                    .build();
                nf.process(Direction::Internal, &mut fin_in, t2);
                let mut fin_out = PacketBuilder::tcp(wan, EXT_IP, 443, of.src_port)
                    .tcp_flags(flags::FIN | flags::ACK)
                    .build();
                nf.process(Direction::External, &mut fin_out, t2);
            }

            // t+4: past the transitory timer (1 s), far inside the
            // established one (30 s). A UDP tick triggers expiry.
            let t3 = t.plus(Time::from_secs(4).nanos());
            let mut tick = PacketBuilder::udp(Ip4::new(10, 0, 0, 9), wan, 100, 53).build();
            nf.process(Direction::Internal, &mut tick, t3);
            let after_race = nf.occupancy();

            // Control: without the race the mapping would still be
            // alive at t+4 — prove it by opening a fresh connection and
            // replaying the schedule's tail in a second NAT is overkill;
            // instead just assert below that the raced mapping is gone
            // while the tick's own mapping is present.
            (established, after_race, 1)
        };

        let vig = run(&mut VigNatMb::new(tcp_cfg()));
        let netf = run(&mut NetfilterNat::new(tcp_cfg()));
        assert_eq!(vig.0, 1, "handshake built one mapping");
        assert_eq!(
            vig.1, 1,
            "raced connection dead at transitory pace; only the tick's mapping lives (rst={race_rst})"
        );
        assert_eq!(vig, netf, "verified vs netfilter diverged (rst={race_rst})");
    }
}

/// The three NATs agree on *whether* each internal packet is forwarded
/// (they may pick different external ports, which the spec allows; but
/// admit/drop is fully determined by the RFC given identical capacity
/// and expiry). A divergence here would mean two implementations read
/// the RFC differently.
#[test]
fn all_nats_agree_on_forwarding_decisions() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut vig = VigNatMb::new(cfg());
    let mut unv = UnverifiedNat::new(cfg());
    let mut netf = NetfilterNat::new(cfg());
    let mut now = Time::from_secs(1);

    for step in 0..600 {
        now = now.plus(rng.gen_range(1_000_000..3_000_000_000));
        let host = rng.gen_range(1..40u8);
        let port = 30_000 + rng.gen_range(0..3u16);

        let decide = |nf: &mut dyn Middlebox| -> bool {
            let mut frame =
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(9, 9, 9, 9), port, 53)
                    .build();
            matches!(
                nf.process(Direction::Internal, &mut frame, now),
                Verdict::Forward(_)
            )
        };

        let f1 = decide(&mut vig);
        let f2 = decide(&mut unv);
        let f3 = decide(&mut netf);
        assert_eq!(f1, f2, "verified vs unverified diverged at step {step}");
        assert_eq!(f1, f3, "verified vs netfilter diverged at step {step}");
        assert_eq!(
            vig.occupancy(),
            unv.occupancy(),
            "occupancy diverged at step {step}"
        );
        assert_eq!(
            vig.occupancy(),
            netf.occupancy(),
            "occupancy diverged at step {step}"
        );
    }
}
