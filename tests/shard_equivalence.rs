//! Sharded/unsharded differential tests, in the style of
//! `tests/batch_equivalence.rs`: the N-shard NAT must be
//! packet-for-packet equivalent to its references on adversarial
//! traffic.
//!
//! Three equivalences, which together give the sharding correctness
//! argument:
//!
//! 1. **1 shard ≡ unsharded**, byte-for-byte: with one shard the
//!    partition is trivial (full port range, `shard_of ≡ 0`), so every
//!    output frame, drop reason, slot, port and LRU timestamp must be
//!    identical to the plain [`FlowManager`]-backed NAT.
//! 2. **N shards ≡ N independent 1-shard NATs**, byte-for-byte: each
//!    shard behaves exactly like a standalone NAT configured with that
//!    shard's capacity/port slice and fed its dispatch subsequence —
//!    per-shard state disjointness means partitioning changes *where*
//!    state lives, never *what* the NAT does. Combined with (1), the
//!    N-shard NAT is packet-for-packet the composition of N unsharded
//!    NATs.
//! 3. **parallel ≡ sequential**: the `std::thread` driver
//!    ([`ParallelShardedNat`]) produces bit-identical frames, verdicts
//!    and state to the single-threaded sharded NAT — threads add
//!    concurrency, not observable behaviour (shards share nothing).
//!
//! Plus the semantic anchor: the sharded NAT's decisions satisfy the
//! executable RFC 3022 spec, so the per-flow NAT invariants survive
//! partitioning unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::libvig::map::MapKey;
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowManager, FlowTable, NatConfig, ShardedFlowManager};
use vignat_repro::packet::{builder::PacketBuilder, Direction, Flow, FlowFields, Ip4, Proto};
use vignat_repro::sim::dpdk::Mempool;
use vignat_repro::sim::frame_env::{frame_flow_id, frame_l4_dst_port};
use vignat_repro::sim::harness::ParallelShardedNat;
use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb, Verdict, VigNatMb};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    }
}

/// One randomized frame of adversarial traffic (mirrors
/// `batch_equivalence::gen_frame`): mostly valid internal flows from a
/// small pool (repeats, new flows, per-shard TableFull), return traffic
/// to live and dead ports in and out of the NAT range, bit flips,
/// truncations, and raw noise.
fn gen_frame(rng: &mut StdRng) -> (Direction, Vec<u8>) {
    let class = rng.gen_range(0..10u8);
    match class {
        0..=4 => {
            let host = rng.gen_range(1..=48u8);
            let port = 1024 + u16::from(rng.gen_range(0..4u8));
            let frame = if rng.gen_bool(0.5) {
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 53).build()
            } else {
                PacketBuilder::tcp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 80).build()
            };
            (Direction::Internal, frame)
        }
        5..=6 => {
            let ext_port = 4090 + u16::from(rng.gen_range(0..80u8)); // straddles the range
            let frame =
                PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(203, 0, 113, 1), 53, ext_port)
                    .build();
            (Direction::External, frame)
        }
        7 => {
            let mut frame =
                PacketBuilder::tcp(Ip4::new(10, 0, 0, 1), Ip4::new(1, 1, 1, 1), 1024, 80).build();
            for _ in 0..rng.gen_range(1..=4) {
                let byte = rng.gen_range(0..frame.len());
                frame[byte] ^= 1u8 << rng.gen_range(0..8);
            }
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
        8 => {
            let frame =
                PacketBuilder::udp(Ip4::new(10, 0, 0, 2), Ip4::new(1, 1, 1, 1), 1025, 53).build();
            let cut = rng.gen_range(0..frame.len());
            (Direction::Internal, frame[..cut].to_vec())
        }
        _ => {
            let len = rng.gen_range(0..120usize);
            let frame: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
    }
}

/// Observable state of a plain flow manager.
fn fm_state(fm: &FlowManager) -> Vec<(usize, Flow, Time)> {
    fm.check_coherence().expect("unsharded coherence");
    fm.iter_lru().map(|(s, f, t)| (s, *f, t)).collect()
}

/// Observable state of a sharded flow manager: per-shard LRU snapshots
/// with global slot ids, coherence (including the routing invariant)
/// asserted.
fn sharded_state(t: &ShardedFlowManager) -> Vec<Vec<(usize, Flow, Time)>> {
    FlowTable::check_coherence(t).expect("sharded coherence");
    t.snapshot()
}

#[test]
fn one_shard_is_byte_identical_to_unsharded() {
    let mut rng = StdRng::seed_from_u64(0x5A4D1);
    let c = cfg();
    let mut plain = VigNatMb::new(c);
    let mut sharded = ShardedVigNatMb::sharded(c, 1);

    let mut now = Time::from_secs(1);
    for round in 0..600 {
        now = now.plus(rng.gen_range(1_000_000..800_000_000));
        let (dir, frame) = gen_frame(&mut rng);
        let mut f_plain = frame.clone();
        let mut f_sharded = frame;
        let v_plain = plain.process(dir, &mut f_plain, now);
        let v_sharded = sharded.process(dir, &mut f_sharded, now);
        assert_eq!(v_plain, v_sharded, "verdict diverged in round {round}");
        assert_eq!(f_plain, f_sharded, "frame bytes diverged in round {round}");
        assert_eq!(plain.occupancy(), sharded.occupancy());
        assert_eq!(plain.expired_total(), sharded.expired_total());
    }
    // Full-state equality: with one shard, global slots are the local
    // slots and the port range is the whole range.
    let s = sharded_state(sharded.flow_manager());
    assert_eq!(s.len(), 1);
    assert_eq!(fm_state(plain.flow_manager()), s[0]);
    assert!(plain.occupancy() > 0, "the run must have built flow state");
}

/// Dispatch rule shared by the N-independent-NATs reference: the exact
/// rule the sharded table routes by (flow-key hash for internal, port
/// partition for external, shard 0 for junk).
fn dispatch_of(table: &ShardedFlowManager, dir: Direction, frame: &[u8]) -> usize {
    match dir {
        Direction::Internal => frame_flow_id(frame)
            .map(|fid| table.shard_of_hash(fid.key_hash()))
            .unwrap_or(0),
        Direction::External => table.shard_of_port(frame_l4_dst_port(frame)).unwrap_or(0),
    }
}

#[test]
fn n_shards_equal_n_independent_one_shard_nats() {
    for shards in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(0x0BA7 + shards as u64);
        let c = cfg();
        let mut sharded = ShardedVigNatMb::sharded(c, shards);
        // The reference: one standalone unsharded NAT per shard, each
        // configured with exactly that shard's capacity and port slice.
        let routing = ShardedFlowManager::new(&c, shards);
        let mut refs: Vec<VigNatMb> = (0..shards)
            .map(|s| VigNatMb::new(routing.shard_cfg(s)))
            .collect();

        let mut now = Time::from_secs(1);
        for round in 0..600 {
            now = now.plus(rng.gen_range(1_000_000..800_000_000));
            let (dir, frame) = gen_frame(&mut rng);
            let s = dispatch_of(&routing, dir, &frame);
            let mut f_sharded = frame.clone();
            let mut f_ref = frame;
            let v_sharded = sharded.process(dir, &mut f_sharded, now);
            // The reference shard expires on its own clock — but only
            // when it actually receives a packet, exactly like a real
            // per-core run-to-completion loop. The sharded NAT expires
            // *all* shards each packet; flows are only ever observed
            // through their own shard's packets, so the difference is
            // unobservable — which is precisely what this test proves.
            let v_ref = refs[s].process(dir, &mut f_ref, now);
            assert_eq!(
                v_sharded, v_ref,
                "verdict diverged in round {round} (shard {s} of {shards})"
            );
            assert_eq!(f_sharded, f_ref, "bytes diverged in round {round}");
        }
        // Final state: the sharded NAT expires *every* shard on every
        // packet, while a reference shard only expires when it receives
        // one — so a reference may still hold stale (dead) flows. That
        // difference is unobservable through packets (expiry always
        // runs before lookup), which the byte-equality above already
        // proved; to compare resident state, flush everyone's expiry
        // clock to the same instant with one out-of-range return
        // packet (drops on every NAT, mutates nothing but expiry).
        now = now.plus(1_000_000);
        let flush =
            PacketBuilder::udp(Ip4::new(9, 9, 9, 9), Ip4::new(203, 0, 113, 1), 1, 9).build();
        let mut f = flush.clone();
        assert_eq!(
            sharded.process(Direction::External, &mut f, now),
            Verdict::Drop
        );
        let sh_state = sharded_state(sharded.flow_manager());
        let per = routing.per_shard_capacity();
        for (s, r) in refs.iter_mut().enumerate() {
            let mut f = flush.clone();
            assert_eq!(r.process(Direction::External, &mut f, now), Verdict::Drop);
            // Reference slots are shard-local; globalize for comparison.
            let ref_state: Vec<(usize, Flow, Time)> = fm_state(r.flow_manager())
                .into_iter()
                .map(|(slot, flow, t)| (s * per + slot, flow, t))
                .collect();
            assert_eq!(
                sh_state[s], ref_state,
                "shard {s} of {shards} diverged from its standalone reference"
            );
        }
        assert!(
            sharded.occupancy() > 0,
            "the run must have built flow state"
        );
    }
}

#[test]
fn parallel_driver_equals_sequential_sharded() {
    let shards = 2;
    let c = cfg();
    let mut rng = StdRng::seed_from_u64(0xD15A);
    let mut seq = ShardedVigNatMb::sharded(c, shards);
    let mut par = ParallelShardedNat::new(c, shards, 64);
    let mut pool = Mempool::new(64);

    let mut now = Time::from_secs(1);
    for round in 0..250 {
        now = now.plus(rng.gen_range(1_000_000..800_000_000));
        let burst_len = rng.gen_range(1..=32usize);
        let dir = if rng.gen_bool(0.8) {
            Direction::Internal
        } else {
            Direction::External
        };
        let frames: Vec<Vec<u8>> = (0..burst_len)
            .map(|_| {
                let (_, f) = gen_frame(&mut rng);
                f
            })
            .collect();

        // Sequential sharded reference through the batched middlebox path.
        let bufs: Vec<_> = frames
            .iter()
            .map(|f| {
                let b = pool.get().expect("pool sized for a burst");
                pool.write_frame(b, f);
                b
            })
            .collect();
        let v_seq = seq.process_burst(dir, &mut pool, &bufs, now);

        // Parallel driver on its own copy of the same burst.
        let mut par_frames = frames.clone();
        let v_par = par.process_burst_parallel(dir, &mut par_frames, now);

        assert_eq!(v_seq, v_par, "verdicts diverged in round {round}");
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(
                pool.frame(*b),
                &par_frames[i][..],
                "frame bytes diverged in round {round}, packet {i}"
            );
            pool.put(*b);
        }
        assert_eq!(
            sharded_state(seq.flow_manager()),
            sharded_state(par.table()),
            "flow-table state diverged in round {round}"
        );
        assert_eq!(seq.expired_total(), par.expired_total());
    }
    assert!(par.occupancy() > 0, "the run must have built flow state");
}

#[test]
fn sharded_nat_satisfies_rfc3022_spec() {
    use vignat_repro::nat::SimpleEnv;
    use vignat_repro::spec::{PacketInput, SpecChecker};

    // Ample capacity so no shard fills (per-shard fullness is a
    // documented deviation from the global-capacity spec; it is pinned
    // down in tests/shard_edge_cases.rs instead).
    let c = NatConfig {
        capacity: 256,
        expiry_ns: Time::from_secs(10).nanos(),
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    };
    let mut env = SimpleEnv::sharded(c, 4);
    let mut spec = SpecChecker::new(c);
    let mut rng = StdRng::seed_from_u64(0x3022);
    let mut now = Time::from_secs(1);
    for _ in 0..1500 {
        now = now.plus(rng.gen_range(1_000_000..3_000_000_000));
        let proto = if rng.gen_bool(0.5) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        let (dir, fields) = if rng.gen_bool(0.6) {
            (
                Direction::Internal,
                FlowFields {
                    src_ip: Ip4::new(192, 168, 0, rng.gen_range(1..32u8)),
                    dst_ip: Ip4::new(1, 1, 1, 1),
                    src_port: 5000,
                    dst_port: 80,
                    proto,
                },
            )
        } else {
            (
                Direction::External,
                FlowFields {
                    src_ip: Ip4::new(1, 1, 1, 1),
                    dst_ip: Ip4::new(10, 1, 0, 1),
                    src_port: 80,
                    dst_port: rng.gen_range(995..1300u16),
                    proto,
                },
            )
        };
        let output = env.step(dir, fields, now);
        let input = PacketInput {
            dir,
            fields,
            tcp_flags: 0,
        };
        spec.observe(&input, now, &output)
            .unwrap_or_else(|v| panic!("RFC 3022 violation at step {}: {v}", spec.steps()));
        assert!(FlowTable::check_coherence(env.flow_manager()).is_ok());
    }
    assert!(env.flow_manager().flow_count() > 0);
}
