//! Differential proof that timer-wheel expiry is a **pure
//! optimization**: at every tick, [`vignat::ExpiryMode::Wheel`] and
//! [`vignat::ExpiryMode::Scan`] (the naive LRU walk — the oracle)
//! expire the *same set* of flows, leave the *same LRU state*, and
//! reuse freed slots in the *same order*, so no downstream observer —
//! port assignments, verdicts, TX bytes — can tell the modes apart.
//!
//! Four angles, mirroring the libVig-level `wheel_drain_equals_scan_drain`
//! proptest one layer up, where the wheel sits behind the
//! `FlowManager`/`ShardedFlowManager` seam:
//!
//! 1. **adversarial proptest schedules** — bursty arrivals, refresh
//!    storms on a handful of flows, big time jumps, and churn at the
//!    capacity edge, with full-state comparison after every operation;
//! 2. **exhaustive small-capacity suite** — every schedule of length 6
//!    over a 5-op alphabet at capacity 2 (15 625 runs), so the
//!    boundary interleavings a random generator can miss are *all*
//!    covered;
//! 3. **boundary semantics shared by both paths** — `last_active ==
//!    threshold` expires (the dchain's `expire_one` contract), one
//!    tick younger survives, zero-age flows die under a zero-duration
//!    timeout — asserted against wheel and scan in the same breath;
//! 4. **scale** — the full middlebox (frames in, frames out) at 64k
//!    capacity and the sharded table at 2^20 flows across 1/2/4
//!    shards, where the endpoint pool spills onto multiple external
//!    addresses (the million-flow configuration this suite exists
//!    for). The 2^20 full-fill runs in the release `nightly-deep` CI
//!    job (`--ignored`); a 2^16 variant of the same churn runs on
//!    every push.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::libvig::map::MapKey;
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{ExpiryMode, FlowManager, FlowTable, NatConfig, ShardedFlowManager};
use vignat_repro::packet::{builder::PacketBuilder, Direction, Flow, FlowId, Ip4, Proto};
use vignat_repro::sim::middlebox::{Middlebox, VigNatMb};

fn cfg(capacity: usize, expiry_ns: u64) -> NatConfig {
    NatConfig {
        capacity,
        expiry_ns,
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1024,
        ..NatConfig::paper_default()
    }
}

/// Distinct internal flows for up to 2^24 indices.
fn fid(i: u32) -> FlowId {
    FlowId {
        src_ip: Ip4(0x0a00_0000 | (i & 0x00ff_ffff)),
        src_port: 10_000 ^ (i >> 24) as u16,
        dst_ip: Ip4::new(1, 1, 1, 1),
        dst_port: 80,
        proto: Proto::Udp,
    }
}

/// Full observable state: coherence asserted (wheel consistency
/// included), then the LRU sequence — slot, flow, stamp, oldest first.
fn snapshot(fm: &FlowManager) -> Vec<(usize, Flow, Time)> {
    fm.check_coherence().expect("coherence");
    fm.iter_lru().map(|(s, f, t)| (s, *f, t)).collect()
}

/// A wheel-mode and a scan-mode `FlowManager` driven in lockstep.
struct Pair {
    wheel: FlowManager,
    scan: FlowManager,
    now: Time,
    texp: u64,
}

impl Pair {
    fn new(c: &NatConfig) -> Pair {
        Pair {
            wheel: FlowManager::with_expiry(c, ExpiryMode::Wheel),
            scan: FlowManager::with_expiry(c, ExpiryMode::Scan),
            now: Time::from_secs(1),
            texp: c.expiry_ns,
        }
    }

    /// A packet of flow `i` arrives: refresh on hit, allocate on miss.
    /// Both modes must agree on hit/miss, slot, and external endpoint.
    fn arrive(&mut self, i: u32) {
        let f = fid(i);
        let hit_w = self.wheel.lookup_internal(&f).map(|(s, _)| s);
        let hit_s = self.scan.lookup_internal(&f).map(|(s, _)| s);
        assert_eq!(hit_w, hit_s, "hit/miss diverged for flow {i}");
        match hit_w {
            Some(slot) => {
                self.wheel.rejuvenate(slot, self.now);
                self.scan.rejuvenate(slot, self.now);
            }
            None => {
                let a = self.wheel.allocate(f, self.now);
                let b = self.scan.allocate(f, self.now);
                assert_eq!(a, b, "allocation diverged for flow {i}");
            }
        }
    }

    fn advance(&mut self, ns: u64) {
        self.now = self.now.plus(ns);
    }

    /// Expire at the NAT's threshold (`now - Texp`); counts must match.
    fn expire(&mut self) -> usize {
        let thr = Time(self.now.nanos().saturating_sub(self.texp));
        let a = self.wheel.expire(thr);
        let b = self.scan.expire(thr);
        assert_eq!(a, b, "expiry count diverged at {:?}", thr);
        a
    }

    /// The full-state equivalence check, plus slot-reuse order: filling
    /// both tables from their current free lists must allocate the same
    /// slot sequence (this is what makes the modes indistinguishable to
    /// future port assignments).
    fn assert_equal(&self) {
        assert_eq!(snapshot(&self.wheel), snapshot(&self.scan));
    }

    fn assert_reuse_order_equal(&mut self, tag: u32) {
        let mut k = 0;
        loop {
            let f = fid(0x0080_0000 + tag * 0x1_0000 + k);
            let a = self.wheel.allocate(f, self.now);
            let b = self.scan.allocate(f, self.now);
            assert_eq!(a, b, "free-list order diverged at refill {k}");
            if a.is_none() {
                break;
            }
            k += 1;
        }
        self.assert_equal();
    }
}

proptest! {
    /// Angle 1: adversarial schedules at capacity 8 with flows drawn
    /// from a 24-id population (3× capacity — constant churn at the
    /// table-full edge), refresh storms (many arrivals collapse onto
    /// the same ids), sub-Texp steps and 10× jumps, with expiry and a
    /// full-state comparison after every single operation.
    #[test]
    fn wheel_equals_scan_under_adversarial_schedules(
        ops in proptest::collection::vec((0u8..10, 0u32..24, 1u64..2_500), 1..120),
    ) {
        let c = cfg(8, 1_000);
        let mut pair = Pair::new(&c);
        for (kind, idx, step) in ops {
            match kind {
                0..=5 => pair.arrive(idx),
                6 | 7 => pair.advance(step),
                8 => pair.advance(step * 10), // time jump past many Texp
                _ => { pair.expire(); }
            }
            // Every tick, not just the end: the equivalence must hold
            // at every intermediate state the NAT could be observed in.
            pair.expire();
            pair.assert_equal();
        }
        pair.assert_reuse_order_equal(0);
    }
}

/// Angle 2: exhaustive small-capacity suite — all 5^6 schedules over
/// {arrive(0), arrive(1), arrive(2), step+expire, jump+expire} at
/// capacity 2 (three flows fighting for two slots), state compared
/// after every op of every schedule.
#[test]
fn wheel_equals_scan_exhaustive_small_capacity() {
    let c = cfg(2, 1_000);
    const OPS: u32 = 5;
    const LEN: u32 = 6;
    for mut code in 0..OPS.pow(LEN) {
        let mut pair = Pair::new(&c);
        for _ in 0..LEN {
            match code % OPS {
                0 => pair.arrive(0),
                1 => pair.arrive(1),
                2 => pair.arrive(2),
                3 => pair.advance(400),   // sub-Texp step
                _ => pair.advance(1_100), // > Texp: mass expiry
            }
            code /= OPS;
            pair.expire();
            pair.assert_equal();
        }
    }
}

/// Angle 3: the `dchain::expire_one` boundary, re-audited at wheel
/// granularity and pinned for *both* paths in the same assertions:
/// `last_active == threshold` is expired (inclusive), one tick younger
/// survives, and with a zero-length window (`threshold == now`) a flow
/// allocated *this very tick* dies immediately — in wheel mode that is
/// the overdue/current-slot corner, in scan mode the head-of-LRU
/// corner.
#[test]
fn boundary_semantics_shared_by_both_paths() {
    for mode in [ExpiryMode::Wheel, ExpiryMode::Scan] {
        let c = cfg(4, 1_000);
        let mut fm = FlowManager::with_expiry(&c, mode);
        let t = Time::from_secs(1);

        // last_active == threshold: expired.
        fm.allocate(fid(0), t).unwrap();
        assert_eq!(fm.expire(t), 1, "{mode:?}: ts == threshold must expire");

        // One tick younger than the threshold: survives.
        fm.allocate(fid(1), t.plus(1)).unwrap();
        assert_eq!(fm.expire(t), 0, "{mode:?}: ts > threshold must survive");
        assert_eq!(fm.len(), 1);

        // Rejuvenation moves the boundary: refreshed at t+5, so the
        // flow dies at threshold t+5 exactly, not at its birth stamp.
        fm.rejuvenate(0, t.plus(5));
        assert_eq!(
            fm.expire(t.plus(4)),
            0,
            "{mode:?}: refresh must defer expiry"
        );
        assert_eq!(
            fm.expire(t.plus(5)),
            1,
            "{mode:?}: refreshed stamp is inclusive"
        );

        // Zero-duration window: allocated now, expired now.
        let now = t.plus(1_000_000);
        fm.allocate(fid(2), now).unwrap();
        assert_eq!(fm.expire(now), 1, "{mode:?}: zero-age flow must expire");
        assert!(fm.is_empty());
    }
}

/// Angle 4a: the full middlebox — frames in, frames out — run twice,
/// wheel vs scan, over adversarial traffic with expiry-forcing time
/// steps. Verdicts, rewritten frame bytes (hence per-flow TX bytes),
/// expiry totals, and end-state must be identical.
#[test]
fn middlebox_parity_under_churn() {
    let c = cfg(64, Time::from_secs(2).nanos());
    let mut wheel = VigNatMb::with_expiry(c, ExpiryMode::Wheel);
    let mut scan = VigNatMb::with_expiry(c, ExpiryMode::Scan);
    let mut rng = StdRng::seed_from_u64(0x8EE1);
    let mut now = Time::from_secs(1);
    for round in 0..4_000 {
        now = now.plus(rng.gen_range(1_000_000..900_000_000));
        let (dir, mut f1) = if rng.gen_bool(0.75) {
            let host = rng.gen_range(1..=96u8);
            let port = 1024 + u16::from(rng.gen_range(0..2u8));
            (
                Direction::Internal,
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 53)
                    .build(),
            )
        } else {
            let ext_port = 1000 + u16::from(rng.gen_range(0..120u8)); // straddles the range
            (
                Direction::External,
                PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(10, 1, 0, 1), 53, ext_port)
                    .build(),
            )
        };
        let mut f2 = f1.clone();
        let v1 = wheel.process(dir, &mut f1, now);
        let v2 = scan.process(dir, &mut f2, now);
        assert_eq!(v1, v2, "verdicts diverged in round {round}");
        assert_eq!(f1, f2, "frame bytes diverged in round {round}");
        assert_eq!(
            wheel.expired_total(),
            scan.expired_total(),
            "expiry totals diverged in round {round}"
        );
    }
    assert!(wheel.expired_total() > 0, "the run must have raced expiry");
    assert_eq!(
        snapshot(wheel.flow_manager()),
        snapshot(scan.flow_manager())
    );
}

/// Drive one churn wave through a wheel-mode and a scan-mode sharded
/// table in lockstep; state compared after every expiry.
fn sharded_churn(capacity: usize, shards: usize, waves: usize, wave_flows: u32, seed: u64) {
    let c = cfg(capacity, Time::from_secs(2).nanos());
    let mut wheel = ShardedFlowManager::with_expiry(&c, shards, ExpiryMode::Wheel);
    let mut scan = ShardedFlowManager::with_expiry(&c, shards, ExpiryMode::Scan);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = Time::from_secs(1);
    let mut next_id = 0u32;

    let arrive = |t: &mut ShardedFlowManager, f: FlowId, now: Time| -> Option<usize> {
        let h = f.key_hash();
        if let Some((slot, _)) = t.lookup_internal_hashed(&f, h) {
            t.rejuvenate(slot, now, Direction::Internal, 0);
            return Some(slot);
        }
        let slot = t.allocate_slot_routed(h, now)?;
        let (ip, port) = t.endpoint_of_slot(slot);
        t.insert_hashed(slot, f, ip, port, h, 0);
        Some(slot)
    };

    let mut total_expired = 0usize;
    let mut peak = 0usize;
    for wave in 0..waves {
        // Sustained arrivals: a fresh block of flows plus refreshes of
        // a random slice of the previous block (refresh storm).
        let fresh = next_id..next_id + wave_flows;
        next_id += wave_flows;
        for i in fresh {
            now = now.plus(1_000);
            let a = arrive(&mut wheel, fid(i), now);
            let b = arrive(&mut scan, fid(i), now);
            assert_eq!(a, b, "arrival diverged at flow {i} ({shards} shards)");
        }
        let refresh_lo = next_id.saturating_sub(2 * wave_flows);
        for _ in 0..wave_flows / 2 {
            let i = rng.gen_range(refresh_lo..next_id);
            now = now.plus(100);
            let a = arrive(&mut wheel, fid(i), now);
            let b = arrive(&mut scan, fid(i), now);
            assert_eq!(a, b, "refresh diverged at flow {i} ({shards} shards)");
        }
        peak = peak.max(wheel.flow_count());
        // Step the clock 0.5–3× Texp and expire both.
        now = now.plus(rng.gen_range(1_000_000_000..6_000_000_000));
        let thr = Time(now.nanos().saturating_sub(c.expiry_ns));
        let a = FlowTable::expire(&mut wheel, thr);
        let b = FlowTable::expire(&mut scan, thr);
        assert_eq!(
            a, b,
            "expiry count diverged in wave {wave} ({shards} shards)"
        );
        total_expired += a;
        FlowTable::check_coherence(&wheel).expect("wheel coherence");
        FlowTable::check_coherence(&scan).expect("scan coherence");
        assert_eq!(
            wheel.snapshot(),
            scan.snapshot(),
            "sharded state diverged in wave {wave} ({shards} shards)"
        );
    }
    assert!(peak > 0, "the run must have built flow state");
    assert!(
        total_expired > 0,
        "the run must have churned through expiry"
    );
}

/// Angle 4b (every push): sharded wheel ≡ scan at 2^16 capacity — the
/// pool's first spill onto a second external address — at 1, 2 and 4
/// shards.
#[test]
fn sharded_parity_at_64k() {
    for shards in [1usize, 2, 4] {
        sharded_churn(1 << 16, shards, 4, 24_000, 0x64_000 + shards as u64);
    }
}

/// Angle 4b (nightly-deep, release): the million-flow configuration —
/// 2^20 slots spilling across 17 external addresses, filled to
/// capacity and churned, at 1, 2 and 4 shards. Run with
/// `cargo test --release -- --ignored million`.
#[test]
#[ignore = "million-flow scale; run in release (nightly-deep CI job)"]
fn sharded_parity_at_million_flows() {
    for shards in [1usize, 2, 4] {
        // 6 waves × 220k fresh flows > 2^20 slots: the table reaches
        // capacity under churn and allocation failure parity is
        // exercised at the full million-flow table.
        sharded_churn(1 << 20, shards, 6, 220_000, 0x100_0000 + shards as u64);
    }
}
