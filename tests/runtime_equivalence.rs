//! Persistent-runtime differential tests: the core-pinned shard
//! runtime (`netsim::runtime` — long-lived workers fed through SPSC
//! rings) must be packet-for-packet AND state-identical to the
//! sequential `ShardedFlowManager` oracle, for any worker count and
//! any interleaving of worker execution.
//!
//! This is the persistent-session counterpart of
//! `tests/shard_equivalence.rs`'s `parallel_driver_equals_sequential_sharded`
//! (which covers the one-burst-session path `process_burst_parallel`).
//! Here one pinned session stays alive across every burst of a run, so
//! ring wraparound, worker idle/backoff cycles, and cross-burst state
//! carried inside the workers are all exercised. Four angles:
//!
//! 1. **adversarial bursts** at 1/2/4 workers — the full hostile
//!    generator (junk, bit flips, truncations, straddling return
//!    traffic), verdicts + bytes compared per round, per-flow TX byte
//!    totals, full LRU state and expiry counts at session end;
//! 2. **skewed bursts** — most traffic is a single flow, so one worker
//!    drains deep bursts while its siblings run empty expiry ticks;
//! 3. **port exhaustion** — tiny capacity, hundreds of candidate
//!    flows: every worker's allocator hits TableFull mid-burst;
//! 4. **expiry racing** — virtual-time jumps past `Texp` interleaved
//!    with *empty* bursts (pure expiry ticks on the runtime side,
//!    nothing at all on the oracle side): the idempotent-expiry
//!    argument says totals re-converge at the next non-empty burst,
//!    and this proves it.
//!
//! Pinning is requested everywhere (`pin = true`): where the host
//! permits, workers really are core-pinned; where it doesn't, the
//! graceful-degradation path runs. Equivalence must hold either way —
//! that is the point.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::libvig::map::MapKey;
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowTable, NatConfig, ShardedFlowManager};
use vignat_repro::packet::{builder::PacketBuilder, Direction, Flow, Ip4};
use vignat_repro::sim::dpdk::Mempool;
use vignat_repro::sim::frame_env::frame_flow_id;
use vignat_repro::sim::harness::ParallelShardedNat;
use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb, Verdict};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    }
}

/// One randomized frame of adversarial traffic (the
/// `shard_equivalence` generator): valid internal flows from a small
/// pool, return traffic straddling the NAT port range, bit flips,
/// truncations, raw noise.
fn gen_frame(rng: &mut StdRng) -> (Direction, Vec<u8>) {
    let class = rng.gen_range(0..10u8);
    match class {
        0..=4 => {
            let host = rng.gen_range(1..=48u8);
            let port = 1024 + u16::from(rng.gen_range(0..4u8));
            let frame = if rng.gen_bool(0.5) {
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 53).build()
            } else {
                PacketBuilder::tcp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 80).build()
            };
            (Direction::Internal, frame)
        }
        5..=6 => {
            let ext_port = 4090 + u16::from(rng.gen_range(0..80u8)); // straddles the range
            let frame =
                PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(203, 0, 113, 1), 53, ext_port)
                    .build();
            (Direction::External, frame)
        }
        7 => {
            let mut frame =
                PacketBuilder::tcp(Ip4::new(10, 0, 0, 1), Ip4::new(1, 1, 1, 1), 1024, 80).build();
            for _ in 0..rng.gen_range(1..=4) {
                let byte = rng.gen_range(0..frame.len());
                frame[byte] ^= 1u8 << rng.gen_range(0..8);
            }
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
        8 => {
            let frame =
                PacketBuilder::udp(Ip4::new(10, 0, 0, 2), Ip4::new(1, 1, 1, 1), 1025, 53).build();
            let cut = rng.gen_range(0..frame.len());
            (Direction::Internal, frame[..cut].to_vec())
        }
        _ => {
            let len = rng.gen_range(0..120usize);
            let frame: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
    }
}

/// Observable state of a sharded flow manager: per-shard LRU snapshots,
/// coherence (including the routing invariant) asserted.
fn sharded_state(t: &ShardedFlowManager) -> Vec<Vec<(usize, Flow, Time)>> {
    FlowTable::check_coherence(t).expect("sharded coherence");
    t.snapshot()
}

/// Credit a forwarded frame's bytes to its flow (keyed by the *output*
/// frame's flow hash — the rewritten five-tuple, so internal and
/// return traffic of the same mapping land on different keys, which is
/// fine: both sides account identically or not at all).
fn credit_tx(acct: &mut HashMap<u64, u64>, verdict: Verdict, frame: &[u8]) {
    if matches!(verdict, Verdict::Forward(_)) {
        if let Some(fid) = frame_flow_id(frame) {
            *acct.entry(fid.key_hash()).or_insert(0) += frame.len() as u64;
        }
    }
}

/// The differential core: drive `rounds` bursts from `make_burst`
/// through (a) the sequential sharded oracle and (b) one persistent
/// pinned runtime session at `workers` workers, comparing verdicts and
/// frame bytes every round and per-flow TX bytes, full LRU state, and
/// expiry totals at the end. `now` advances by `make_burst`'s returned
/// step, so callers control expiry pressure.
fn run_differential(
    c: NatConfig,
    workers: usize,
    rounds: usize,
    burst_cap: usize,
    mut make_burst: impl FnMut(&mut StdRng, usize) -> (Direction, Vec<Vec<u8>>, u64),
    seed: u64,
) -> (usize, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = ShardedVigNatMb::sharded(c, workers);
    let mut par = ParallelShardedNat::new(c, workers, burst_cap);
    let mut pool = Mempool::new(burst_cap);
    let mut tx_seq: HashMap<u64, u64> = HashMap::new();
    let mut tx_par: HashMap<u64, u64> = HashMap::new();

    let ((), report) = par.with_runtime(true, |session| {
        let mut now = Time::from_secs(1);
        for round in 0..rounds {
            let (dir, frames, step) = make_burst(&mut rng, round);
            now = now.plus(step);

            // Sequential oracle through the batched middlebox path.
            let bufs: Vec<_> = frames
                .iter()
                .map(|f| {
                    let b = pool.get().expect("pool sized for a burst");
                    pool.write_frame(b, f);
                    b
                })
                .collect();
            let v_seq = seq.process_burst(dir, &mut pool, &bufs, now);

            // Persistent runtime on its own copy of the burst.
            let mut par_frames = frames.clone();
            let v_par = session.process_burst(dir, &mut par_frames, now);

            assert_eq!(
                v_seq, v_par,
                "verdicts diverged in round {round} ({workers} workers)"
            );
            for (i, b) in bufs.iter().enumerate() {
                assert_eq!(
                    pool.frame(*b),
                    &par_frames[i][..],
                    "frame bytes diverged in round {round}, packet {i} ({workers} workers)"
                );
                credit_tx(&mut tx_seq, v_seq[i], pool.frame(*b));
                credit_tx(&mut tx_par, v_par[i], &par_frames[i]);
                pool.put(*b);
            }
            // Expiry totals may transiently lag after an *empty* burst
            // (the runtime ticks idle shards; the oracle's burst loop
            // runs zero chunks), so compare them only when this round
            // carried packets — the idempotent-expiry argument says
            // they re-converge there, and this assertion proves it.
            if !frames.is_empty() {
                assert_eq!(
                    seq.expired_total(),
                    session.expired(),
                    "expiry totals diverged in round {round} ({workers} workers)"
                );
            }
        }
        // A trailing empty burst leaves the oracle holding stale flows
        // the runtime already expired (the oracle only expires when a
        // burst carries packets — the same unobservable difference
        // `shard_equivalence` pins down). Flush both expiry clocks to
        // one instant with a single out-of-range return packet (drops
        // everywhere, mutates nothing but expiry) so the final state
        // comparison sees both at the same horizon.
        now = now.plus(1_000_000);
        let flush =
            PacketBuilder::udp(Ip4::new(9, 9, 9, 9), Ip4::new(203, 0, 113, 1), 1, 9).build();
        let b = pool.get().expect("pool holds one flush frame");
        pool.write_frame(b, &flush);
        let v_seq = seq.process_burst(Direction::External, &mut pool, &[b], now);
        pool.put(b);
        let mut par_flush = vec![flush];
        let v_par = session.process_burst(Direction::External, &mut par_flush, now);
        assert_eq!(v_seq, vec![Verdict::Drop]);
        assert_eq!(v_par, vec![Verdict::Drop]);
        assert_eq!(seq.expired_total(), session.expired());
    });
    assert_eq!(report.pin.workers, workers);
    assert_eq!(tx_seq, tx_par, "per-flow TX bytes diverged");
    assert_eq!(
        sharded_state(seq.flow_manager()),
        sharded_state(par.table()),
        "flow-table state diverged ({workers} workers)"
    );
    assert_eq!(seq.expired_total(), par.expired_total());
    (par.occupancy(), par.expired_total())
}

#[test]
fn persistent_runtime_equals_sequential_sharded() {
    for workers in [1usize, 2, 4] {
        let (occupancy, _) = run_differential(
            cfg(),
            workers,
            200,
            64,
            |rng, _round| {
                let burst_len = rng.gen_range(1..=32usize);
                let dir = if rng.gen_bool(0.8) {
                    Direction::Internal
                } else {
                    Direction::External
                };
                let frames = (0..burst_len).map(|_| gen_frame(rng).1).collect();
                (dir, frames, rng.gen_range(1_000_000..800_000_000))
            },
            0xD15A + workers as u64,
        );
        assert!(occupancy > 0, "the run must have built flow state");
    }
}

#[test]
fn skewed_bursts_hit_one_worker() {
    // ~80% of frames are one single flow: its worker drains deep
    // bursts while the siblings run empty expiry ticks every round.
    let (occupancy, _) = run_differential(
        cfg(),
        4,
        150,
        64,
        |rng, _round| {
            let burst_len = rng.gen_range(8..=48usize);
            let frames = (0..burst_len)
                .map(|_| {
                    if rng.gen_bool(0.8) {
                        PacketBuilder::udp(Ip4::new(10, 0, 0, 1), Ip4::new(1, 1, 1, 1), 1024, 53)
                            .build()
                    } else {
                        gen_frame(rng).1
                    }
                })
                .collect();
            (
                Direction::Internal,
                frames,
                rng.gen_range(1_000_000..100_000_000),
            )
        },
        0x5_4E1,
    );
    assert!(occupancy > 0, "the run must have built flow state");
}

#[test]
fn port_exhaustion_parity() {
    // Capacity 8 over 4 workers = 2 slots per shard; 48×16 candidate
    // flows guarantee TableFull drops inside every worker's bursts.
    let c = NatConfig {
        capacity: 8,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    };
    let (occupancy, _) = run_differential(
        c,
        4,
        150,
        64,
        |rng, _round| {
            let burst_len = rng.gen_range(1..=32usize);
            let frames = (0..burst_len)
                .map(|_| {
                    let host = rng.gen_range(1..=48u8);
                    let port = 1024 + u16::from(rng.gen_range(0..16u8));
                    PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 53)
                        .build()
                })
                .collect();
            (
                Direction::Internal,
                frames,
                rng.gen_range(1_000_000..500_000_000),
            )
        },
        0xF0_11,
    );
    assert!(occupancy > 0, "the run must have built flow state");
}

/// A distinct internal-side frame for flow index `i` (up to 2^24
/// distinct flows — enough to fill the 2^20-slot table and keep
/// churning past it).
fn flow_frame(i: u32) -> Vec<u8> {
    PacketBuilder::udp(
        Ip4(0x0a00_0000 | (i & 0x00ff_ffff)),
        Ip4::new(1, 1, 1, 1),
        1024 ^ (i >> 16) as u16,
        53,
    )
    .build()
}

/// Sustained million-flow churn through the persistent pinned runtime:
/// a 2^20-slot table (the endpoint pool spills across 18 external
/// addresses) at 1/2/4 workers. Phase 1 fills the table to capacity —
/// plus a margin, so TableFull parity is exercised at the full
/// million-flow table — with distinct arrivals; phase 2 is sustained
/// churn: random arrivals/refreshes from a larger population with
/// Texp-crossing time jumps forcing mass wheel expiry, verdicts and
/// frame bytes compared every round and per-flow TX bytes, full LRU
/// state, and expiry totals at session end. This is the timer-wheel
/// satellite of `wheel_equivalence.rs` driven through the real
/// datapath (SPSC rings, burst envs, RSS dispatch) rather than the
/// table API. Release-only by size: the `nightly-deep` CI job runs it
/// with `--release -- --ignored million`.
#[test]
#[ignore = "million-flow scale; run in release (nightly-deep CI job)"]
fn sustained_million_flow_churn_session() {
    const CAP: usize = 1 << 20;
    const BURST: usize = 256;
    let fill_rounds = CAP / BURST + 16; // overshoot => TableFull parity
    for workers in [1usize, 2, 4] {
        let c = NatConfig {
            capacity: CAP,
            expiry_ns: Time::from_secs(2).nanos(),
            external_ip: Ip4::new(203, 0, 113, 1),
            start_port: 4096,
            ..NatConfig::paper_default()
        };
        let (occupancy, expired) = run_differential(
            c,
            workers,
            fill_rounds + 600,
            BURST,
            |rng, round| {
                if round < fill_rounds {
                    // Fill: distinct flows, sub-Texp steps — occupancy
                    // climbs monotonically to the capacity edge.
                    let base = (round * BURST) as u32;
                    let frames = (0..BURST as u32).map(|k| flow_frame(base + k)).collect();
                    (Direction::Internal, frames, 1_000)
                } else {
                    // Churn: arrivals/refreshes from a 1.5M-flow
                    // population; every 150th round jumps past Texp so
                    // the wheel drains en masse while new flows keep
                    // arriving.
                    let frames = (0..BURST)
                        .map(|_| flow_frame(rng.gen_range(0..1_500_000u32)))
                        .collect();
                    let churn_round = round - fill_rounds;
                    let step = if churn_round > 0 && churn_round.is_multiple_of(150) {
                        2_500_000_000 // > Texp: mass expiry
                    } else {
                        rng.gen_range(100_000..2_000_000)
                    };
                    (Direction::Internal, frames, step)
                }
            },
            0x1_000_000 + workers as u64,
        );
        assert!(
            occupancy > 20_000,
            "the churn phase must leave substantial state ({workers} workers)"
        );
        assert!(
            expired as usize > CAP,
            "the session must have expired more than a full table ({workers} workers)"
        );
    }
}

#[test]
fn expiry_racing_parity() {
    // Time jumps past Texp (2 s) plus ~25% empty bursts: the runtime
    // expires on the empty tick, the oracle only at the next non-empty
    // burst — totals and state must still re-converge.
    let (_, expired) = run_differential(
        cfg(),
        4,
        200,
        64,
        |rng, _round| {
            let empty = rng.gen_bool(0.25);
            let burst_len = if empty { 0 } else { rng.gen_range(1..=24usize) };
            let frames = (0..burst_len).map(|_| gen_frame(rng).1).collect();
            let step = if rng.gen_bool(0.4) {
                rng.gen_range(2_000_000_000..6_000_000_000) // > Texp: mass expiry
            } else {
                rng.gen_range(1_000_000..200_000_000)
            };
            (Direction::Internal, frames, step)
        },
        0xE_417,
    );
    assert!(expired > 0, "the run must have raced expiry");
}
