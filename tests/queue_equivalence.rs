//! Multi-queue / event-driven differential tests: the epoll-style
//! driver over the multi-queue NIC model must be byte-for-byte
//! equivalent, per flow, to the sequential single-queue driver.
//!
//! The equivalence argument, layer by layer:
//!
//! 1. **Classification is one function**: the NIC model's RSS
//!    classifier and the software dispatch of [`ParallelShardedNat`]
//!    are the same code (differentially re-checked here on adversarial
//!    frames, including garbage).
//! 2. **`queues == shards`**: each queue carries exactly one shard's
//!    arrival subsequence in FIFO order, so no matter how the
//!    event-driven scheduler interleaves queue bursts, every shard
//!    processes its packets in arrival order — outputs, drop verdicts,
//!    allocations, expiry, and final table state are *identical* to
//!    sequential processing (proven per flow by payload tags).
//!
//!    The one ordering a multi-port NIC genuinely does *not* preserve
//!    is **across directions**: a shard's packets arrive on two rings
//!    (its internal-port queue and its external-port queue), and the
//!    scheduler may interleave them either way. Translation bytes per
//!    flow are unaffected (replies allocate nothing), but
//!    *rejuvenation* order — hence LRU order, hence slot-reuse order
//!    after an expiry wave — can differ. The headline test therefore
//!    drains direction-homogeneous batches (byte-for-byte through
//!    expiry and reallocation, state equality included), and a second
//!    test mixes directions in one drain and proves per-flow byte
//!    equality up to the point an expiry wave would reorder reuse.
//! 3. **`queues > shards`** (4 queues × 2 shards): queue groups nest
//!    inside shards; translation of established flows remains
//!    byte-identical under any interleaving.
//! 4. **Overflow isolation**: a full RX ring drops (and counts) on that
//!    queue alone; siblings drain normally and flow state stays
//!    coherent — loss is an accounting event, never corruption.

use std::collections::HashMap;

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowTable, NatConfig};
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4, Proto};
use vignat_repro::sim::eventloop::{EventLoop, MultiQueueTestbed, Poller, Wrr};
use vignat_repro::sim::frame_env::RssClassifier;
use vignat_repro::sim::harness::ParallelShardedNat;
use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb, Verdict};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    }
}

/// A uniquely tagged frame: the 4-byte tag rides in the payload, which
/// the NAT preserves, so every output frame can be attributed to its
/// input no matter which queue carried it or in which order it left.
fn tagged_frame(
    dir: Direction,
    src: Ip4,
    dst: Ip4,
    sp: u16,
    dp: u16,
    proto: Proto,
    tag: u32,
) -> (Direction, Vec<u8>) {
    let b = match proto {
        Proto::Udp => PacketBuilder::udp(src, dst, sp, dp),
        Proto::Tcp => PacketBuilder::tcp(src, dst, sp, dp),
    };
    (dir, b.payload(&tag.to_be_bytes()).build())
}

fn tag_of(frame: &[u8]) -> u32 {
    let n = frame.len();
    u32::from_be_bytes(frame[n - 4..].try_into().unwrap())
}

/// Internal frame of flow `h` with a fresh tag.
fn internal(h: u8, tag: u32) -> (Direction, Vec<u8>) {
    tagged_frame(
        Direction::Internal,
        Ip4::new(192, 168, 0, h),
        Ip4::new(8, 8, 8, 8),
        10_000 + u16::from(h),
        53,
        if h.is_multiple_of(3) {
            Proto::Tcp
        } else {
            Proto::Udp
        },
        tag,
    )
}

/// Outputs per tag: (egress direction, full frame bytes).
type Outputs = HashMap<u32, (Direction, Vec<u8>)>;

/// Sequential single-queue oracle: process every frame in arrival
/// order, one at a time, recording each forwarded frame by its tag.
fn run_sequential(
    nf: &mut ShardedVigNatMb,
    traffic: &[(Direction, Vec<u8>)],
    now: Time,
) -> Outputs {
    let mut out = Outputs::new();
    for (dir, frame) in traffic {
        let mut f = frame.clone();
        if let Verdict::Forward(d) = nf.process(*dir, &mut f, now) {
            let tag = tag_of(&f);
            assert!(out.insert(tag, (d, f)).is_none(), "duplicate tag {tag}");
        }
    }
    out
}

/// Event-driven driver: offer everything (classified by RSS), drain
/// with the given driver state, collect both ports' TX queues.
fn run_event_driven(
    nf: &mut ShardedVigNatMb,
    tb: &mut MultiQueueTestbed,
    ev: &mut EventLoop,
    traffic: &[(Direction, Vec<u8>)],
    now: Time,
) -> Outputs {
    for (dir, frame) in traffic {
        let accepted = tb.offer(*dir, |b| {
            b[..frame.len()].copy_from_slice(frame);
            frame.len()
        });
        assert!(accepted.is_some(), "test traffic sized within the rings");
    }
    tb.drain_event_driven(nf, now, ev);
    let mut out = Outputs::new();
    for dir in [Direction::Internal, Direction::External] {
        for (_q, frame) in tb.collect_tx(dir) {
            let tag = tag_of(&frame);
            assert!(
                out.insert(tag, (dir, frame)).is_none(),
                "duplicate tag {tag}"
            );
        }
    }
    out
}

fn assert_same_outputs(a: &Outputs, b: &Outputs, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: forwarded counts diverge");
    for (tag, (dir, bytes)) in a {
        let (bdir, bbytes) = b
            .get(tag)
            .unwrap_or_else(|| panic!("{what}: tag {tag} missing from event-driven output"));
        assert_eq!(dir, bdir, "{what}: egress diverged for tag {tag}");
        assert_eq!(bytes, bbytes, "{what}: bytes diverged for tag {tag}");
    }
}

/// The headline proof: with queues == shards, the event-driven
/// multi-queue drain is byte-for-byte equivalent per flow to the
/// sequential single-queue oracle — across allocations, repeats,
/// return traffic, junk, an expiry wave, and re-allocation — and the
/// final sharded table state is identical.
#[test]
fn event_driven_equals_sequential_byte_for_byte_per_flow() {
    for shards in [2usize, 4] {
        let c = cfg();
        let mut seq_nf = ShardedVigNatMb::sharded(c, shards);
        let mut ev_nf = ShardedVigNatMb::sharded(c, shards);
        let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, shards), 64);
        // Skewed weights + small quantum: force budgeted interleaving
        // rather than drain-to-completion per queue.
        let weights: Vec<usize> = (0..shards).map(|q| 1 + (q % 2)).collect();
        let mut ev =
            EventLoop::with_parts(Poller::with_backoff(100, 1_000), Wrr::weighted(weights, 4));
        let mut tag = 0u32;
        let next_tag = |n: &mut u32| {
            *n += 1;
            *n
        };

        // Round 1 (t=1s): new flows + repeats → allocations on every shard.
        let t1 = Time::from_secs(1);
        let round1: Vec<_> = (0..48)
            .map(|i| internal(i % 12, next_tag(&mut tag)))
            .collect();
        let seq_out = run_sequential(&mut seq_nf, &round1, t1);
        let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &round1, t1);
        assert_same_outputs(&seq_out, &ev_out, "round 1");

        // Round 2a (t=2s), external drain: replies to every translation
        // (routed to their owning queue by the port partition), plus
        // junk return traffic to a dead and an out-of-range port.
        let t2 = Time::from_secs(2);
        let mut round2a = Vec::new();
        for (_, (d, f)) in seq_out.iter() {
            if *d != Direction::External {
                continue;
            }
            let (_, ff) = parse_l3l4(f).unwrap();
            round2a.push(tagged_frame(
                Direction::External,
                ff.dst_ip,
                Ip4::new(203, 0, 113, 1),
                ff.dst_port,
                ff.src_port,
                ff.proto,
                next_tag(&mut tag),
            ));
        }
        // Dead port inside the range, and a port outside it entirely.
        round2a.push(tagged_frame(
            Direction::External,
            Ip4::new(9, 9, 9, 9),
            Ip4::new(203, 0, 113, 1),
            1,
            1000 + 63,
            Proto::Udp,
            next_tag(&mut tag),
        ));
        round2a.push(tagged_frame(
            Direction::External,
            Ip4::new(9, 9, 9, 9),
            Ip4::new(203, 0, 113, 1),
            1,
            40_000,
            Proto::Udp,
            next_tag(&mut tag),
        ));
        let seq_out = run_sequential(&mut seq_nf, &round2a, t2);
        let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &round2a, t2);
        assert_same_outputs(&seq_out, &ev_out, "round 2a");

        // Round 2b, internal drain at the same instant: repeats that
        // rejuvenate a subset of the flows (reordering the LRU before
        // the expiry wave below).
        let round2b: Vec<_> = (0..8)
            .map(|i| internal(i % 12, next_tag(&mut tag)))
            .collect();
        let seq_out = run_sequential(&mut seq_nf, &round2b, t2);
        let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &round2b, t2);
        assert_same_outputs(&seq_out, &ev_out, "round 2b");

        // Round 3 (t=10s, Texp=2s): everything expired — the expiry
        // wave plus re-allocation must interleave identically.
        let t3 = Time::from_secs(10);
        let round3: Vec<_> = (0..24)
            .map(|i| internal(i % 20, next_tag(&mut tag)))
            .collect();
        let seq_out = run_sequential(&mut seq_nf, &round3, t3);
        let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &round3, t3);
        assert_same_outputs(&seq_out, &ev_out, "round 3");

        // Final state: same occupancy, same expiry count, and the same
        // flows at the same global slots with the same stamps, shard by
        // shard, in the same LRU order.
        assert_eq!(seq_nf.occupancy(), ev_nf.occupancy(), "{shards} shards");
        assert_eq!(seq_nf.expired_total(), ev_nf.expired_total());
        assert_eq!(
            seq_nf.flow_manager().snapshot(),
            ev_nf.flow_manager().snapshot(),
            "sharded state diverged at {shards} shards"
        );
        ev_nf.flow_manager().check_coherence().unwrap();
    }
}

/// Mixed directions in one drain: internal packets (allocations and
/// hits) and return traffic interleave across the two ports' queues in
/// whatever order the scheduler picks — yet per-flow output bytes are
/// identical to sequential arrival-order processing, because replies
/// allocate nothing and each direction's per-shard order is preserved
/// by its own ring. (Only *rejuvenation* order across directions is
/// schedule-dependent — see the module docs — which is unobservable in
/// the translation bytes.)
#[test]
fn mixed_direction_drain_translates_identically_per_flow() {
    let c = cfg();
    let shards = 2usize;
    let mut seq_nf = ShardedVigNatMb::sharded(c, shards);
    let mut ev_nf = ShardedVigNatMb::sharded(c, shards);
    let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, shards), 64);
    let mut ev = EventLoop::with_parts(Poller::new(), Wrr::weighted(vec![2, 1], 4));

    // Establish a few flows (single-direction round — equivalence from
    // the headline test).
    let t1 = Time::from_secs(1);
    let round1: Vec<_> = (0..12).map(|h| internal(h, 500 + u32::from(h))).collect();
    let seq_out = run_sequential(&mut seq_nf, &round1, t1);
    let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &round1, t1);
    assert_same_outputs(&seq_out, &ev_out, "mixed: establish");

    // One drain mixing new flows, repeats, and replies.
    let t2 = Time::from_secs(2);
    let mut tag = 9_000u32;
    let mut mixed = Vec::new();
    for (i, (_, (d, f))) in seq_out.iter().enumerate() {
        tag += 1;
        if *d == Direction::External {
            let (_, ff) = parse_l3l4(f).unwrap();
            mixed.push(tagged_frame(
                Direction::External,
                ff.dst_ip,
                Ip4::new(203, 0, 113, 1),
                ff.dst_port,
                ff.src_port,
                ff.proto,
                tag,
            ));
        }
        tag += 1;
        mixed.push(internal((12 + i as u8) % 40, tag)); // new flows
        tag += 1;
        mixed.push(internal(i as u8 % 12, tag)); // repeats
    }
    let seq_out = run_sequential(&mut seq_nf, &mixed, t2);
    let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &mixed, t2);
    assert_same_outputs(&seq_out, &ev_out, "mixed drain");
    assert_eq!(seq_nf.occupancy(), ev_nf.occupancy());
    ev_nf.flow_manager().check_coherence().unwrap();
}

/// 4 queues × 2 shards: with more queues than shards, same-shard flows
/// from different queues may *allocate* in schedule order — but the
/// translation of established flows is byte-identical under any
/// interleaving. (This is the configuration the release CI job runs.)
#[test]
fn four_queues_two_shards_established_flows_translate_identically() {
    let c = cfg();
    let (queues, shards) = (4usize, 2usize);
    let mut seq_nf = ShardedVigNatMb::sharded(c, shards);
    let mut ev_nf = ShardedVigNatMb::sharded(c, shards);
    let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, queues), 64);
    let mut ev = EventLoop::new(queues);

    // Establish the same flows in both NATs through the *same
    // sequential* order (allocation fixed), outside the queues; the
    // translated frames reveal each flow's external mapping.
    let t1 = Time::from_secs(1);
    let mut translated = Vec::new();
    for h in 0..32u8 {
        let (dir, frame) = internal(h, u32::from(h) + 1);
        let mut a = frame.clone();
        let mut b = frame;
        assert_eq!(
            seq_nf.process(dir, &mut a, t1),
            ev_nf.process(dir, &mut b, t1)
        );
        assert_eq!(a, b);
        let (_, ff) = parse_l3l4(&a).unwrap();
        translated.push(ff);
    }

    // Steady-state traffic (hits + return packets) through 4 queues,
    // event-driven, vs the sequential oracle.
    let t2 = Time::from_secs(2);
    let mut tag = 1_000u32;
    let mut traffic = Vec::new();
    for rep in 0..3 {
        for h in 0..32u8 {
            tag += 1;
            traffic.push(internal(h, tag));
            if rep == 1 {
                // The reply the remote host sends to this flow's
                // translation.
                let ff = &translated[usize::from(h)];
                tag += 1;
                traffic.push(tagged_frame(
                    Direction::External,
                    ff.dst_ip,
                    Ip4::new(203, 0, 113, 1),
                    ff.dst_port,
                    ff.src_port,
                    ff.proto,
                    tag,
                ));
            }
        }
    }
    let seq_out = run_sequential(&mut seq_nf, &traffic, t2);
    let ev_out = run_event_driven(&mut ev_nf, &mut tb, &mut ev, &traffic, t2);
    assert_same_outputs(&seq_out, &ev_out, "4q x 2s steady state");
    assert_eq!(seq_nf.occupancy(), ev_nf.occupancy());
}

/// Drop accounting under an overflowing queue: the full ring drops (and
/// counts) on that queue alone; siblings drain normally, every accepted
/// frame is processed exactly as the oracle processes the accepted
/// subsequence, and the flow table stays coherent.
#[test]
fn overflowing_queue_counts_drops_and_spares_siblings() {
    let c = cfg();
    let queues = 2usize;
    let ring = 8usize;
    let mut nf = ShardedVigNatMb::sharded(c, queues);
    let mut oracle = ShardedVigNatMb::sharded(c, queues);
    let mut tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, queues), ring);
    let mut ev = EventLoop::new(queues);

    // Sort candidate flows by the queue RSS steers them to.
    let mut by_queue: Vec<Vec<u8>> = vec![Vec::new(); queues];
    for h in 0..=255u8 {
        let (_, frame) = internal(h, 0);
        let q = tb.classifier().queue_of(Direction::Internal, &frame);
        by_queue[q].push(h);
    }
    assert!(
        by_queue.iter().all(|v| v.len() >= 4),
        "both queues reachable"
    );

    // Offer 20 frames of queue-0 flows (ring holds 8) and 4 of queue-1
    // flows; record which were accepted, in order.
    let t = Time::from_secs(1);
    let mut accepted = Vec::new();
    let mut tag = 0u32;
    let mut offered_q0 = 0u64;
    for k in 0..20 {
        tag += 1;
        let h = by_queue[0][k % by_queue[0].len()];
        let (dir, frame) = internal(h, tag);
        offered_q0 += 1;
        if tb
            .offer(dir, |b| {
                b[..frame.len()].copy_from_slice(&frame);
                frame.len()
            })
            .is_some()
        {
            accepted.push((dir, frame));
        }
    }
    for k in 0..4 {
        tag += 1;
        let h = by_queue[1][k % by_queue[1].len()];
        let (dir, frame) = internal(h, tag);
        let q = tb.offer(dir, |b| {
            b[..frame.len()].copy_from_slice(&frame);
            frame.len()
        });
        assert_eq!(q, Some(1), "sibling queue must not be affected");
        accepted.push((dir, frame));
    }

    // Accounting: queue 0 accepted exactly its ring depth and dropped
    // the rest; queue 1 is clean.
    let s0 = tb.queue_stats(Direction::Internal, 0);
    let s1 = tb.queue_stats(Direction::Internal, 1);
    assert_eq!(s0.rx, ring as u64);
    assert_eq!(s0.rx_dropped, offered_q0 - ring as u64);
    assert_eq!((s1.rx, s1.rx_dropped), (4, 0));

    // The drain processes every accepted frame — and only those —
    // exactly as the oracle fed the accepted subsequence does.
    let stats = tb.drain_event_driven(&mut nf, t, &mut ev);
    assert_eq!(stats.forwarded, ring as u64 + 4);
    assert_eq!(stats.dropped, 0, "ring loss is not NF loss");
    let mut ev_out = Outputs::new();
    for dir in [Direction::Internal, Direction::External] {
        for (_q, frame) in tb.collect_tx(dir) {
            ev_out.insert(tag_of(&frame), (dir, frame));
        }
    }
    let seq_out = run_sequential(&mut oracle, &accepted, t);
    assert_same_outputs(&seq_out, &ev_out, "accepted subsequence");
    assert_eq!(nf.occupancy(), oracle.occupancy());
    nf.flow_manager().check_coherence().unwrap();

    // The overflowed queue is not stalled: the next round drains fine.
    let t2 = Time::from_secs(1).plus(1_000_000);
    let h = by_queue[0][0];
    let (dir, frame) = internal(h, 77_777);
    assert_eq!(
        tb.offer(dir, |b| {
            b[..frame.len()].copy_from_slice(&frame);
            frame.len()
        }),
        Some(0)
    );
    let stats = tb.drain_event_driven(&mut nf, t2, &mut ev);
    assert_eq!(stats.forwarded, 1);
    let _ = tb.collect_tx(Direction::External);
}

/// The NIC model's classifier and the parallel driver's software
/// dispatch are the same function — re-checked differentially on
/// adversarial frames (valid, truncated, and raw noise).
#[test]
fn rss_classifier_agrees_with_parallel_dispatch() {
    let c = cfg();
    for shards in [1usize, 2, 3, 4] {
        let nat = ParallelShardedNat::new(c, shards, 64);
        let classifier = RssClassifier::for_table(nat.table());
        assert_eq!(classifier.queue_count(), shards);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for h in 0..40u8 {
            let (_, f) = internal(h, u32::from(h));
            frames.push(f);
        }
        // Return traffic across the whole port range, in and out.
        for port in [0u16, 999, 1000, 1031, 1063, 1064, 65_535] {
            let (_, f) = tagged_frame(
                Direction::External,
                Ip4::new(9, 9, 9, 9),
                Ip4::new(203, 0, 113, 1),
                80,
                port,
                Proto::Udp,
                u32::from(port),
            );
            frames.push(f);
        }
        // Truncations and noise.
        let full = frames[0].clone();
        for cut in [0usize, 10, 14, 20, 33] {
            frames.push(full[..cut.min(full.len())].to_vec());
        }
        frames.push(vec![0xa5; 60]);
        for f in &frames {
            for dir in [Direction::Internal, Direction::External] {
                assert_eq!(
                    classifier.queue_of(dir, f),
                    nat.dispatch(dir, f),
                    "classifier and dispatch diverged ({shards} shards)"
                );
            }
        }
    }
}
