//! Shard-dispatch edge cases the equivalence suite's random traffic
//! might only graze:
//!
//! * a flow whose internal and external keys hash to **different**
//!   shards (the common case — the two hashes are independent) and one
//!   where they coincide: return traffic must find both, because
//!   external routing goes by the port partition, never the hash;
//! * **port exhaustion within a single shard**: the shard's slice of
//!   the port range runs dry and new flows routed there drop
//!   (TableFull) while sibling shards still allocate — the documented
//!   fullness trade of partitioning;
//! * **expiry racing a cross-burst re-lookup** under independent
//!   per-shard clocks: one shard's clock runs past `Texp` and its flow
//!   is collected and its port reused, while a sibling whose clock
//!   lags keeps serving its flow — and a batched *hit* hint from an
//!   earlier burst is never trusted across the expiry (the probe pass
//!   runs after the expiry scan in every burst).

use vignat_repro::libvig::map::MapKey;
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::loop_body::{DropReason, IterationOutcome};
use vignat_repro::nat::simple_env::RawRx;
use vignat_repro::nat::{FlowTable, NatConfig, ShardedFlowManager, SimpleEnv};
use vignat_repro::packet::{parse_l3l4, Direction, FlowFields, FlowId, Ip4, Proto};
use vignat_repro::sim::harness::ParallelShardedNat;
use vignat_repro::sim::middlebox::Verdict;
use vignat_repro::sim::tester::FlowGen;

const SHARDS: usize = 2;

fn cfg(capacity: usize) -> NatConfig {
    NatConfig {
        capacity,
        expiry_ns: Time::from_secs(10).nanos(),
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    }
}

fn fields(host: u8, sport: u16) -> FlowFields {
    FlowFields {
        src_ip: Ip4::new(192, 168, 0, host),
        dst_ip: Ip4::new(1, 1, 1, 1),
        src_port: sport,
        dst_port: 80,
        proto: Proto::Udp,
    }
}

fn fid_of(f: FlowFields) -> FlowId {
    FlowId {
        src_ip: f.src_ip,
        src_port: f.src_port,
        dst_ip: f.dst_ip,
        dst_port: f.dst_port,
        proto: f.proto,
    }
}

/// Search the host/port space for a flow that routes to `shard`.
fn flow_in_shard(table: &ShardedFlowManager, shard: usize, skip: usize) -> FlowFields {
    let mut found = 0;
    for host in 1..=255u8 {
        for sport in 5000..5200u16 {
            let f = fields(host, sport);
            if table.shard_of_hash(fid_of(f).key_hash()) == shard {
                if found == skip {
                    return f;
                }
                found += 1;
            }
        }
    }
    panic!("no flow found for shard {shard}");
}

#[test]
fn return_traffic_routes_by_port_partition_not_by_ext_hash() {
    let c = cfg(64);
    let mut env = SimpleEnv::sharded(c, SHARDS);
    let mut saw_same_shard = false;
    let mut saw_cross_shard = false;

    for i in 0..40 {
        // One flow per iteration, alternating shards.
        let f = flow_in_shard(env.flow_manager(), i % SHARDS, i / SHARDS);
        let out = env.step(Direction::Internal, f, Time::from_secs(1 + i as u64));
        let vignat_repro::spec::Output::Forward { fields: fwd, .. } = out else {
            panic!("fresh internal flow must forward");
        };
        let ext_port = fwd.src_port;

        // Where would the *external* key hash — and where does the
        // port actually route? These disagree for roughly half of all
        // flows; the flow must be found either way.
        let table = env.flow_manager();
        let fid_shard = table.shard_of_hash(fid_of(f).key_hash());
        assert_eq!(table.shard_of_port(ext_port), Some(fid_shard));
        let (_, flow) = table
            .lookup_internal_hashed(&fid_of(f), fid_of(f).key_hash())
            .expect("flow resident");
        let ext_hash_shard = table.shard_of_hash(flow.ext_key().key_hash());
        if ext_hash_shard == fid_shard {
            saw_same_shard = true;
        } else {
            saw_cross_shard = true;
        }

        // The return packet must be reverse-translated regardless.
        let back = FlowFields {
            src_ip: Ip4::new(1, 1, 1, 1),
            dst_ip: c.external_ip,
            src_port: 80,
            dst_port: ext_port,
            proto: Proto::Udp,
        };
        let out = env.step(Direction::External, back, Time::from_secs(2 + i as u64));
        let vignat_repro::spec::Output::Forward { fields: rev, .. } = out else {
            panic!("return traffic for a live flow must forward (flow {i})");
        };
        assert_eq!(rev.dst_ip, f.src_ip, "restored internal host");
        assert_eq!(rev.dst_port, f.src_port, "restored internal port");
    }
    assert!(
        saw_same_shard && saw_cross_shard,
        "the sweep must exercise both hash-coincidence cases \
         (same={saw_same_shard}, cross={saw_cross_shard})"
    );
}

#[test]
fn port_exhaustion_in_one_shard_leaves_siblings_allocating() {
    // 8 slots over 2 shards: 4 ports per shard (1000..1004, 1004..1008).
    let c = cfg(8);
    let mut env = SimpleEnv::sharded(c, SHARDS);
    let per = env.flow_manager().per_shard_capacity();
    assert_eq!(per, 4);

    // Fill shard 0 to its own capacity.
    let mut shard0_ports = Vec::new();
    for i in 0..per {
        let f = flow_in_shard(env.flow_manager(), 0, i);
        let out = env.step(Direction::Internal, f, Time::from_secs(1));
        let vignat_repro::spec::Output::Forward { fields: fwd, .. } = out else {
            panic!("shard 0 must allocate up to its capacity");
        };
        shard0_ports.push(fwd.src_port);
    }
    // Every allocated port lies in shard 0's slice of the range.
    for &p in &shard0_ports {
        assert!(
            (1000..1000 + per as u16).contains(&p),
            "port {p} escaped shard 0's partition"
        );
    }

    // The next shard-0 flow drops TableFull — while the global table is
    // only half occupied.
    let overflow = flow_in_shard(env.flow_manager(), 0, per);
    env.set_time(Time::from_secs(2));
    env.inject(RawRx::well_formed(Direction::Internal, overflow));
    assert_eq!(
        env.run_one(),
        IterationOutcome::Dropped(DropReason::TableFull),
        "a full shard drops new flows routed to it"
    );
    assert_eq!(env.flow_manager().flow_count(), per, "siblings untouched");

    // A shard-1 flow still allocates, from shard 1's port slice.
    let sibling = flow_in_shard(env.flow_manager(), 1, 0);
    let out = env.step(Direction::Internal, sibling, Time::from_secs(3));
    let vignat_repro::spec::Output::Forward { fields: fwd, .. } = out else {
        panic!("sibling shard must still allocate");
    };
    assert!(
        (1000 + per as u16..1000 + 2 * per as u16).contains(&fwd.src_port),
        "sibling allocation comes from shard 1's port slice"
    );
    assert!(FlowTable::check_coherence(env.flow_manager()).is_ok());
}

#[test]
fn expiry_races_cross_burst_relookup_under_skewed_shard_clocks() {
    let c = cfg(64);
    let mut nat = ParallelShardedNat::new(c, SHARDS, 64);
    let gen = FlowGen::new(Proto::Udp);
    let routing = ShardedFlowManager::new(&c, SHARDS);

    // One flow per shard, found by dispatch.
    let pick = |shard: usize| -> FlowFields {
        let mut buf = [0u8; 2048];
        for i in 0..4096u32 {
            let f = gen.background(i);
            let n = gen.write_frame(&f, &mut buf);
            let fid = vignat_repro::sim::frame_env::frame_flow_id(&buf[..n]).unwrap();
            if routing.shard_of_hash(fid.key_hash()) == shard {
                return f;
            }
        }
        panic!("no flow for shard {shard}");
    };
    let fa = pick(0);
    let fb = pick(1);
    let mut buf = [0u8; 2048];
    let frame_of = |f: &FlowFields, buf: &mut [u8]| {
        let n = gen.write_frame(f, buf);
        buf[..n].to_vec()
    };

    // Burst 1 (t = 1 s): both flows inserted, one per shard.
    let mut frames = vec![frame_of(&fa, &mut buf), frame_of(&fb, &mut buf)];
    let v = nat.process_burst_parallel(Direction::Internal, &mut frames, Time::from_secs(1));
    assert_eq!(v, vec![Verdict::Forward(Direction::External); 2]);
    let (_, fa_out) = parse_l3l4(&frames[0]).unwrap();
    let (_, fb_out) = parse_l3l4(&frames[1]).unwrap();
    assert_eq!(nat.occupancy(), 2);

    // Shard 0's core races ahead: its clock passes Texp, so the
    // cross-burst re-lookup of flow A first expires A, then re-inserts
    // it as a *fresh* flow — reusing the same slot, hence the same
    // external port (the LIFO free list), all within one burst.
    let mut frames = vec![frame_of(&fa, &mut buf)];
    let v = nat.process_on_shard(0, Direction::Internal, &mut frames, Time::from_secs(12));
    assert_eq!(v, vec![Verdict::Forward(Direction::External)]);
    assert_eq!(nat.expired_total(), 1, "A expired before its re-lookup");
    let (_, fa_again) = parse_l3l4(&frames[0]).unwrap();
    assert_eq!(
        fa_again.src_port, fa_out.src_port,
        "the freed slot (and port) is reused by the re-inserted flow"
    );

    // Shard 1's core lags at t = 5 s: its flow B is still resident and
    // its return traffic still translates — per-shard expiry clocks
    // are independent.
    let back_b = gen.return_for(c.external_ip, fb_out.src_port);
    let mut frames = vec![frame_of(&back_b, &mut buf)];
    let v = nat.process_on_shard(1, Direction::External, &mut frames, Time::from_secs(5));
    assert_eq!(
        v,
        vec![Verdict::Forward(Direction::Internal)],
        "the lagging shard's flow survives its sibling's expiry sweep"
    );
    let (_, back_fields) = parse_l3l4(&frames[0]).unwrap();
    assert_eq!(back_fields.dst_ip, fb.src_ip);
    assert_eq!(back_fields.dst_port, fb.src_port);

    // Once shard 1's own clock passes B's deadline, the race resolves
    // the other way: B's return traffic dies at its own sequence point.
    let mut frames = vec![frame_of(&back_b, &mut buf)];
    let v = nat.process_on_shard(1, Direction::External, &mut frames, Time::from_secs(16));
    assert_eq!(v, vec![Verdict::Drop], "B expired on shard 1's own clock");
    assert_eq!(nat.expired_total(), 2);
    assert!(FlowTable::check_coherence(nat.table()).is_ok());
}
