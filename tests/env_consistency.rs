//! Environment-consistency test: the same verified loop body runs in
//! two different concrete environments — the field-level `SimpleEnv`
//! (vignat's test harness) and the byte-level `FrameEnv` (netsim's
//! datapath). On identical workloads their *decisions* must agree
//! packet for packet: same forward/drop verdicts, same egress
//! interfaces, same rewritten tuples, same flow-table evolution.
//!
//! This pins the claim that the env abstraction does not change
//! behaviour — i.e. that what the validator verifies (over a third,
//! symbolic env) is what the datapath does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{NatConfig, SimpleEnv};
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, FlowFields, Ip4, Proto};
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};
use vignat_repro::spec::Output;

const EXT_IP: Ip4 = Ip4::new(203, 0, 113, 1);

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 16,
        expiry_ns: Time::from_secs(3).nanos(),
        external_ip: EXT_IP,
        start_port: 7000,
        ..NatConfig::paper_default()
    }
}

#[test]
fn simple_env_and_frame_env_agree_packet_for_packet() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut field_env = SimpleEnv::new(cfg());
    let mut byte_env = VigNatMb::new(cfg());
    let mut now = Time::from_secs(1);

    for step in 0..2_000 {
        now = now.plus(rng.gen_range(1_000_000..800_000_000));
        let proto = if rng.gen_bool(0.5) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        let (dir, fields) = if rng.gen_bool(0.65) {
            (
                Direction::Internal,
                FlowFields {
                    src_ip: Ip4::new(172, 16, 0, rng.gen_range(1..8)),
                    src_port: 20_000 + rng.gen_range(0..4u16),
                    dst_ip: Ip4::new(1, 1, 1, 1),
                    dst_port: 443,
                    proto,
                },
            )
        } else {
            (
                Direction::External,
                FlowFields {
                    src_ip: Ip4::new(1, 1, 1, 1),
                    src_port: 443,
                    dst_ip: EXT_IP,
                    dst_port: 7000 + rng.gen_range(0..20u16),
                    proto,
                },
            )
        };

        // Field-level run.
        let field_out = field_env.step(dir, fields, now);

        // Byte-level run on a real frame.
        let mut frame = match proto {
            Proto::Tcp => PacketBuilder::tcp(
                fields.src_ip,
                fields.dst_ip,
                fields.src_port,
                fields.dst_port,
            ),
            Proto::Udp => PacketBuilder::udp(
                fields.src_ip,
                fields.dst_ip,
                fields.src_port,
                fields.dst_port,
            ),
        }
        .build();
        let byte_out = match byte_env.process(dir, &mut frame, now) {
            Verdict::Drop => Output::Drop,
            Verdict::Forward(out) => {
                let (_, ff) = parse_l3l4(&frame).expect("forwarded frame parses");
                Output::Forward {
                    iface: out,
                    fields: ff,
                }
            }
        };

        assert_eq!(
            field_out, byte_out,
            "environments diverged at step {step} (dir {dir:?}, fields {fields:?})"
        );
        assert_eq!(
            field_env.flow_manager().len(),
            byte_env.occupancy(),
            "flow-table occupancy diverged at step {step}"
        );
    }
    assert!(byte_env.occupancy() > 0, "workload must have created flows");
    assert!(
        byte_env.expired_total() > 0,
        "workload must have exercised expiry"
    );
}
