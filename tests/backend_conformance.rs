//! Backend conformance: every [`PacketIo`] implementation must be an
//! indistinguishable home for the verified NAT.
//!
//! Two differential layers:
//!
//! 1. **`SimBackend` ≡ legacy `MultiQueueTestbed`** — the generic
//!    [`BackendDriver`] over the simulated backend is byte-for-byte
//!    the legacy event-driven drain: same tx sequences (queue and
//!    bytes, in order), same per-queue rx/drop/tx accounting (including
//!    under deliberate queue overflow and tx byte attribution), same
//!    NAT state, round by round.
//! 2. **OS ≡ sim on a recorded trace** (`#[ignore]`, needs
//!    `CAP_NET_ADMIN`/`CAP_NET_RAW` — CI's `os-backend-integration`
//!    job), run for *both* wire transports — the per-frame
//!    `OsBackend` and the zero-copy mmap-ring `MmapBackend`: real
//!    frames cross a veth pair into the `AF_PACKET` backend while the
//!    backend records its arrival trace; the trace is then replayed
//!    through `SimBackend`, and tx order, per-queue stats (rx, drops,
//!    tx, tx bytes), and NAT state must match exactly. On this path
//!    the kernel is the tester — whatever it delivered (including any
//!    noise) is replayed verbatim, so parity is unconditional, and
//!    each transport's parity with sim gives the three-way
//!    mmap ≡ per-frame ≡ sim equivalence.
//!
//! The privileged module also pins down the mmap ring's edges: the
//! partial-block retire timeout, overrun behaviour (kernel drops are
//! counted, state never corrupts), and leak-free teardown.
//!
//! The suite always writes its tx traces to
//! `target/os-backend-trace/` so the CI job can upload them as
//! artifacts when a run fails.

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowTable, NatConfig};
use vignat_repro::packet::{parse_l3l4, Direction, Flow, Ip4};
use vignat_repro::sim::backend::{PacketIo, SimBackend, TesterIo};
use vignat_repro::sim::eventloop::{BackendDriver, EventLoop, MultiQueueTestbed, TxRecord, Wrr};
use vignat_repro::sim::middlebox::Middlebox;
use vignat_repro::sim::middlebox::ShardedVigNatMb;
use vignat_repro::sim::tester::FlowGen;
use vignat_repro::sim::{Poller, RssClassifier};

fn cfg(capacity: usize) -> NatConfig {
    NatConfig {
        capacity,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    }
}

/// The NAT's full observable state: (shard, slot, flow, stamp) for
/// every resident flow, in LRU order — what "same NAT state" means in
/// every parity assertion here.
fn nat_state(nf: &ShardedVigNatMb) -> Vec<(usize, usize, Flow, Time)> {
    let fm = nf.flow_manager();
    let mut out = Vec::new();
    for s in 0..fm.shard_count() {
        for (slot, flow, stamp) in fm.shard(s).iter_lru() {
            out.push((s, slot, *flow, stamp));
        }
    }
    out
}

/// Per-queue stats of both ports, as comparable
/// `(rx, rx_dropped, tx, tx_bytes)` tuples.
fn all_queue_stats<B: PacketIo>(io: &B) -> Vec<(u64, u64, u64, u64)> {
    let mut out = Vec::new();
    for dir in [Direction::Internal, Direction::External] {
        for q in 0..io.queue_count() {
            let s = io.queue_stats(dir, q);
            out.push((s.rx, s.rx_dropped, s.tx, s.tx_bytes));
        }
    }
    out
}

fn legacy_queue_stats(tb: &MultiQueueTestbed) -> Vec<(u64, u64, u64, u64)> {
    let mut out = Vec::new();
    for dir in [Direction::Internal, Direction::External] {
        for q in 0..tb.queue_count() {
            let s = tb.queue_stats(dir, q);
            out.push((s.rx, s.rx_dropped, s.tx, s.tx_bytes));
        }
    }
    out
}

/// One schedule round: frames (with their port) offered to both sides.
type RoundFrames = Vec<(Direction, Vec<u8>)>;

/// Build a mixed adversarial schedule: new flows, repeats, replies to
/// round-1 translations, garbage, and a flood aimed at one queue.
/// Replies are crafted from `learned` (the translated frames the first
/// round produced — identical on both sides by the time they are
/// needed).
fn mixed_round(gen: &FlowGen, round: usize, learned: &[Vec<u8>]) -> RoundFrames {
    let mut frames: RoundFrames = Vec::new();
    match round {
        0 => {
            // 40 fresh flows.
            for i in 0..40u32 {
                let f = gen.background(i);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
        }
        1 => {
            // Replies to everything learned, plus repeats and garbage.
            for t in learned {
                let (_, ff) = parse_l3l4(t).expect("translated frame parses");
                let f = gen.return_for(ff.src_ip, ff.src_port);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::External, buf));
            }
            for i in 0..12u32 {
                let f = gen.background(i);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
            frames.push((Direction::Internal, vec![0xa5u8; 60]));
            frames.push((Direction::External, vec![0x5au8; 24]));
        }
        _ => {
            // Flood: many packets of few flows — some queue overflows.
            for k in 0..120u32 {
                let f = gen.background(k % 6);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
        }
    }
    frames
}

/// Drive the legacy testbed and the generic driver over `SimBackend`
/// through the same schedule with the given event-loop builders,
/// asserting byte-for-byte equality after every round.
fn run_differential(queues: usize, shards: usize, ring: usize, mk_ev: impl Fn(usize) -> EventLoop) {
    let c = cfg(256);
    let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);

    let mut legacy_nf = ShardedVigNatMb::sharded(c, shards);
    let mut legacy_tb = MultiQueueTestbed::new(RssClassifier::for_nat(&c, queues), ring);
    let mut legacy_ev = mk_ev(queues);

    let mut nf = ShardedVigNatMb::sharded(c, shards);
    let mut drv = BackendDriver::with_event_loop(
        SimBackend::new(RssClassifier::for_nat(&c, queues), ring),
        mk_ev(queues),
    );

    let mut learned: Vec<Vec<u8>> = Vec::new();
    for round in 0..3 {
        let frames = mixed_round(&gen, round, &learned);
        let now = Time::from_secs(1 + round as u64);

        let mut offered = (0, 0);
        for (dir, bytes) in &frames {
            let a = legacy_tb.offer(*dir, |b| {
                b[..bytes.len()].copy_from_slice(bytes);
                bytes.len()
            });
            let b = drv.io_mut().stage(*dir, |b| {
                b[..bytes.len()].copy_from_slice(bytes);
                bytes.len()
            });
            assert_eq!(a, b, "admission diverged in round {round}");
            offered = (offered.0 + 1, offered.1 + usize::from(a.is_some()));
        }
        if round == 2 {
            assert!(
                offered.1 < offered.0,
                "flood round must actually overflow a queue (got {offered:?})"
            );
        }

        let ls = legacy_tb.drain_event_driven(&mut legacy_nf, now, &mut legacy_ev);
        let ds = drv.drain(&mut nf, now);
        assert_eq!(
            (ls.forwarded, ls.dropped, ls.bursts, ls.polls),
            (ds.forwarded, ds.dropped, ds.bursts, ds.polls),
            "drain stats diverged in round {round}"
        );

        for dir in [Direction::External, Direction::Internal] {
            let lt = legacy_tb.collect_tx(dir);
            let dt = drv.io_mut().reap(dir);
            assert_eq!(lt, dt, "tx sequence diverged in round {round} on {dir:?}");
            if round == 0 && dir == Direction::External {
                learned = lt.iter().map(|(_, f)| f.clone()).collect();
            }
        }

        assert_eq!(
            legacy_queue_stats(&legacy_tb),
            all_queue_stats(drv.io()),
            "per-queue accounting diverged in round {round}"
        );
        assert_eq!(
            nat_state(&legacy_nf),
            nat_state(&nf),
            "NAT state diverged in round {round}"
        );
        assert_eq!(legacy_nf.expired_total(), nf.expired_total());
        assert_eq!(legacy_tb.pool_available(), drv.io().pool_available());
    }
    nf.flow_manager().check_coherence().unwrap();
}

/// The fault layer's identity theorem on the sim backend: `FaultIo`
/// with the empty schedule is byte-for-byte the inner backend — same
/// admissions, TX sequences, per-queue stats, NAT state, pool levels,
/// and untouched fault counters — across the same adversarial schedule
/// the legacy-parity suite uses (overflow round included).
fn run_faultio_identity(queues: usize, shards: usize, ring: usize) {
    use vignat_repro::sim::backend::{FaultIo, FaultPlan, FaultStats};
    let c = cfg(256);
    let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);

    let mut plain_nf = ShardedVigNatMb::sharded(c, shards);
    let mut plain = BackendDriver::new(SimBackend::new(RssClassifier::for_nat(&c, queues), ring));
    let mut nf = ShardedVigNatMb::sharded(c, shards);
    let mut drv = BackendDriver::new(FaultIo::new(
        SimBackend::new(RssClassifier::for_nat(&c, queues), ring),
        FaultPlan::none(),
    ));

    let mut learned: Vec<Vec<u8>> = Vec::new();
    for round in 0..3 {
        let frames = mixed_round(&gen, round, &learned);
        let now = Time::from_secs(1 + round as u64);
        for (dir, bytes) in &frames {
            let a = plain.io_mut().stage(*dir, |b| {
                b[..bytes.len()].copy_from_slice(bytes);
                bytes.len()
            });
            let b = drv.io_mut().stage(*dir, |b| {
                b[..bytes.len()].copy_from_slice(bytes);
                bytes.len()
            });
            assert_eq!(a, b, "admission diverged in round {round}");
        }
        let ps = plain.drain(&mut plain_nf, now);
        let fs = drv.drain(&mut nf, now);
        assert_eq!(
            (ps.forwarded, ps.dropped, ps.tx_dropped, ps.bursts, ps.polls),
            (fs.forwarded, fs.dropped, fs.tx_dropped, fs.bursts, fs.polls),
            "drain stats diverged in round {round}"
        );
        for dir in [Direction::External, Direction::Internal] {
            let pt = plain.io_mut().reap(dir);
            let ft = drv.io_mut().reap(dir);
            assert_eq!(pt, ft, "tx sequence diverged in round {round} on {dir:?}");
            if round == 0 && dir == Direction::External {
                learned = pt.iter().map(|(_, f)| f.clone()).collect();
            }
        }
        assert_eq!(
            all_queue_stats(plain.io()),
            all_queue_stats(drv.io()),
            "per-queue accounting diverged in round {round}"
        );
        assert_eq!(nat_state(&plain_nf), nat_state(&nf));
        assert_eq!(
            plain.io().pool_available(),
            drv.io().inner().pool_available()
        );
    }
    assert_eq!(drv.io().fault_stats(), FaultStats::default());
    nf.flow_manager().check_coherence().unwrap();
}

#[test]
fn sim_backend_matches_legacy_testbed_byte_for_byte() {
    run_differential(4, 2, 8, EventLoop::new);
}

#[test]
fn faultio_empty_schedule_is_identity_on_sim_backend() {
    run_faultio_identity(4, 2, 8);
}

#[test]
fn faultio_identity_holds_under_queue_overflow() {
    run_faultio_identity(2, 2, 2);
}

#[test]
fn drop_accounting_parity_under_queue_overflow() {
    // 2-descriptor rings: nearly everything overflows; the two sides
    // must agree on every per-queue drop counter anyway.
    run_differential(2, 2, 2, EventLoop::new);
}

#[test]
fn weighted_budgets_preserve_equivalence() {
    // Skewed WRR weights and a tight backoff window exercise the
    // rotation/budget machinery on both sides of the seam.
    run_differential(2, 2, 8, |queues| {
        EventLoop::with_parts(
            Poller::with_backoff(100, 400),
            Wrr::weighted((1..=queues).collect(), 4),
        )
    });
}

// ---------------------------------------------------------------------
// OS-backend conformance (privileged; CI's os-backend-integration job).
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod os {
    use super::*;
    use std::io::Write;
    use vignat_repro::sim::backend::os::mmap::{MmapBackend, MmapRingConfig};
    use vignat_repro::sim::backend::os::{OsTestRig, VethPair, WireBackend};

    /// Where the CI job picks up failure artifacts.
    fn trace_dir() -> std::path::PathBuf {
        let d = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/os-backend-trace");
        let _ = std::fs::create_dir_all(&d);
        d
    }

    fn dump_trace(name: &str, records: &[TxRecord]) {
        if let Ok(mut f) = std::fs::File::create(trace_dir().join(name)) {
            for r in records {
                let _ = writeln!(f, "{:?} q{} {:02x?}", r.out, r.queue, r.frame);
            }
        }
    }

    fn dump_rx(name: &str, rounds: &[(Time, RoundFrames)]) {
        if let Ok(mut f) = std::fs::File::create(trace_dir().join(name)) {
            for (now, arrivals) in rounds {
                let _ = writeln!(f, "-- round at {now:?} --");
                for (dir, bytes) in arrivals {
                    let _ = writeln!(f, "{dir:?} {bytes:02x?}");
                }
            }
        }
    }

    /// Create the two veth pairs a wire test needs, or `None` (skip)
    /// when the capability is missing. `prefix` ≤ 9 chars keeps the
    /// interface names under IFNAMSIZ.
    fn wire(prefix: &str) -> Option<(VethPair, VethPair)> {
        let int_veth = match VethPair::create(&format!("{prefix}-int0"), &format!("{prefix}-int1"))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("SKIP ({prefix}): {e}");
                return None;
            }
        };
        let ext_veth = match VethPair::create(&format!("{prefix}-ext0"), &format!("{prefix}-ext1"))
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("SKIP ({prefix}): {e}");
                return None;
            }
        };
        Some((int_veth, ext_veth))
    }

    /// Same packet trace in → same NAT state, tx order, per-queue
    /// stats, and drop counters out, across the wire/sim boundary —
    /// generic over the wire transport, so the per-frame and the
    /// mmap-ring backends prove the identical property. The wire side
    /// records what the kernel actually delivered; the sim side
    /// replays that recording, so the comparison is exact by
    /// construction.
    fn recorded_trace_parity<B, F>(label: &str, prefix: &str, open: F)
    where
        B: WireBackend,
        F: FnOnce(&VethPair, &VethPair, RssClassifier, usize) -> std::io::Result<OsTestRig<B>>,
    {
        const QUEUES: usize = 2;
        const SHARDS: usize = 2;
        const RING: usize = 64;
        let c = cfg(256);

        let Some((int_veth, ext_veth)) = wire(prefix) else {
            return;
        };
        let rig = match open(
            &int_veth,
            &ext_veth,
            RssClassifier::for_nat(&c, QUEUES),
            RING,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("SKIP {label}: {e}");
                return;
            }
        };

        let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);
        let mut os_nf = ShardedVigNatMb::sharded(c, SHARDS);
        let mut os_drv = BackendDriver::new(rig);
        os_drv.set_tx_log(true);
        os_drv.io_mut().backend_mut().set_rx_log(true);

        // Drive rounds across the real wire, keeping each round's
        // kernel-delivered arrivals (the recorded trace to replay).
        let mut os_rounds: Vec<(Time, RoundFrames)> = Vec::new();
        let mut os_tx: Vec<TxRecord> = Vec::new();
        let mut learned: Vec<Vec<u8>> = Vec::new();
        for round in 0..3 {
            let frames = mixed_round(&gen, round, &learned);
            let now = Time::from_secs(1 + round as u64);
            let mut sent = 0usize;
            for (dir, bytes) in &frames {
                if os_drv
                    .io_mut()
                    .stage(*dir, |b| {
                        b[..bytes.len()].copy_from_slice(bytes);
                        bytes.len()
                    })
                    .is_some()
                {
                    sent += 1;
                }
            }
            assert_eq!(sent, frames.len(), "wire injection failed in round {round}");

            // Wait until the kernel has delivered everything we sent
            // (plus whatever noise it adds — replayed either way).
            // Frames dropped at a full RX FIFO still count as seen:
            // the recorded trace replays the drop identically in sim.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            let seen_before = os_drv.io().backend().rx_seen();
            loop {
                os_drv.io_mut().pump_rx();
                let seen = (os_drv.io().backend().rx_seen() - seen_before) as usize;
                if seen >= sent {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "round {round}: kernel delivered {seen}/{sent} frames within deadline"
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }

            let stats = os_drv.drain(&mut os_nf, now);
            let _ = stats;
            // Collect what actually crossed the wire back to the tester.
            let expected_tx = os_drv.take_tx_log().into_iter().collect::<Vec<_>>();
            os_drv.set_tx_log(true); // re-arm (take_tx_log drains)
            let ext_expect = expected_tx
                .iter()
                .filter(|r| r.out == Direction::External)
                .count();
            let int_expect = expected_tx.len() - ext_expect;
            let wire_ext = os_drv.io_mut().reap_wait(
                Direction::External,
                ext_expect,
                std::time::Duration::from_secs(5),
            );
            let wire_int = os_drv.io_mut().reap_wait(
                Direction::Internal,
                int_expect,
                std::time::Duration::from_secs(5),
            );
            // Every frame the driver forwarded arrived on the tester's
            // side of the wire, bytes intact (kernel delivery order may
            // interleave queues: compare as multisets).
            let mut sent_ext: Vec<Vec<u8>> = expected_tx
                .iter()
                .filter(|r| r.out == Direction::External)
                .map(|r| r.frame.clone())
                .collect();
            let mut got_ext: Vec<Vec<u8>> = wire_ext.into_iter().map(|(_, f)| f).collect();
            sent_ext.sort();
            got_ext.sort();
            assert_eq!(sent_ext, got_ext, "round {round}: external wire bytes");
            let mut sent_int: Vec<Vec<u8>> = expected_tx
                .iter()
                .filter(|r| r.out == Direction::Internal)
                .map(|r| r.frame.clone())
                .collect();
            let mut got_int: Vec<Vec<u8>> = wire_int.into_iter().map(|(_, f)| f).collect();
            sent_int.sort();
            got_int.sort();
            assert_eq!(sent_int, got_int, "round {round}: internal wire bytes");

            if round == 0 {
                learned = sent_ext;
            }
            os_rounds.push((now, os_drv.io_mut().backend_mut().take_rx_log()));
            os_tx.extend(expected_tx);
            // Keep the artifacts current after every round, so the CI
            // job's on-failure upload has them even when a later
            // round's assert (or the delivery deadline) fails first.
            dump_trace(&format!("{label}_tx_trace.txt"), &os_tx);
            dump_rx(&format!("{label}_rx_trace.txt"), &os_rounds);
        }
        // A last flush lets a ring transport confirm its final
        // completions before stats are compared.
        os_drv.io_mut().flush_tx();

        // Replay the recorded arrival trace through the sim backend.
        let mut sim_nf = ShardedVigNatMb::sharded(c, SHARDS);
        let mut sim_drv =
            BackendDriver::new(SimBackend::new(RssClassifier::for_nat(&c, QUEUES), RING));
        sim_drv.set_tx_log(true);
        let mut sim_dropped = 0u64;
        for (now, arrivals) in &os_rounds {
            for (dir, bytes) in arrivals {
                // `None` = admission drop (full FIFO) — the parity
                // event the OS side counted too, not a failure.
                let _ = sim_drv.io_mut().stage(*dir, |b| {
                    b[..bytes.len()].copy_from_slice(bytes);
                    bytes.len()
                });
            }
            let s = sim_drv.drain(&mut sim_nf, *now);
            sim_dropped += s.dropped;
            for dir in [Direction::External, Direction::Internal] {
                let _ = sim_drv.io_mut().reap(dir);
            }
        }

        // Parity: tx trace (order, queues, bytes), NAT state, and the
        // complete per-queue ledger — rx, rx drops, and the
        // flush-attributed tx/tx_bytes against sim's enqueue-attributed
        // ones (equal because every wire send succeeded; see below).
        let sim_tx = sim_drv.take_tx_log();
        dump_trace(&format!("{label}_tx_trace.txt"), &os_tx);
        dump_trace(&format!("{label}_sim_tx_trace.txt"), &sim_tx);
        assert_eq!(
            os_tx, sim_tx,
            "{label}: tx traces diverged (see target/os-backend-trace/)"
        );
        assert_eq!(
            nat_state(&os_nf),
            nat_state(&sim_nf),
            "{label}: NAT state diverged"
        );
        assert_eq!(
            all_queue_stats(os_drv.io()),
            all_queue_stats(sim_drv.io()),
            "{label}: per-queue rx/drop/tx/tx_bytes accounting diverged"
        );
        // NF-level drops: garbage frames the NAT refused.
        assert_eq!(os_nf.occupancy(), sim_nf.occupancy());
        assert!(sim_dropped > 0, "schedule contains garbage the NAT drops");
        assert_eq!(
            os_drv.io().backend().tx_errors(),
            0,
            "{label}: wire sends must succeed"
        );
        assert_eq!(
            os_drv.io().backend().rx_errors(),
            0,
            "{label}: no receive errors on a live veth"
        );
        assert_eq!(
            os_drv.io_mut().backend_mut().kernel_drops(),
            0,
            "{label}: this workload never overruns the kernel side"
        );
    }

    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW (veth + AF_PACKET); run via CI os-backend-integration or sudo"]
    fn os_backend_matches_sim_on_recorded_trace() {
        recorded_trace_parity("os", "vgcnf", |i, e, cl, ring| {
            OsTestRig::open(i, e, cl, ring)
        });
    }

    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW (veth + AF_PACKET mmap rings); run via CI os-backend-integration or sudo"]
    fn mmap_backend_matches_sim_on_recorded_trace() {
        recorded_trace_parity("mmap", "vgmmp", |i, e, cl, ring| {
            OsTestRig::open_mmap(i, e, cl, ring)
        });
    }

    /// The fault layer's identity theorem on the per-frame wire
    /// backend: `FaultIo(FaultPlan::none())` wrapped around a live
    /// `OsBackend` passes the same recorded-trace parity proof the
    /// bare backend does, so an empty schedule changes nothing on a
    /// real kernel packet path either.
    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW (veth + AF_PACKET); run via CI os-backend-integration or sudo"]
    fn faultio_identity_holds_on_os_backend() {
        use vignat_repro::sim::backend::os::OsBackend;
        use vignat_repro::sim::backend::{FaultIo, FaultPlan};
        recorded_trace_parity("fault-os", "vgfos", |i, e, cl, ring| {
            let inner = OsBackend::open(&i.a, &e.a, cl, ring)?;
            OsTestRig::with_backend(FaultIo::new(inner, FaultPlan::none()), i, e)
        });
    }

    /// Identity theorem on the zero-copy mmap-ring wire backend.
    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW (veth + AF_PACKET mmap rings); run via CI os-backend-integration or sudo"]
    fn faultio_identity_holds_on_mmap_backend() {
        use vignat_repro::sim::backend::{FaultIo, FaultPlan};
        recorded_trace_parity("fault-mmap", "vgfmm", |i, e, cl, ring| {
            let inner = MmapBackend::open(&i.a, &e.a, cl, ring, MmapRingConfig::default())?;
            OsTestRig::with_backend(FaultIo::new(inner, FaultPlan::none()), i, e)
        });
    }

    /// A partially filled RX block must reach user space within the
    /// retire timeout — frames must never wait for a block to fill.
    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW; run via CI os-backend-integration or sudo"]
    fn mmap_partial_block_retires_within_timeout() {
        let c = cfg(64);
        let Some((int_veth, ext_veth)) = wire("vgret") else {
            return;
        };
        let mut rig =
            match OsTestRig::open_mmap(&int_veth, &ext_veth, RssClassifier::for_nat(&c, 2), 64) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("SKIP mmap_partial_block_retires_within_timeout: {e}");
                    return;
                }
            };
        let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);
        // 3 small frames: a 32 KiB block is nowhere near full.
        for i in 0..3u32 {
            let f = gen.background(i);
            assert!(rig
                .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some());
        }
        // The retire timeout is 1 ms; give the kernel a generous
        // window, then one pump must surface all three frames.
        let ready = rig
            .backend()
            .wait_rx(Direction::Internal, 1000)
            .expect("poll works");
        assert!(ready, "retire timeout hands over the partial block");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while rig.backend().rx_seen() < 3 {
            rig.pump_rx();
            assert!(
                std::time::Instant::now() < deadline,
                "3 frames must arrive via block retire, got {}",
                rig.backend().rx_seen()
            );
        }
        let rx_total: u64 = (0..2)
            .map(|q| rig.queue_stats(Direction::Internal, q).rx)
            .sum();
        assert_eq!(rx_total, 3, "all three admitted from the partial block");
    }

    /// Overrunning the RX ring loses frames *in the kernel* — counted
    /// via `PACKET_STATISTICS` — and must never corrupt backend state:
    /// after the flood, the rig still forwards cleanly.
    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW; run via CI os-backend-integration or sudo"]
    fn mmap_ring_overrun_counts_kernel_drops_without_corruption() {
        let c = cfg(256);
        let Some((int_veth, ext_veth)) = wire("vgovr") else {
            return;
        };
        let classifier = RssClassifier::for_nat(&c, 2);
        // A deliberately tiny RX ring: two 4 KiB blocks per port.
        let rc = MmapRingConfig {
            rx_block_size: 4096,
            rx_block_count: 2,
            rx_frame_size: 2048,
            retire_ms: 1,
            ..MmapRingConfig::default()
        };
        let backend = match MmapBackend::open(&int_veth.a, &ext_veth.a, classifier, 64, rc) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("SKIP mmap_ring_overrun_counts_kernel_drops_without_corruption: {e}");
                return;
            }
        };
        let mut rig =
            OsTestRig::with_backend(backend, &int_veth, &ext_veth).expect("peer sockets open");
        let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);

        // Flood without pumping: the kernel fills both blocks, then
        // must drop the excess outside the ring.
        let mut staged = 0u64;
        for k in 0..4096u32 {
            let f = gen.background(k % 8);
            if rig
                .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                .is_some()
            {
                staged += 1;
            }
        }
        assert!(staged > 1000, "flood must actually inject ({staged})");
        std::thread::sleep(std::time::Duration::from_millis(20));
        rig.pump_rx();
        let drops = rig.backend_mut().kernel_drops();
        let seen = rig.backend().rx_seen();
        assert!(
            drops > 0,
            "a 2-block ring cannot absorb {staged} frames (seen {seen}, kernel drops {drops})"
        );

        // State intact: the NAT still forwards a fresh flow end to end.
        let mut nf = ShardedVigNatMb::sharded(c, 2);
        let mut drv = BackendDriver::new(rig);
        drv.drain(&mut nf, Time::from_secs(1)); // clear the flood
        let f = gen.background(9999);
        assert!(drv
            .io_mut()
            .stage(Direction::Internal, |b| gen.write_frame(&f, b))
            .is_some());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = Vec::new();
        while got.is_empty() {
            drv.drain(&mut nf, Time::from_secs(2));
            got = drv.io_mut().reap_wait(
                Direction::External,
                1,
                std::time::Duration::from_millis(100),
            );
            assert!(
                std::time::Instant::now() < deadline,
                "post-overrun frame must still be translated and forwarded"
            );
        }
        let (_, ff) = parse_l3l4(&got[0].1).expect("translated frame parses");
        assert_eq!(ff.src_ip, c.external_ip, "NAT rewrite survived the overrun");
        assert_eq!(drv.io().backend().tx_errors(), 0);
    }

    fn open_fds() -> usize {
        std::fs::read_dir("/proc/self/fd")
            .map(|d| d.count())
            .unwrap_or(0)
    }

    fn mapping_count() -> usize {
        std::fs::read_to_string("/proc/self/maps")
            .map(|m| m.lines().count())
            .unwrap_or(0)
    }

    /// Ring teardown is leak-free: repeatedly opening and dropping a
    /// full mmap rig (4 sockets + 4 ring mappings per cycle, traffic
    /// included) leaves the fd table and the address space flat.
    #[test]
    #[ignore = "needs CAP_NET_ADMIN/CAP_NET_RAW; run via CI os-backend-integration or sudo"]
    fn mmap_teardown_releases_rings_and_sockets() {
        let c = cfg(64);
        let Some((int_veth, ext_veth)) = wire("vglk") else {
            return;
        };
        let classifier = RssClassifier::for_nat(&c, 2);
        let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);
        let cycle = |drive: bool| {
            let mut rig =
                OsTestRig::open_mmap(&int_veth, &ext_veth, classifier, 64).expect("mmap rig opens");
            if drive {
                let mut nf = ShardedVigNatMb::sharded(c, 2);
                let mut drv = BackendDriver::new(rig);
                let f = gen.background(1);
                assert!(drv
                    .io_mut()
                    .stage(Direction::Internal, |b| gen.write_frame(&f, b))
                    .is_some());
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
                while drv.io().backend().rx_seen() < 1 {
                    drv.drain(&mut nf, Time::from_secs(1));
                    assert!(std::time::Instant::now() < deadline);
                }
                drv.drain(&mut nf, Time::from_secs(1));
                drv.io_mut().flush_tx();
                rig = drv.into_io();
                assert_eq!(rig.backend().tx_inflight(), 0, "quiescent flush reaps all");
            }
            drop(rig);
        };
        // Warm up allocator arenas and lazy runtime state first, so
        // the measured window only sees the rig's own resources.
        cycle(true);
        let fds_before = open_fds();
        let maps_before = mapping_count();
        for i in 0..5 {
            cycle(i % 2 == 0);
        }
        let fds_after = open_fds();
        let maps_after = mapping_count();
        assert_eq!(
            fds_before, fds_after,
            "socket fds leaked across open/drop cycles"
        );
        // One leaked cycle would add 4 ring mappings; allow a line or
        // two of allocator jitter but nothing ring-shaped.
        assert!(
            maps_after <= maps_before + 2,
            "ring mappings leaked: {maps_before} -> {maps_after}"
        );
    }
}
