//! Differential proof that the tag-group SWAR directory probe is a
//! **pure optimization**: at every layer that owns or proxies the
//! flow-table directory — `Map`, `DoubleMap` (via `FlowManager`), the
//! sharded table — the tag-probed operations are byte-for-byte
//! equivalent to the scalar reference walk and the abstract model,
//! across insert/erase/expiry/realloc sequences, at both moderate
//! (49%) and near-full (98%) occupancy.
//!
//! The 98% cases are the ones the tag directory exists for (the miss
//! path degrades worst near fullness, paper Fig. 12's last point), and
//! CI runs this suite in a dedicated release job so the miss-heavy
//! path is exercised on every change, not just in benches.

use vignat_repro::libvig::map::{Map, MapKey};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowManager, FlowTable, NatConfig, ShardedFlowManager};
use vignat_repro::packet::{FlowId, Ip4, Proto};

const CAP: usize = 4096;

fn cfg(capacity: usize) -> NatConfig {
    NatConfig {
        capacity,
        expiry_ns: Time::from_secs(10).nanos(),
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    }
}

fn fid(i: u32) -> FlowId {
    FlowId {
        src_ip: Ip4(0x0a00_0000 | (i & 0xffff)),
        src_port: 10_000 + (i >> 16) as u16,
        dst_ip: Ip4::new(1, 1, 1, 1),
        dst_port: 80,
        proto: Proto::Udp,
    }
}

/// Assert the tag-probed read path equals the scalar reference for a
/// query mix of hits, misses, and erased-then-reinserted keys.
fn assert_map_matches_scalar(m: &Map<u64>, queries: impl Iterator<Item = u64>) {
    for q in queries {
        let h = q.key_hash();
        assert_eq!(
            m.get_with_hash(&q, h),
            m.get_with_hash_scalar(&q, h),
            "get diverged for key {q}"
        );
        assert_eq!(
            m.probe_len(&q),
            m.probe_len_scalar(&q),
            "probe_len diverged for key {q}"
        );
    }
    m.check_tag_coherence().expect("tag directory incoherent");
}

/// The directory-layer differential at both target occupancies, through
/// fill → erase (holes + live chain counters) → refill (realloc over
/// holes) — the sequence that stresses the free-lane/chain interaction
/// the SWAR walk must preserve.
#[test]
fn map_equals_scalar_reference_at_49_and_98_occupancy() {
    for occupancy in [CAP * 49 / 100, CAP * 98 / 100] {
        let mut m = Map::<u64>::new(CAP);
        for k in 0..occupancy as u64 {
            m.put(k, k as usize).unwrap();
        }
        // Hits, misses, and out-of-range misses.
        assert_map_matches_scalar(&m, (0..occupancy as u64 + 512).step_by(3));
        // Erase a scattered 10% — leaves holes whose chain counters
        // stay live — then recheck misses that probe across them.
        for k in (0..occupancy as u64).step_by(10) {
            assert!(m.erase(&k).is_some());
        }
        assert_map_matches_scalar(&m, (0..occupancy as u64 + 512).step_by(7));
        // Refill the holes with fresh keys (realloc): probe paths now
        // mix old chains, reused slots, and new tags.
        let mut fresh = 1_000_000u64;
        while m.size() < occupancy {
            if m.get(&fresh).is_none() {
                m.put(fresh, 0).unwrap();
            }
            fresh += 1;
        }
        assert_map_matches_scalar(
            &m,
            (0..occupancy as u64).step_by(5).chain(1_000_000..1_000_400),
        );
    }
}

/// While a table fills from empty to 98%, `probe_len` of a fixed query
/// set is monotone non-decreasing (insert-only sequences leave every
/// free slot chain-free, so the miss stop can only move outward), and
/// at every sampled occupancy the tag walk equals the scalar walk.
#[test]
fn probe_len_monotone_while_filling_to_98pct() {
    let mut m = Map::<u64>::new(CAP);
    let queries: Vec<u64> = (0..64).map(|i| i * 131).collect();
    let mut last = vec![0usize; queries.len()];
    for k in 0..(CAP * 98 / 100) as u64 {
        m.put(k, 0).unwrap();
        if k % 257 == 0 {
            for (q, prev) in queries.iter().zip(last.iter_mut()) {
                let now = m.probe_len(q);
                assert_eq!(now, m.probe_len_scalar(q));
                assert!(*prev <= now, "probe_len shrank while filling");
                *prev = now;
            }
        }
    }
}

/// Drive a FlowManager through fill → expiry → realloc at 49% and 98%
/// occupancy, holding the coherence invariant (which now includes both
/// directories' tag projections) at every stage, and proving the
/// batched probe contract — batch results equal element-wise hashed
/// lookups — on a hit/miss query mix.
#[test]
fn flow_manager_expiry_realloc_keeps_directories_coherent() {
    for occupancy in [CAP * 49 / 100, CAP * 98 / 100] {
        let mut fm = FlowManager::new(&cfg(CAP));
        for i in 0..occupancy as u32 {
            fm.allocate(fid(i), Time::from_secs(1))
                .expect("below capacity");
        }
        fm.check_coherence().unwrap();

        // Rejuvenate a third so expiry leaves survivors interleaved
        // with holes, then expire the rest.
        for i in (0..occupancy as u32).step_by(3) {
            let (slot, _) = fm.lookup_internal(&fid(i)).expect("resident");
            fm.rejuvenate(slot, Time::from_secs(5));
        }
        let expired = fm.expire(Time::from_secs(2));
        assert!(expired > 0, "the unrejuvenated majority must expire");
        fm.check_coherence().unwrap();

        // Realloc into the freed slots with fresh flows.
        let mut fresh = 2_000_000u32;
        while !fm.is_full() {
            if fm.lookup_internal(&fid(fresh)).is_none() {
                fm.allocate(fid(fresh), Time::from_secs(6))
                    .expect("slot free");
            }
            fresh += 1;
        }
        fm.check_coherence().unwrap();

        // Batched probe contract on a mix of survivors, expired keys,
        // and reallocated flows.
        let queries: Vec<FlowId> = (0..occupancy as u32)
            .step_by(2)
            .map(fid)
            .chain((2_000_000..2_000_200).map(fid))
            .collect();
        let hashes: Vec<u64> = queries.iter().map(MapKey::key_hash).collect();
        let mut batch = Vec::new();
        fm.probe_internal_batch(&queries, &hashes, &mut batch);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let seq = fm
                .lookup_internal_hashed(q, hashes[i])
                .map(|(s, f)| (s, *f));
            assert_eq!(batch[i], seq, "batch query {i} diverged");
        }
    }
}

/// The sharded table at 98% per-shard occupancy: 1-shard equals the
/// unsharded table byte-for-byte through fill/expiry/realloc, the
/// 4-shard probe batch equals element-wise lookups, per-shard probe
/// lengths stay observable, and coherence (tags included) holds.
#[test]
fn sharded_table_matches_unsharded_at_98pct() {
    let c = cfg(512);
    let mut one = ShardedFlowManager::new(&c, 1);
    let mut plain = FlowManager::new(&c);
    let target = 512 * 98 / 100;
    let mut i = 0u32;
    while plain.len() < target {
        let f = fid(i);
        let h = f.key_hash();
        let a = {
            assert!(one.lookup_internal_hashed(&f, h).is_none());
            one.allocate_slot_routed(h, Time::from_secs(1)).map(|slot| {
                let (ip, port) = one.endpoint_of_slot(slot);
                one.insert_hashed(slot, f, ip, port, h, 0);
                (slot, port)
            })
        };
        let b = plain.allocate(f, Time::from_secs(1));
        assert_eq!(a, b, "1-shard allocation diverged at flow {i}");
        i += 1;
    }
    // Expire everything in both, realloc, and compare lookups + probe
    // lengths across the whole key range.
    assert_eq!(
        FlowTable::expire(&mut one, Time::from_secs(1)),
        plain.expire(Time::from_secs(1))
    );
    for j in 0..i {
        let f = fid(j + 3_000_000);
        let h = f.key_hash();
        let a = one
            .allocate_slot_routed(h, Time::from_secs(2))
            .inspect(|&slot| {
                let (ip, port) = one.endpoint_of_slot(slot);
                one.insert_hashed(slot, f, ip, port, h, 0);
            });
        let b = plain.allocate(f, Time::from_secs(2)).map(|(slot, _)| slot);
        assert_eq!(a, b, "realloc diverged at flow {j}");
    }
    for j in 0..2 * i {
        let f = fid(j + 3_000_000);
        let h = f.key_hash();
        assert_eq!(
            one.lookup_internal_hashed(&f, h).map(|(s, fl)| (s, *fl)),
            plain.lookup_internal_hashed(&f, h).map(|(s, fl)| (s, *fl)),
        );
        assert_eq!(one.internal_probe_len(&f), plain.internal_probe_len(&f));
    }
    one.check_coherence().unwrap();
    plain.check_coherence().unwrap();

    // 4-shard: fill each shard to ~98%, then the batched probe must
    // equal element-wise lookups over a hit/miss mix.
    let mut four = ShardedFlowManager::new(&cfg(CAP), 4);
    let mut n = 0u32;
    let want = four.table_capacity() * 90 / 100;
    let mut k = 0u32;
    while (four.flow_count()) < want && k < 4 * CAP as u32 {
        let f = fid(k);
        let h = f.key_hash();
        if four.lookup_internal_hashed(&f, h).is_none() {
            if let Some(slot) = four.allocate_slot_routed(h, Time::from_secs(1)) {
                let (ip, port) = four.endpoint_of_slot(slot);
                four.insert_hashed(slot, f, ip, port, h, 0);
                n += 1;
            }
        }
        k += 1;
    }
    assert!(n > 0);
    let queries: Vec<FlowId> = (0..k + 512).step_by(3).map(fid).collect();
    let hashes: Vec<u64> = queries.iter().map(MapKey::key_hash).collect();
    let mut batch = Vec::new();
    four.probe_internal_batch(&queries, &hashes, &mut batch);
    for (qi, q) in queries.iter().enumerate() {
        let seq = four
            .lookup_internal_hashed(q, hashes[qi])
            .map(|(s, f)| (s, *f));
        assert_eq!(batch[qi], seq, "4-shard batch query {qi} diverged");
    }
    four.check_coherence().unwrap();
}
