//! Adversarial-input robustness: the paper's motivation cites CVEs
//! where crafted packets crash or hang production NATs (Cisco, Juniper,
//! Windows Server, NetFilter). The verified NAT's crash-freedom proof
//! (P2) covers all inputs; these tests hammer all three NATs with the
//! kinds of inputs those CVEs used — random bytes, bit-flipped headers,
//! boundary-valued fields — and require (a) no panic, (b) every
//! forwarded output still parses with valid checksums, (c) flow-state
//! coherence afterwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::baselines::{NetfilterNat, UnverifiedNat};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4};
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    }
}

fn nats() -> Vec<Box<dyn Middlebox>> {
    vec![
        Box::new(VigNatMb::new(cfg())),
        Box::new(UnverifiedNat::new(cfg())),
        Box::new(NetfilterNat::new(cfg())),
    ]
}

/// Was the frame's IPv4 header checksum valid before processing?
/// (The NATs use RFC 1624 incremental updates, which *preserve*
/// checksum validity — and, faithfully, preserve invalidity: like
/// VigNAT they assume NIC hardware already dropped bad-checksum frames,
/// so the invariant to test is "valid in ⇒ valid out".)
fn input_checksum_valid(frame: &[u8]) -> bool {
    frame.len() >= 34
        && vignat_repro::packet::ipv4::Ipv4Packet::parse(&frame[14..])
            .map(|ip| ip.verify_checksum())
            .unwrap_or(false)
}

/// Output contract under adversarial input: a forwarded frame must
/// parse *at least as well* as its input did. A NAT is not an L4
/// validator — a frame with a garbage TCP data offset is still
/// translated (exactly what the C VigNAT's fixed-offset struct writes
/// do) — so full parseability is only required when the input had it,
/// and checksum validity only when the input checksum was valid
/// (hardware offload drops the rest before the NF in the real system).
fn check_output_if_forwarded(
    name: &str,
    verdict: Verdict,
    frame: &[u8],
    input_parsed: bool,
    input_valid: bool,
) {
    if let Verdict::Forward(_) = verdict {
        if input_parsed {
            let _ = parse_l3l4(frame)
                .unwrap_or_else(|e| panic!("{name}: parseable input forwarded as junk: {e}"));
        }
        if input_valid {
            let ip = vignat_repro::packet::ipv4::Ipv4Packet::parse(&frame[14..]).unwrap();
            assert!(
                ip.verify_checksum(),
                "{name}: checksum-valid input forwarded with bad IP checksum"
            );
        }
    }
}

#[test]
fn random_byte_frames_never_crash_any_nat() {
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for mut nf in nats() {
        let mut now = Time::from_secs(1);
        for i in 0..3_000 {
            now = now.plus(1_000_000);
            let len = rng.gen_range(0..200);
            let mut frame: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let dir = if i % 2 == 0 {
                Direction::Internal
            } else {
                Direction::External
            };
            let parsed = parse_l3l4(&frame).is_ok();
            let valid = input_checksum_valid(&frame);
            let v = nf.process(dir, &mut frame, now);
            check_output_if_forwarded(nf.name(), v, &frame, parsed, valid);
        }
    }
}

#[test]
fn bit_flipped_valid_frames_never_crash_any_nat() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    let base = PacketBuilder::tcp(Ip4::new(192, 168, 0, 1), Ip4::new(1, 1, 1, 1), 1234, 80)
        .payload(b"x")
        .build();
    for mut nf in nats() {
        let mut now = Time::from_secs(1);
        for _ in 0..3_000 {
            now = now.plus(1_000_000);
            let mut frame = base.clone();
            // flip 1..4 random bits anywhere in the frame
            for _ in 0..rng.gen_range(1..=4) {
                let byte = rng.gen_range(0..frame.len());
                frame[byte] ^= 1u8 << rng.gen_range(0..8);
            }
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            let parsed = parse_l3l4(&frame).is_ok();
            let valid = input_checksum_valid(&frame);
            let v = nf.process(dir, &mut frame, now);
            check_output_if_forwarded(nf.name(), v, &frame, parsed, valid);
        }
    }
}

#[test]
fn boundary_valued_headers_are_handled() {
    // Fields at their extremes: lengths, ports 0/65535, IHL corners,
    // fragment-bit soup. Built raw so the builder cannot "fix" them.
    let mut cases: Vec<Vec<u8>> = Vec::new();
    let base =
        PacketBuilder::udp(Ip4::new(192, 168, 0, 9), Ip4::new(1, 1, 1, 1), 0, 65_535).build();
    cases.push(base.clone()); // port 0 / 65535 is legal on the wire
    for (off, val) in [
        (14usize, 0x4fu8), // IHL = 15 (60 bytes) in a short frame
        (14, 0x40),        // IHL = 0
        (16, 0xff),        // total_len huge (hi byte)
        (20, 0xff),        // fragment-field soup
        (22, 0x00),        // TTL 0
        (23, 0xff),        // protocol 255
    ] {
        let mut f = base.clone();
        f[off] = val;
        cases.push(f);
    }
    // Truncations at every interesting boundary.
    for cut in [0usize, 1, 13, 14, 15, 33, 34, 41, 42, 54] {
        cases.push(base[..cut.min(base.len())].to_vec());
    }
    for mut nf in nats() {
        let mut now = Time::from_secs(1);
        for (i, case) in cases.iter().enumerate() {
            now = now.plus(1_000_000);
            let mut frame = case.clone();
            let parsed = parse_l3l4(&frame).is_ok();
            let valid = input_checksum_valid(&frame);
            let v = nf.process(Direction::Internal, &mut frame, now);
            check_output_if_forwarded(nf.name(), v, &frame, parsed, valid);
            let mut frame = case.clone();
            let v = nf.process(Direction::External, &mut frame, now);
            check_output_if_forwarded(nf.name(), v, &frame, parsed, valid);
            let _ = i;
        }
    }
}

/// Corrupted-frame corpus generated by the fault layer's header
/// profiles turned up to rate 1: bad IHL nibbles, garbage IP versions,
/// and truncations inside the L4 header — the exact malformed-header
/// shapes the motivating CVEs used. The corpus is produced by damaging
/// *well-formed* staged traffic inside a `FaultIo`-wrapped backend (the
/// same seam the chaos suites use), so it is deterministic and
/// regenerates identically on every run. Contract: every corpus frame
/// fails the parser, every NAT drops it with the bytes unmodified, and
/// the verified NAT's flow state is bit-identical before and after the
/// barrage.
#[test]
fn fault_layer_corruption_corpus_is_rejected_without_state_mutation() {
    use vignat_repro::sim::backend::{
        CorruptKind, FaultIo, FaultPlan, PacketIo, SimBackend, TesterIo, TruncateKind,
    };
    use vignat_repro::sim::RssClassifier;

    let c = cfg();
    let profiles: Vec<(&str, FaultPlan)> = vec![
        (
            "bad-ihl",
            FaultPlan::seeded(0x1).corrupt_1_in(1, CorruptKind::BadIhl),
        ),
        (
            "bad-version",
            FaultPlan::seeded(0x2).corrupt_1_in(1, CorruptKind::BadVersion),
        ),
        (
            "short-l4",
            FaultPlan::seeded(0x3).truncate_1_in(1, TruncateKind::ShortL4),
        ),
    ];
    for (name, plan) in profiles {
        // Generate the corpus: stage valid UDP/TCP frames, let the
        // fault layer damage every one on its way out of the RX FIFOs.
        let mut io = FaultIo::new(SimBackend::new(RssClassifier::for_nat(&c, 2), 256), plan);
        let mut staged = 0usize;
        for i in 0..48u32 {
            let frame = if i % 2 == 0 {
                PacketBuilder::udp(
                    Ip4::new(10, 0, 0, 1 + (i % 7) as u8),
                    Ip4::new(1, 1, 1, 1),
                    2000 + i as u16,
                    53,
                )
                .build()
            } else {
                PacketBuilder::tcp(
                    Ip4::new(10, 0, 1, 1 + (i % 5) as u8),
                    Ip4::new(8, 8, 8, 8),
                    3000 + i as u16,
                    443,
                )
                .payload(b"abc")
                .build()
            };
            if io
                .stage(Direction::Internal, |b| {
                    b[..frame.len()].copy_from_slice(&frame);
                    frame.len()
                })
                .is_some()
            {
                staged += 1;
            }
        }
        let mut corpus: Vec<Vec<u8>> = Vec::new();
        let mut bufs = Vec::new();
        for q in 0..2 {
            bufs.clear();
            io.rx_burst(Direction::Internal, q, 256, &mut bufs);
            for &b in &bufs {
                corpus.push(io.pool().frame(b).to_vec());
            }
        }
        assert_eq!(corpus.len(), staged, "{name}: corpus is complete");
        let fs = io.fault_stats();
        assert_eq!(
            (fs.rx_corrupted + fs.rx_truncated) as usize,
            staged,
            "{name}: rate-1 profile must damage every frame"
        );

        // (a) The parser rejects every corpus frame — no indexing with
        // a bad IHL, no reads past a truncated L4 header.
        for f in &corpus {
            assert!(
                parse_l3l4(f).is_err(),
                "{name}: corrupted frame still parses: {f:02x?}"
            );
        }

        // (b) All three NATs drop every frame, bytes untouched.
        for mut nf in nats() {
            let mut now = Time::from_secs(1);
            for f in &corpus {
                now = now.plus(1_000_000);
                let mut frame = f.clone();
                let v = nf.process(Direction::Internal, &mut frame, now);
                assert_eq!(
                    v,
                    Verdict::Drop,
                    "{}: corrupted frame not dropped",
                    nf.name()
                );
                assert_eq!(&frame, f, "{}: dropped frame was mutated", nf.name());
            }
        }

        // (c) A warmed verified NAT keeps bit-identical flow state
        // (slots, flows, stamps, LRU order) across the whole barrage.
        let mut vig = VigNatMb::new(cfg());
        let mut now = Time::from_secs(1);
        for i in 0..8u16 {
            let mut f =
                PacketBuilder::udp(Ip4::new(192, 168, 0, 2), Ip4::new(1, 1, 1, 1), 1000 + i, 53)
                    .build();
            now = now.plus(1_000);
            vig.process(Direction::Internal, &mut f, now);
        }
        let state_before: Vec<_> = vig
            .flow_manager()
            .iter_lru()
            .map(|(slot, flow, stamp)| (slot, *flow, stamp))
            .collect();
        assert_eq!(state_before.len(), 8, "{name}: warm-up admitted 8 flows");
        for f in &corpus {
            let mut frame = f.clone();
            now = now.plus(1_000);
            vig.process(Direction::Internal, &mut frame, now);
            let mut frame = f.clone();
            vig.process(Direction::External, &mut frame, now);
        }
        let state_after: Vec<_> = vig
            .flow_manager()
            .iter_lru()
            .map(|(slot, flow, stamp)| (slot, *flow, stamp))
            .collect();
        assert_eq!(
            state_before, state_after,
            "{name}: corrupted frames mutated NAT state"
        );
        vig.flow_manager().check_coherence().unwrap();
    }
}

/// Per-class lifetimes for the TCP-segment attacks: short transitory,
/// long established — the split a flood tries to confuse.
fn tcp_cfg() -> NatConfig {
    NatConfig {
        tcp_transitory_ns: Time::from_secs(1).nanos(),
        tcp_established_ns: Time::from_secs(60).nanos(),
        ..cfg()
    }
}

/// Every TCP flag byte — all 256 values, including out-of-window
/// nonsense for whatever state a connection is in (SYN on established,
/// ACK on closed, SYN+FIN, CWR/ECE/URG/PSH noise bits) — fired at the
/// tracker from both directions. The state machine is total: no flag
/// soup may panic, corrupt the flow table, or push occupancy past
/// capacity.
#[test]
fn tcp_flag_soup_keeps_flow_state_coherent() {
    let mut vig = VigNatMb::new(tcp_cfg());
    let mut netf = NetfilterNat::new(tcp_cfg());
    let mut rng = StdRng::seed_from_u64(0x50_0F);
    let mut now = Time::from_secs(1);
    for step in 0..6_000u32 {
        now = now.plus(rng.gen_range(1_000_000..400_000_000));
        let fl: u8 = rng.gen(); // the full byte, noise bits included
        let (dir, mut frame) = if rng.gen_bool(0.6) {
            let host = rng.gen_range(1..24u8);
            (
                Direction::Internal,
                PacketBuilder::tcp(Ip4::new(10, 3, 0, host), Ip4::new(1, 1, 1, 1), 7000, 443)
                    .tcp_flags(fl)
                    .build(),
            )
        } else {
            let port = 4096 + rng.gen_range(0..80u16); // straddles the range
            (
                Direction::External,
                PacketBuilder::tcp(Ip4::new(1, 1, 1, 1), Ip4::new(203, 0, 113, 1), 443, port)
                    .tcp_flags(fl)
                    .build(),
            )
        };
        let mut copy = frame.clone();
        vig.process(dir, &mut frame, now);
        netf.process(dir, &mut copy, now);
        assert!(vig.occupancy() <= 64, "occupancy blew capacity at {step}");
        if step % 500 == 0 {
            vig.flow_manager().check_coherence().unwrap_or_else(|e| {
                panic!("flag soup broke coherence at step {step}: {e}");
            });
        }
    }
    vig.flow_manager().check_coherence().unwrap();
}

/// An RST flood against established mappings: the flood demotes the
/// connections to the transitory timer (that is correct RFC 5382
/// behaviour, not corruption) but must not crash, must not create
/// state, must not break the port bijection, and must still let the
/// mappings translate until the transitory timer fires.
#[test]
fn rst_flood_against_established_mappings() {
    let mut vig = VigNatMb::new(tcp_cfg());
    let lan = |h: u8| Ip4::new(10, 4, 0, h);
    let wan = Ip4::new(1, 1, 1, 1);
    let t = Time::from_secs(1);

    // Establish 8 connections with full handshakes.
    let mut mapped = Vec::new();
    for h in 1..=8u8 {
        let mut syn = PacketBuilder::tcp(lan(h), wan, 40_000, 443)
            .tcp_flags(vignat_repro::packet::tcp::flags::SYN)
            .build();
        assert!(matches!(
            vig.process(Direction::Internal, &mut syn, t),
            Verdict::Forward(_)
        ));
        let (_, of) = parse_l3l4(&syn).unwrap();
        let mut synack = PacketBuilder::tcp(wan, Ip4::new(203, 0, 113, 1), 443, of.src_port)
            .tcp_flags(
                vignat_repro::packet::tcp::flags::SYN | vignat_repro::packet::tcp::flags::ACK,
            )
            .build();
        vig.process(Direction::External, &mut synack, t);
        let mut ack = PacketBuilder::tcp(lan(h), wan, 40_000, 443)
            .tcp_flags(vignat_repro::packet::tcp::flags::ACK)
            .build();
        vig.process(Direction::Internal, &mut ack, t);
        mapped.push(of.src_port);
    }
    assert_eq!(vig.occupancy(), 8);

    // Flood: 5,000 RSTs from spoofed external sources at mapped and
    // unmapped ports, a few microseconds apart.
    let mut rng = StdRng::seed_from_u64(0xF100D);
    let mut now = t.plus(1_000);
    for _ in 0..5_000 {
        now = now.plus(rng.gen_range(1_000..100_000)); // ≪ transitory
        let port = if rng.gen_bool(0.5) {
            mapped[rng.gen_range(0..mapped.len())]
        } else {
            4096 + rng.gen_range(0..80u16)
        };
        let src = Ip4::new(rng.gen_range(1..200u8), 2, 3, 4);
        let mut rst = PacketBuilder::tcp(src, Ip4::new(203, 0, 113, 1), 443, port)
            .tcp_flags(vignat_repro::packet::tcp::flags::RST)
            .build();
        vig.process(Direction::External, &mut rst, now);
    }
    vig.flow_manager().check_coherence().unwrap();
    assert_eq!(
        vig.occupancy(),
        8,
        "a flood must not create or drop mappings while the timers run"
    );

    // The spoofed flood cannot demote: mapping keys include the remote
    // endpoint (no EIM here), so every spoofed-source RST missed. Two
    // seconds on — past transitory, inside established — all 8 still
    // stand and still translate.
    let later = now.plus(Time::from_secs(2).nanos());
    let mut tick = PacketBuilder::udp(lan(99), wan, 100, 53).build();
    vig.process(Direction::Internal, &mut tick, later);
    assert_eq!(
        vig.occupancy(),
        9,
        "spoofed RSTs must not demote established mappings"
    );
    let mut data = PacketBuilder::tcp(lan(1), wan, 40_000, 443)
        .tcp_flags(vignat_repro::packet::tcp::flags::ACK)
        .build();
    assert!(matches!(
        vig.process(Direction::Internal, &mut data, later),
        Verdict::Forward(_)
    ));

    // Genuine RSTs (from the connections' true remote) do demote —
    // and then the transitory timer, not the established one, decides.
    for &p in &mapped {
        let mut rst = PacketBuilder::tcp(wan, Ip4::new(203, 0, 113, 1), 443, p)
            .tcp_flags(vignat_repro::packet::tcp::flags::RST)
            .build();
        vig.process(Direction::External, &mut rst, later);
    }
    vig.flow_manager().check_coherence().unwrap();
    let end = later.plus(Time::from_secs(2).nanos());
    let mut tick2 = PacketBuilder::udp(lan(98), wan, 100, 53).build();
    vig.process(Direction::Internal, &mut tick2, end);
    assert_eq!(
        vig.occupancy(),
        1,
        "RST-demoted mappings must expire at the transitory pace"
    );
    vig.flow_manager().check_coherence().unwrap();
}

/// SYN+FIN churn (the classic scrubber-confusing combination): each
/// segment opens a transitory mapping; cycling thousands through a
/// 64-slot table exercises allocate/expire under the shortest class
/// without ever breaking coherence or capacity.
#[test]
fn syn_fin_churn_cycles_cleanly_through_the_table() {
    let mut vig = VigNatMb::new(tcp_cfg());
    let mut rng = StdRng::seed_from_u64(0x51F1);
    let mut now = Time::from_secs(1);
    for step in 0..8_000u32 {
        now = now.plus(rng.gen_range(5_000_000..300_000_000));
        let host = rng.gen_range(1..=200u8);
        let port = rng.gen_range(1024..2048u16);
        let mut frame =
            PacketBuilder::tcp(Ip4::new(10, 5, 0, host), Ip4::new(1, 1, 1, 1), port, 25)
                .tcp_flags(
                    vignat_repro::packet::tcp::flags::SYN | vignat_repro::packet::tcp::flags::FIN,
                )
                .build();
        vig.process(Direction::Internal, &mut frame, now);
        assert!(vig.occupancy() <= 64, "capacity breached at step {step}");
        if step % 1_000 == 0 {
            vig.flow_manager().check_coherence().unwrap_or_else(|e| {
                panic!("SYN+FIN churn broke coherence at step {step}: {e}");
            });
        }
    }
    assert!(
        vig.expired_total() > 1_000,
        "the churn must have cycled the short transitory class"
    );
    vig.flow_manager().check_coherence().unwrap();
}

#[test]
fn sustained_churn_with_expiry_keeps_state_coherent() {
    // Hours of simulated time, thousands of flows cycling through a
    // 64-entry table — the slow-leak scenario. The verified NAT's flow
    // manager must stay coherent (dmap == dchain, port bijection) the
    // whole way; occupancy may never exceed capacity.
    let mut nf = VigNatMb::new(cfg());
    let mut rng = StdRng::seed_from_u64(7);
    let mut now = Time::from_secs(1);
    for step in 0..20_000u32 {
        now = now.plus(rng.gen_range(10_000_000..500_000_000)); // 10-500 ms
        let host = rng.gen_range(1..=200u8);
        let port = rng.gen_range(1024..2048u16);
        let mut frame =
            PacketBuilder::udp(Ip4::new(10, 9, 0, host), Ip4::new(1, 1, 1, 1), port, 53).build();
        nf.process(Direction::Internal, &mut frame, now);
        assert!(
            nf.occupancy() <= 64,
            "occupancy above capacity at step {step}"
        );
        if step % 1_000 == 0 {
            nf.flow_manager().check_coherence().unwrap_or_else(|e| {
                panic!("coherence broken at step {step}: {e}");
            });
        }
    }
    assert!(
        nf.expired_total() > 1_000,
        "churn must have exercised expiry heavily"
    );
    nf.flow_manager().check_coherence().unwrap();
}
