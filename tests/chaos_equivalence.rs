//! Chaos equivalence: the verified NAT's observable behavior under
//! injected faults, in three strengths.
//!
//! 1. **Loss-free fault schedules are invisible.** Stalls and transient
//!    pump errors delay delivery but lose nothing; driving the same
//!    traffic through a faulted and a fault-free backend must produce
//!    byte-identical per-queue TX sequences, identical NAT state
//!    (stamps and LRU order included), and identical forward/drop
//!    totals. This is the strongest statement the paper's seam allows:
//!    the verified semantics do not depend on *when* the NIC delivers,
//!    only on per-queue FIFO order — which these faults preserve.
//! 2. **Lossy fault schedules degrade accountably.** Drops,
//!    truncation, corruption, duplication, reordering, and TX overruns
//!    may lose frames, but (a) the NAT never panics and its state
//!    invariants hold (`check_coherence`), (b) every staged frame is
//!    attributed to exactly one counter — the conservation equation
//!    closes — and (c) no ports leak: once the clock passes the expiry
//!    horizon, occupancy returns to zero.
//! 3. **Worker kills degrade per-shard.** A worker panic mid-burst
//!    surfaces as a `WorkerDown` report (never a deadlock), the shard
//!    restarts empty, and the *surviving* shard's output stays
//!    byte-identical to a sequential oracle throughout — the oracle
//!    mirrors only the supervisor's documented recovery (skip the lost
//!    job, reset the shard).
//!
//! Everything is seeded and deterministic: the fault layer's SplitMix64
//! stream makes each schedule reproducible byte-for-byte.

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::{FlowTable, NatConfig, ShardedFlowManager};
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Flow, Ip4};
use vignat_repro::sim::backend::{
    CorruptKind, FaultIo, FaultPlan, PacketIo, SimBackend, TesterIo, TruncateKind,
};
use vignat_repro::sim::dpdk::Mempool;
use vignat_repro::sim::eventloop::{BackendDriver, DrainStats};
use vignat_repro::sim::harness::ParallelShardedNat;
use vignat_repro::sim::middlebox::{Middlebox, ShardedVigNatMb, Verdict};
use vignat_repro::sim::tester::FlowGen;
use vignat_repro::sim::RssClassifier;

const QUEUES: usize = 2;
const SHARDS: usize = 2; // == QUEUES: each shard feeds from one queue,
                         // so per-queue FIFO order fixes per-shard order

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 256,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(10, 1, 0, 1),
        start_port: 1000,
        ..NatConfig::paper_default()
    }
}

/// Full observable NAT state: (shard, slot, flow, stamp) in LRU order.
fn nat_state(nf: &ShardedVigNatMb) -> Vec<(usize, usize, Flow, Time)> {
    let fm = nf.flow_manager();
    let mut out = Vec::new();
    for s in 0..fm.shard_count() {
        for (slot, flow, stamp) in fm.shard(s).iter_lru() {
            out.push((s, slot, *flow, stamp));
        }
    }
    out
}

/// Per-shard LRU snapshots with coherence asserted.
fn sharded_state(t: &ShardedFlowManager) -> Vec<Vec<(usize, Flow, Time)>> {
    FlowTable::check_coherence(t).expect("sharded coherence");
    t.snapshot()
}

fn fold(acc: &mut (u64, u64, u64), s: &DrainStats) {
    acc.0 += s.forwarded;
    acc.1 += s.dropped;
    acc.2 += s.tx_dropped;
}

/// Reaped TX frames regrouped per (dir, queue) — cross-queue
/// interleaving is timing (faults legitimately change it); per-queue
/// sequences are semantics (loss-free faults must not).
fn reap_per_queue<B: TesterIo>(io: &mut B) -> Vec<Vec<Vec<u8>>> {
    let mut out = vec![Vec::new(); 2 * QUEUES];
    for (d, dir) in [Direction::Internal, Direction::External]
        .into_iter()
        .enumerate()
    {
        for (q, frame) in io.reap(dir) {
            out[d * QUEUES + q].push(frame);
        }
    }
    out
}

/// Three waves of traffic: fresh flows, replies + repeats, repeat
/// flood. `learned` feeds wave 1 the wave-0 translations.
fn wave_frames(gen: &FlowGen, wave: usize, learned: &[Vec<u8>]) -> Vec<(Direction, Vec<u8>)> {
    let mut frames = Vec::new();
    match wave {
        0 => {
            for i in 0..40u32 {
                let f = gen.background(i);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
        }
        1 => {
            for t in learned {
                let (_, ff) = parse_l3l4(t).expect("translated frame parses");
                let f = gen.return_for(ff.src_ip, ff.src_port);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::External, buf));
            }
            for i in 0..12u32 {
                let f = gen.background(i);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
        }
        _ => {
            for k in 0..120u32 {
                let f = gen.background(k % 6);
                let mut buf = vec![0u8; 128];
                let n = gen.write_frame(&f, &mut buf);
                buf.truncate(n);
                frames.push((Direction::Internal, buf));
            }
        }
    }
    frames
}

/// Service rounds per wave on the faulted side: enough that every
/// stall window scheduled inside the wave expires and every pump fault
/// retries (the schedule below keeps windows well inside this span).
const ROUNDS_PER_WAVE: u64 = 64;

#[test]
fn loss_free_fault_schedule_is_byte_identical_to_no_fault_oracle() {
    let c = cfg();
    let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);

    // Stalls and pump errors only: frames are delayed, never lost or
    // mutated. Windows are scheduled inside each wave's round span.
    // Waves run ROUNDS_PER_WAVE service rounds each, so wave w covers
    // rounds [64w+1, 64(w+1)]: schedule each stall inside the wave
    // whose traffic it should delay (wave 1 carries the return flows).
    let plan = FaultPlan::seeded(0x10ad_f4ee)
        .pump_error_1_in(4)
        .stall(Direction::Internal, 0, 3, 6)
        .stall(Direction::Internal, 1, 70, 5)
        .stall(Direction::External, 0, 68, 4)
        .stall(Direction::External, 1, 80, 3)
        .stall(Direction::Internal, 0, 135, 6);
    assert!(!plan.is_identity());

    let mut chaos_nf = ShardedVigNatMb::sharded(c, SHARDS);
    let mut chaos_drv = BackendDriver::new(FaultIo::new(
        SimBackend::new(RssClassifier::for_nat(&c, QUEUES), 4096),
        plan,
    ));
    let mut oracle_nf = ShardedVigNatMb::sharded(c, SHARDS);
    let mut oracle_drv =
        BackendDriver::new(SimBackend::new(RssClassifier::for_nat(&c, QUEUES), 4096));

    let mut chaos_tot = (0u64, 0u64, 0u64);
    let mut oracle_tot = (0u64, 0u64, 0u64);
    let mut learned: Vec<Vec<u8>> = Vec::new();
    for wave in 0..3 {
        let now = Time::from_secs(1 + wave as u64);
        for (dir, bytes) in wave_frames(&gen, wave, &learned) {
            let a = chaos_drv.io_mut().stage(dir, |b| {
                b[..bytes.len()].copy_from_slice(&bytes);
                bytes.len()
            });
            let b = oracle_drv.io_mut().stage(dir, |b| {
                b[..bytes.len()].copy_from_slice(&bytes);
                bytes.len()
            });
            assert!(a.is_some() && b.is_some(), "rings sized for the schedule");
        }
        // The faulted side needs repeated rounds at the *same* clock so
        // stalled queues catch up within the wave; the oracle drains in
        // one call. Same `now` everywhere = identical stamps.
        for _ in 0..ROUNDS_PER_WAVE {
            fold(&mut chaos_tot, &chaos_drv.service_once(&mut chaos_nf, now));
        }
        fold(&mut oracle_tot, &oracle_drv.drain(&mut oracle_nf, now));

        let chaos_tx = reap_per_queue(chaos_drv.io_mut());
        let oracle_tx = reap_per_queue(oracle_drv.io_mut());
        assert_eq!(
            chaos_tx, oracle_tx,
            "wave {wave}: per-queue TX bytes diverged under a loss-free schedule"
        );
        if wave == 0 {
            learned = oracle_tx[QUEUES..].concat(); // external-port TX
        }
    }

    assert_eq!(chaos_tot, oracle_tot, "forward/drop totals diverged");
    assert_eq!(chaos_tot.2, 0, "loss-free schedule must not TX-drop");
    assert_eq!(nat_state(&chaos_nf), nat_state(&oracle_nf));
    assert_eq!(chaos_nf.expired_total(), oracle_nf.expired_total());
    FlowTable::check_coherence(chaos_nf.flow_manager()).expect("coherence under faults");

    // The schedule really ran, and only its loss-free faults fired.
    let fs = chaos_drv.io().fault_stats();
    assert!(fs.stalled_rounds > 0, "stall windows must have been active");
    assert!(fs.pump_faults > 0, "pump errors must have fired");
    assert_eq!(fs.rx_injected_drops, 0);
    assert_eq!(fs.rx_truncated, 0);
    assert_eq!(fs.rx_corrupted, 0);
    assert_eq!(fs.rx_duplicated, 0);
    assert_eq!(fs.rx_reordered, 0);
    assert_eq!(fs.tx_rejections, 0);
}

#[test]
fn lossy_fault_schedule_keeps_invariants_and_attributes_every_frame() {
    let c = cfg();
    let gen = FlowGen::new(vignat_repro::packet::Proto::Udp);

    let plan = FaultPlan::seeded(0xbad_cafe)
        .drop_1_in(5)
        .truncate_1_in(7, TruncateKind::ShortL4)
        .corrupt_1_in(6, CorruptKind::BadIhl)
        .duplicate_1_in(9)
        .reorder_1_in(4)
        .pump_error_1_in(6)
        .tx_reject_1_in(11, 8) // overrun longer than the retry budget
        .stall(Direction::Internal, 0, 10, 8);

    let mut nf = ShardedVigNatMb::sharded(c, SHARDS);
    let mut drv = BackendDriver::new(FaultIo::new(
        SimBackend::new(RssClassifier::for_nat(&c, QUEUES), 4096),
        plan,
    ));

    let mut tot = (0u64, 0u64, 0u64);
    let mut staged = 0u64;
    let mut learned: Vec<Vec<u8>> = Vec::new();
    for wave in 0..3 {
        let now = Time::from_secs(1 + wave as u64);
        for (dir, bytes) in wave_frames(&gen, wave, &learned) {
            if drv
                .io_mut()
                .stage(dir, |b| {
                    b[..bytes.len()].copy_from_slice(&bytes);
                    bytes.len()
                })
                .is_some()
            {
                staged += 1;
            }
        }
        for _ in 0..ROUNDS_PER_WAVE {
            fold(&mut tot, &drv.service_once(&mut nf, now));
        }
        let tx = reap_per_queue(drv.io_mut());
        if wave == 0 {
            learned = tx[QUEUES..].concat();
            assert!(
                !learned.is_empty(),
                "some wave-0 flows must survive the faults"
            );
        }
    }

    // Conservation: every staged frame is attributed exactly once.
    // Staged frames either entered a per-queue FIFO (rx) or overflowed
    // it (rx_dropped); FIFO frames either reached the NAT, or were
    // injected-dropped at rx_burst; duplicates add NAT arrivals on top.
    // NAT arrivals forward (tx'd or TX-dropped) or drop.
    let (forwarded, nat_dropped, tx_dropped) = tot;
    let fs = drv.io().fault_stats();
    let mut rx = 0u64;
    let mut rx_fifo_dropped = 0u64;
    for dir in [Direction::Internal, Direction::External] {
        for q in 0..QUEUES {
            let s = drv.io().queue_stats(dir, q);
            rx += s.rx;
            rx_fifo_dropped += s.rx_dropped;
        }
    }
    assert_eq!(staged, rx + rx_fifo_dropped, "staging ledger");
    assert_eq!(
        forwarded + nat_dropped + tx_dropped,
        rx - fs.rx_injected_drops + fs.rx_duplicated,
        "conservation equation must close: {fs:?}"
    );
    // The schedule's lossy faults all actually fired.
    assert!(fs.rx_injected_drops > 0);
    assert!(fs.rx_truncated > 0);
    assert!(fs.rx_corrupted > 0);
    assert!(fs.rx_duplicated > 0);
    assert!(fs.rx_reordered > 0);
    assert!(fs.tx_rejections > 0);
    assert!(
        tx_dropped > 0,
        "the long TX overrun must exhaust the retry budget"
    );
    assert!(
        nat_dropped > 0,
        "truncated/corrupted frames must reach the NAT and drop"
    );

    // State invariants hold under every fault above.
    FlowTable::check_coherence(nf.flow_manager()).expect("coherence under lossy faults");
    let resident = nf.occupancy();
    assert!(resident > 0, "some flows must have been admitted");

    // No leaked ports: past the expiry horizon every mapping dies. Each
    // delivered frame ticks expiry on its shard, so keep offering one
    // frame per queue until both shards have drained (faults may eat
    // individual probes — the loop just offers more).
    let late = Time::from_secs(200);
    let mut tries = 0;
    while nf.occupancy() > 0 {
        assert!(tries < 500, "flows leaked past the expiry horizon");
        // Return-direction probes into each shard's port range: the
        // expiry pass runs first and clears every overdue flow on that
        // shard, then the (now-dead) lookup misses and the probe drops
        // — a pure expiry tick, admitting nothing. One probe per shard;
        // faults may eat individual probes, the loop just offers more.
        let per_shard = c.capacity as u16 / SHARDS as u16;
        for s in 0..SHARDS as u16 {
            let probe = PacketBuilder::udp(
                Ip4::new(9, 9, 9, 9),
                c.external_ip,
                1,
                c.start_port + s * per_shard,
            )
            .build();
            let _ = drv.io_mut().stage(Direction::External, |b| {
                b[..probe.len()].copy_from_slice(&probe);
                probe.len()
            });
        }
        drv.service_once(&mut nf, late);
        tries += 1;
    }
    FlowTable::check_coherence(nf.flow_manager()).expect("coherence after full expiry");
}

#[test]
fn worker_kill_reports_down_restarts_and_keeps_survivor_parity() {
    let c = NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(60).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    };
    const KILL_ROUND: usize = 5;
    let mut seq = ShardedVigNatMb::sharded(c, SHARDS);
    let mut par = ParallelShardedNat::new(c, SHARDS, 256);
    let cls = par.classifier();
    let mut pool = Mempool::new(256);

    let ((), report) = par.with_runtime(false, |session| {
        let mut now = Time::from_secs(1);
        for round in 0..10 {
            now = now.plus(1_000_000);
            let frames: Vec<Vec<u8>> = (0..12u16)
                .map(|i| {
                    PacketBuilder::udp(
                        Ip4::new(10, 0, 0, 2 + (i % 5) as u8),
                        Ip4::new(1, 1, 1, 1),
                        1000 + round as u16 * 16 + i,
                        53,
                    )
                    .build()
                })
                .collect();
            let dir = Direction::Internal;
            if round == KILL_ROUND {
                // Note: the injected panic prints the worker thread's
                // panic message to stderr — expected noise here.
                assert!(session.kill_worker(0));
            }
            let mut par_frames = frames.clone();
            let v_par = session.process_burst(dir, &mut par_frames, now);

            if round == KILL_ROUND {
                // The supervisor dropped shard 0's job; the oracle
                // mirrors the documented recovery exactly: process only
                // the surviving shard's frames, then reset shard 0.
                let keep: Vec<usize> = (0..frames.len())
                    .filter(|&i| cls.queue_of(dir, &frames[i]) == 1)
                    .collect();
                assert!(!keep.is_empty() && keep.len() < frames.len());
                let bufs: Vec<_> = keep
                    .iter()
                    .map(|&i| {
                        let b = pool.get().expect("pool sized for a burst");
                        pool.write_frame(b, &frames[i]);
                        b
                    })
                    .collect();
                let v_seq = seq.process_burst(dir, &mut pool, &bufs, now);
                for (k, &i) in keep.iter().enumerate() {
                    assert_eq!(v_par[i], v_seq[k], "survivor verdict diverged");
                    assert_eq!(
                        pool.frame(bufs[k]),
                        &par_frames[i][..],
                        "survivor bytes diverged in the killed round"
                    );
                }
                for b in bufs {
                    pool.put(b);
                }
                for i in 0..frames.len() {
                    if !keep.contains(&i) {
                        assert_eq!(v_par[i], Verdict::Drop, "lost frames report Drop");
                        assert_eq!(par_frames[i], frames[i], "lost frames come back unmodified");
                    }
                }
                let downs = session.down_events();
                assert_eq!(downs.len(), 1);
                assert_eq!(downs[0].shard, 0);
                assert!(downs[0].restarted, "panic recovery restarts the worker");
                assert_eq!(downs[0].frames_lost, frames.len() - keep.len());
                assert_eq!(
                    session.supervisor().frames_lost,
                    (frames.len() - keep.len()) as u64
                );
                assert!(session.shard_alive(0));
                seq.flow_manager_mut().shards_mut()[0].reset();
            } else {
                let bufs: Vec<_> = frames
                    .iter()
                    .map(|f| {
                        let b = pool.get().expect("pool sized for a burst");
                        pool.write_frame(b, f);
                        b
                    })
                    .collect();
                let v_seq = seq.process_burst(dir, &mut pool, &bufs, now);
                assert_eq!(v_par, v_seq, "verdicts diverged in round {round}");
                for (i, b) in bufs.into_iter().enumerate() {
                    assert_eq!(
                        pool.frame(b),
                        &par_frames[i][..],
                        "bytes diverged in round {round} packet {i}"
                    );
                    pool.put(b);
                }
            }
        }
    });
    assert_eq!(report.chaos.worker_downs, 1);
    assert_eq!(report.chaos.hard_deaths, 0);
    // After the mirrored reset, both sides rebuilt shard 0 identically:
    // full state parity, shard 0 included.
    assert_eq!(
        sharded_state(seq.flow_manager()),
        sharded_state(par.table())
    );
}
