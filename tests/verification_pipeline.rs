//! Workspace-level test of the verification pipeline through the
//! public API — the reproduction of the paper's Fig. 7 proof structure
//! as one executable statement.

use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::Ip4;
use vignat_repro::validator::{run_ese, run_verification, ModelStyle};

fn paper_cfg() -> NatConfig {
    NatConfig {
        capacity: 65_535,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    }
}

#[test]
fn the_headline_result() {
    // "We present a NAT ... proven to be semantically correct according
    // to RFC 3022, as well as crash-free and memory-safe."
    let report = run_verification(&paper_cfg(), ModelStyle::Faithful, 2);
    assert!(report.ok(), "{:#?}", report.failures);
    // The proof did real work on every property:
    assert!(
        report.p1_checks >= 50,
        "semantic conditions: {}",
        report.p1_checks
    );
    assert!(
        report.p2_obligations >= 50,
        "low-level obligations: {}",
        report.p2_obligations
    );
    assert!(
        report.p4_checks >= 50,
        "usage conditions: {}",
        report.p4_checks
    );
    assert!(
        report.p5_checks >= 10,
        "model validations: {}",
        report.p5_checks
    );
}

#[test]
fn ese_is_deterministic() {
    let a = run_ese(&paper_cfg(), ModelStyle::Faithful, 10_000).unwrap();
    let b = run_ese(&paper_cfg(), ModelStyle::Faithful, 10_000).unwrap();
    assert_eq!(a.stats.paths, b.stats.paths);
    assert_eq!(a.trace_count_with_prefixes(), b.trace_count_with_prefixes());
    let ids = |r: &vignat_repro::validator::EseResult| {
        let mut v: Vec<Vec<u8>> = r
            .traces
            .iter()
            .map(|t| t.decisions.iter().map(|d| d.chosen).collect())
            .collect();
        v.sort();
        v
    };
    assert_eq!(ids(&a), ids(&b), "identical path sets across runs");
}

#[test]
fn trace_shape_matches_the_papers_figure9() {
    let ese = run_ese(&paper_cfg(), ModelStyle::Faithful, 10_000).unwrap();
    // Find the internal-hit forwarding path and eyeball its call
    // sequence: now, expire (on guarded paths), receive, branches,
    // lookup, rejuvenate, tx.
    let t = ese
        .traces
        .iter()
        .find(|t| {
            t.tx().is_some()
                && t.events.iter().any(|e| {
                    matches!(
                        e,
                        vignat_repro::validator::Event::LookupInternal {
                            result: Some(_),
                            ..
                        }
                    )
                })
        })
        .expect("internal-hit path exists");
    let rendered = t.render();
    for needle in [
        "now()",
        "receive()",
        "lookup_internal",
        "rejuvenate",
        "tx(out=External)",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
}

#[test]
fn broken_models_cannot_produce_proofs() {
    // Paper §3: "An invalid model will cause either Step 2 or Step 3 to
    // fail, but it will never lead to an incorrect proof."
    let over = run_verification(&paper_cfg(), ModelStyle::OverApproximate, 2);
    assert!(!over.ok());
    assert!(over
        .failures
        .iter()
        .all(|f| f.property == "P2" || f.property == "P5"));

    let under = run_verification(&paper_cfg(), ModelStyle::UnderApproximate, 2);
    assert!(!under.ok());
    assert!(under.failures.iter().any(|f| f.property == "P5"));
}

#[test]
fn verification_covers_edge_configurations() {
    // Port range flush against the top of u16 — the overflow proof's
    // tightest case.
    let tight = NatConfig {
        capacity: 65_535,
        expiry_ns: 1,
        external_ip: Ip4::new(1, 1, 1, 1),
        start_port: 1,
        ..NatConfig::paper_default()
    };
    assert!(run_verification(&tight, ModelStyle::Faithful, 2).ok());

    // Minimal table.
    let tiny = NatConfig {
        capacity: 1,
        expiry_ns: u64::MAX,
        external_ip: Ip4::new(1, 1, 1, 1),
        start_port: 65_535,
        ..NatConfig::paper_default()
    };
    assert!(run_verification(&tiny, ModelStyle::Faithful, 2).ok());
}

#[test]
fn rejected_configurations_never_reach_the_prover() {
    // An endpoint pool spilling past the top of the IPv4 address space
    // would break the slot⇄endpoint bijection; the config validator
    // must refuse it up front.
    let bad = NatConfig {
        capacity: 1 << 20,
        expiry_ns: 1,
        external_ip: Ip4::new(255, 255, 255, 255),
        start_port: 1024,
        ..NatConfig::paper_default()
    };
    assert!(vignat_repro::nat::loop_body::check_config(&bad).is_err());
    let r = run_ese(&bad, ModelStyle::Faithful, 10_000);
    assert!(r.is_err(), "ESE must refuse invalid configurations");

    // Valid but multi-address (capacity exceeds one address's ports):
    // outside the symbolic models' single-address scope, so the engine
    // must refuse it rather than silently prove the wrong pool shape.
    // Multi-address behaviour is covered differentially instead.
    let spill = NatConfig {
        capacity: 65_535,
        expiry_ns: 1,
        external_ip: Ip4::new(1, 1, 1, 1),
        start_port: 2,
        ..NatConfig::paper_default()
    };
    assert!(vignat_repro::nat::loop_body::check_config(&spill).is_ok());
    let r = run_ese(&spill, ModelStyle::Faithful, 10_000);
    assert!(r.is_err(), "ESE must refuse multi-address pools");
}
