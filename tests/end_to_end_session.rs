//! A realistic TCP session through the full stack, step by step, for
//! each NAT implementation: handshake out, reply in, data both ways,
//! idle expiry, late packet bounced. This is the "does it actually NAT"
//! test a network operator would run before deploying.

use vignat_repro::baselines::{NetfilterNat, UnverifiedNat};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::NatConfig;
use vignat_repro::packet::tcp::flags;
use vignat_repro::packet::{builder::PacketBuilder, parse_l3l4, Direction, Ip4};
use vignat_repro::sim::middlebox::{Middlebox, Verdict, VigNatMb};

const EXT_IP: Ip4 = Ip4::new(198, 51, 100, 1);
const CLIENT: Ip4 = Ip4::new(192, 168, 7, 42);
const SERVER: Ip4 = Ip4::new(93, 184, 216, 34);
const CLIENT_PORT: u16 = 51_200;

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 128,
        expiry_ns: Time::from_secs(10).nanos(),
        external_ip: EXT_IP,
        start_port: 10_000,
        ..NatConfig::paper_default()
    }
}

fn session_against(nf: &mut dyn Middlebox) {
    // 1. SYN out.
    let mut syn = PacketBuilder::tcp(CLIENT, SERVER, CLIENT_PORT, 443)
        .tcp_flags(flags::SYN)
        .tcp_seq(1000)
        .build();
    assert_eq!(
        nf.process(Direction::Internal, &mut syn, Time::from_secs(1)),
        Verdict::Forward(Direction::External),
        "{}: SYN must be translated",
        nf.name()
    );
    let (_, out) = parse_l3l4(&syn).unwrap();
    assert_eq!(out.src_ip, EXT_IP);
    assert_eq!(out.dst_ip, SERVER);
    assert_eq!(out.dst_port, 443);
    let ext_port = out.src_port;
    // TCP specifics preserved:
    let seg = vignat_repro::packet::tcp::TcpSegment::parse(&syn[34..]).unwrap();
    assert_eq!(seg.flags() & flags::SYN, flags::SYN, "SYN flag preserved");
    assert_eq!(seg.seq(), 1000, "sequence number untouched");

    // 2. SYN-ACK back.
    let mut synack = PacketBuilder::tcp(SERVER, EXT_IP, 443, ext_port)
        .tcp_flags(flags::SYN | flags::ACK)
        .build();
    assert_eq!(
        nf.process(Direction::External, &mut synack, Time::from_secs(1)),
        Verdict::Forward(Direction::Internal),
        "{}: SYN-ACK must come back",
        nf.name()
    );
    let (_, back) = parse_l3l4(&synack).unwrap();
    assert_eq!(back.dst_ip, CLIENT);
    assert_eq!(back.dst_port, CLIENT_PORT);
    assert_eq!(back.src_ip, SERVER, "server address untouched on return");

    // 3. Data both directions over the following seconds (flow must be
    // refreshed each time and never expire while active).
    for t in 2..8u64 {
        let mut data = PacketBuilder::tcp(CLIENT, SERVER, CLIENT_PORT, 443)
            .tcp_flags(flags::ACK)
            .payload(b"GET / HTTP/1.1\r\n")
            .build();
        assert_eq!(
            nf.process(Direction::Internal, &mut data, Time::from_secs(t)),
            Verdict::Forward(Direction::External),
            "{}: data at t={t}",
            nf.name()
        );
        let (_, d) = parse_l3l4(&data).unwrap();
        assert_eq!(
            d.src_port,
            ext_port,
            "{}: mapping must be stable",
            nf.name()
        );

        let mut resp = PacketBuilder::tcp(SERVER, EXT_IP, 443, ext_port)
            .tcp_flags(flags::ACK)
            .payload(b"200 OK")
            .build();
        assert_eq!(
            nf.process(Direction::External, &mut resp, Time::from_secs(t)),
            Verdict::Forward(Direction::Internal),
            "{}: response at t={t}",
            nf.name()
        );
    }
    assert_eq!(nf.occupancy(), 1, "{}: one session, one flow", nf.name());

    // 4. Idle past Texp (last activity t=7, expiry 10s → dead at 17).
    let mut late = PacketBuilder::tcp(SERVER, EXT_IP, 443, ext_port)
        .tcp_flags(flags::ACK)
        .build();
    assert_eq!(
        nf.process(Direction::External, &mut late, Time::from_secs(18)),
        Verdict::Drop,
        "{}: late packet after expiry must be dropped",
        nf.name()
    );
    assert_eq!(nf.occupancy(), 0, "{}: flow expired", nf.name());

    // 5. The client reconnects; it gets a (possibly different) mapping
    // and everything works again.
    let mut syn2 = PacketBuilder::tcp(CLIENT, SERVER, CLIENT_PORT, 443)
        .tcp_flags(flags::SYN)
        .build();
    assert_eq!(
        nf.process(Direction::Internal, &mut syn2, Time::from_secs(19)),
        Verdict::Forward(Direction::External),
        "{}: reconnect after expiry",
        nf.name()
    );
    assert_eq!(nf.occupancy(), 1);
}

#[test]
fn verified_nat_full_session() {
    session_against(&mut VigNatMb::new(cfg()));
}

#[test]
fn unverified_nat_full_session() {
    session_against(&mut UnverifiedNat::new(cfg()));
}

#[test]
fn netfilter_nat_full_session() {
    session_against(&mut NetfilterNat::new(cfg()));
}

/// Two clients behind the NAT talk to the same server port at the same
/// time; the NAT must keep them apart in both directions.
#[test]
fn concurrent_sessions_stay_separate() {
    let mut nf = VigNatMb::new(cfg());
    let c2: Ip4 = Ip4::new(192, 168, 7, 43);

    let mut a = PacketBuilder::tcp(CLIENT, SERVER, 50_000, 443).build();
    let mut b = PacketBuilder::tcp(c2, SERVER, 50_000, 443).build();
    nf.process(Direction::Internal, &mut a, Time::from_secs(1));
    nf.process(Direction::Internal, &mut b, Time::from_secs(1));
    let (_, fa) = parse_l3l4(&a).unwrap();
    let (_, fb) = parse_l3l4(&b).unwrap();
    assert_ne!(fa.src_port, fb.src_port, "two sessions, two external ports");

    // Replies to each port reach the right client.
    let mut ra = PacketBuilder::tcp(SERVER, EXT_IP, 443, fa.src_port).build();
    let mut rb = PacketBuilder::tcp(SERVER, EXT_IP, 443, fb.src_port).build();
    nf.process(Direction::External, &mut ra, Time::from_secs(2));
    nf.process(Direction::External, &mut rb, Time::from_secs(2));
    let (_, ba) = parse_l3l4(&ra).unwrap();
    let (_, bb) = parse_l3l4(&rb).unwrap();
    assert_eq!(ba.dst_ip, CLIENT);
    assert_eq!(bb.dst_ip, c2);
}
