//! Batch/sequential differential test: `nat_process_batch` must be
//! observationally identical to N sequential `nat_loop_iteration`
//! calls made at the same instant — byte-identical output frames,
//! identical drop reasons, identical flow-table state (including LRU
//! order, hence identical future expiry behaviour).
//!
//! Traffic is randomized and adversarial, in the style of
//! `tests/adversarial_inputs.rs`: valid new flows, repeats of the same
//! flow within one burst (the insert→hit sequence-point case), valid
//! and junk return traffic, random-byte frames, bit-flipped frames,
//! truncations, and time jumps that trigger expiry between bursts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vignat_repro::libvig::time::Time;
use vignat_repro::nat::loop_body::IterationOutcome;
use vignat_repro::nat::{nat_loop_iteration, nat_process_batch, FlowManager, NatConfig, MAX_BURST};
use vignat_repro::packet::{builder::PacketBuilder, Direction, Ip4};
use vignat_repro::sim::dpdk::Mempool;
use vignat_repro::sim::frame_env::{BurstEnv, BurstScratch, FrameEnv};

fn cfg() -> NatConfig {
    NatConfig {
        capacity: 64,
        expiry_ns: Time::from_secs(2).nanos(),
        external_ip: Ip4::new(203, 0, 113, 1),
        start_port: 4096,
        ..NatConfig::paper_default()
    }
}

/// One randomized frame of adversarial traffic. Mirrors the generators
/// in `tests/adversarial_inputs.rs`: mostly valid traffic (so flow
/// state actually builds up), spiced with junk.
fn gen_frame(rng: &mut StdRng) -> (Direction, Vec<u8>) {
    let class = rng.gen_range(0..10u8);
    match class {
        // Valid internal traffic from a small host/port pool: drives
        // new flows, repeats (also within one burst), and TableFull.
        0..=4 => {
            let host = rng.gen_range(1..=24u8);
            let port = 1024 + u16::from(rng.gen_range(0..4u8));
            let frame = if rng.gen_bool(0.5) {
                PacketBuilder::udp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 53).build()
            } else {
                PacketBuilder::tcp(Ip4::new(10, 0, 0, host), Ip4::new(1, 1, 1, 1), port, 80).build()
            };
            (Direction::Internal, frame)
        }
        // Return traffic to a port that may or may not be live.
        5..=6 => {
            let ext_port = 4096 + u16::from(rng.gen_range(0..80u8));
            let frame =
                PacketBuilder::udp(Ip4::new(1, 1, 1, 1), Ip4::new(203, 0, 113, 1), 53, ext_port)
                    .build();
            (Direction::External, frame)
        }
        // Bit-flipped valid frame: exercises the validation ladder.
        7 => {
            let mut frame =
                PacketBuilder::tcp(Ip4::new(10, 0, 0, 1), Ip4::new(1, 1, 1, 1), 1024, 80).build();
            for _ in 0..rng.gen_range(1..=4) {
                let byte = rng.gen_range(0..frame.len());
                frame[byte] ^= 1u8 << rng.gen_range(0..8);
            }
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
        // Truncation of a valid frame at an arbitrary boundary.
        8 => {
            let frame =
                PacketBuilder::udp(Ip4::new(10, 0, 0, 2), Ip4::new(1, 1, 1, 1), 1025, 53).build();
            let cut = rng.gen_range(0..frame.len());
            (Direction::Internal, frame[..cut].to_vec())
        }
        // Pure random bytes.
        _ => {
            let len = rng.gen_range(0..120usize);
            let frame: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            let dir = if rng.gen_bool(0.5) {
                Direction::Internal
            } else {
                Direction::External
            };
            (dir, frame)
        }
    }
}

/// Snapshot of everything observable about a flow manager.
fn fm_state(fm: &FlowManager) -> Vec<(usize, vignat_repro::packet::Flow, Time)> {
    fm.check_coherence()
        .expect("flow manager must stay coherent");
    fm.iter_lru()
        .map(|(slot, flow, t)| (slot, *flow, t))
        .collect()
}

#[test]
fn batch_equals_sequential_on_adversarial_traffic() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let c = cfg();
    let mut fm_seq = FlowManager::new(&c);
    let mut fm_bat = FlowManager::new(&c);
    let mut pool = Mempool::new(MAX_BURST * 2);
    let mut scratch = BurstScratch::default();

    let mut now = Time::from_secs(1);
    for round in 0..400 {
        // Time jumps: some bursts arrive after everything expired.
        now = now.plus(rng.gen_range(1_000_000..800_000_000));
        let burst_len = rng.gen_range(1..=MAX_BURST);
        let dir = if rng.gen_bool(0.8) {
            Direction::Internal
        } else {
            Direction::External
        };
        // One burst arrives on one interface (the run-to-completion
        // model); frames within it are randomized independently.
        let frames: Vec<Vec<u8>> = (0..burst_len)
            .map(|_| {
                let (_, f) = gen_frame(&mut rng);
                f
            })
            .collect();

        // Sequential reference: one FrameEnv per frame, same instant.
        let mut seq_outcomes: Vec<IterationOutcome> = Vec::with_capacity(burst_len);
        let mut seq_frames: Vec<Vec<u8>> = Vec::with_capacity(burst_len);
        for f in &frames {
            let mut frame = f.clone();
            let mut env = FrameEnv::new(&mut fm_seq, &mut frame, dir, now);
            seq_outcomes.push(nat_loop_iteration(&mut env, &c));
            seq_frames.push(frame);
        }

        // Batched: stage the same frames in the mempool, one call.
        let bufs: Vec<_> = frames
            .iter()
            .map(|f| {
                let b = pool.get().expect("pool sized for a burst");
                pool.write_frame(b, f);
                b
            })
            .collect();
        let bat_outcomes = {
            let mut env = BurstEnv::new(&mut fm_bat, &mut pool, &bufs, dir, now, &mut scratch);
            let outcomes = nat_process_batch(&mut env, &c);
            env.finish();
            outcomes
        };

        // Outcomes (including drop *reasons*) must match 1:1.
        assert_eq!(
            seq_outcomes, bat_outcomes,
            "outcome mismatch in round {round} (burst of {burst_len} on {dir:?})"
        );
        // Output frames must be byte-identical (rewrites and checksums).
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(
                seq_frames[i],
                pool.frame(*b),
                "frame bytes diverged in round {round}, packet {i}"
            );
            pool.put(*b);
        }
        // Flow-table state — occupancy, slot assignment, ports, LRU
        // order and timestamps — must be identical.
        assert_eq!(
            fm_state(&fm_seq),
            fm_state(&fm_bat),
            "flow-table state diverged in round {round}"
        );
    }

    // The run must actually have exercised state: flows were created.
    assert!(!fm_seq.is_empty() || fm_seq.capacity() > 0);
}

#[test]
fn batch_handles_full_table_same_as_sequential() {
    // Deterministic worst case: more new flows in one burst than the
    // table has room for — the TableFull drops must land on exactly the
    // same packets in both modes.
    let c = NatConfig {
        capacity: 4,
        ..cfg()
    };
    let mut fm_seq = FlowManager::new(&c);
    let mut fm_bat = FlowManager::new(&c);
    let mut pool = Mempool::new(MAX_BURST);
    let mut scratch = BurstScratch::default();
    let now = Time::from_secs(1);

    let frames: Vec<Vec<u8>> = (0..8u8)
        .map(|i| {
            PacketBuilder::udp(Ip4::new(10, 0, 0, i + 1), Ip4::new(1, 1, 1, 1), 1000, 53).build()
        })
        .collect();

    let mut seq_outcomes = Vec::new();
    for f in &frames {
        let mut frame = f.clone();
        let mut env = FrameEnv::new(&mut fm_seq, &mut frame, Direction::Internal, now);
        seq_outcomes.push(nat_loop_iteration(&mut env, &c));
    }

    let bufs: Vec<_> = frames
        .iter()
        .map(|f| {
            let b = pool.get().unwrap();
            pool.write_frame(b, f);
            b
        })
        .collect();
    let mut env = BurstEnv::new(
        &mut fm_bat,
        &mut pool,
        &bufs,
        Direction::Internal,
        now,
        &mut scratch,
    );
    let bat_outcomes = nat_process_batch(&mut env, &c);
    env.finish();

    assert_eq!(seq_outcomes, bat_outcomes);
    assert_eq!(fm_state(&fm_seq), fm_state(&fm_bat));
    use vignat_repro::nat::loop_body::DropReason;
    assert_eq!(
        bat_outcomes
            .iter()
            .filter(|o| **o == IterationOutcome::Dropped(DropReason::TableFull))
            .count(),
        4,
        "exactly the overflow packets drop"
    );
}
